/**
 * @file
 * Full WebAssembly MVP validation: module-level checks (index bounds,
 * import ordering, at most one table/memory, constant initializer
 * expressions) and the standard type-checking algorithm over function
 * bodies, including unreachable-code stack polymorphism.
 *
 * This is the repository's equivalent of WABT's wasm-validate, used by
 * the faithfulness experiments (RQ2) to check instrumented binaries.
 */

#ifndef WASABI_WASM_VALIDATOR_H
#define WASABI_WASM_VALIDATOR_H

#include <optional>
#include <stdexcept>
#include <string>

#include "wasm/module.h"

namespace wasabi::wasm {

/** Error thrown when a module fails validation. */
class ValidationError : public std::runtime_error {
  public:
    ValidationError(const std::string &what, uint32_t func_idx,
                    size_t instr_idx)
        : std::runtime_error("validation error (func " +
                             std::to_string(func_idx) + ", instr " +
                             std::to_string(instr_idx) + "): " + what),
          funcIdx(func_idx), instrIdx(instr_idx)
    {
    }

    /** Module-level error attributable to one function but no
     * particular instruction (e.g. a bad type index). */
    ValidationError(const std::string &what, uint32_t func_idx)
        : std::runtime_error("validation error (func " +
                             std::to_string(func_idx) + "): " + what),
          funcIdx(func_idx), instrIdx(0)
    {
    }

    explicit ValidationError(const std::string &what)
        : std::runtime_error("validation error: " + what), funcIdx(0),
          instrIdx(0)
    {
    }

    uint32_t funcIdx;
    size_t instrIdx;
};

/** Validate a whole module; throws ValidationError on failure. */
void validateModule(const Module &m);

/**
 * Validate and return the error message instead of throwing;
 * nullopt means the module is valid.
 */
std::optional<std::string> validationError(const Module &m);

} // namespace wasabi::wasm

#endif // WASABI_WASM_VALIDATOR_H
