/**
 * @file
 * Core value and function types of WebAssembly (MVP), plus the runtime
 * Value representation shared by the validator, interpreter and the
 * Wasabi analysis API.
 */

#ifndef WASABI_WASM_TYPES_H
#define WASABI_WASM_TYPES_H

#include <bit>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace wasabi::wasm {

/** The four primitive WebAssembly value types. */
enum class ValType : uint8_t {
    I32 = 0,
    I64 = 1,
    F32 = 2,
    F64 = 3,
};

/** Number of distinct value types (useful for per-type tables). */
inline constexpr int kNumValTypes = 4;

/** Short textual name, e.g. "i32". */
const char *name(ValType t);

/** Binary-format encoding byte (0x7F..0x7C). */
uint8_t binaryByte(ValType t);

/** Decode a binary-format value type byte; nullopt if invalid. */
std::optional<ValType> valTypeFromByte(uint8_t b);

/** True for i32/i64. */
inline bool
isInt(ValType t)
{
    return t == ValType::I32 || t == ValType::I64;
}

/** True for f32/f64. */
inline bool
isFloat(ValType t)
{
    return !isInt(t);
}

/**
 * A runtime WebAssembly value. The payload is stored as raw bits so
 * that equality and hashing are exact even for NaN floats, which is
 * required by the differential (original vs. instrumented) tests.
 */
struct Value {
    ValType type = ValType::I32;
    uint64_t bits = 0;

    Value() = default;

    Value(ValType t, uint64_t raw_bits) : type(t), bits(raw_bits) {}

    static Value
    makeI32(uint32_t v)
    {
        return Value(ValType::I32, v);
    }

    static Value
    makeI64(uint64_t v)
    {
        return Value(ValType::I64, v);
    }

    static Value
    makeF32(float v)
    {
        return Value(ValType::F32, std::bit_cast<uint32_t>(v));
    }

    static Value
    makeF64(double v)
    {
        return Value(ValType::F64, std::bit_cast<uint64_t>(v));
    }

    /** Zero value of the given type (Wasm default for locals). */
    static Value
    zero(ValType t)
    {
        return Value(t, 0);
    }

    uint32_t i32() const { return static_cast<uint32_t>(bits); }
    int32_t i32s() const { return static_cast<int32_t>(i32()); }
    uint64_t i64() const { return bits; }
    int64_t i64s() const { return static_cast<int64_t>(bits); }
    float f32() const { return std::bit_cast<float>(i32()); }
    double f64() const { return std::bit_cast<double>(bits); }

    /** Numeric payload as double, for analyses that aggregate values. */
    double toDouble() const;

    bool operator==(const Value &other) const = default;
};

/** Human-readable rendering, e.g. "i32:42" or "f64:3.5". */
std::string toString(const Value &v);

/** A function type: params -> results. */
struct FuncType {
    std::vector<ValType> params;
    std::vector<ValType> results;

    FuncType() = default;

    FuncType(std::vector<ValType> p, std::vector<ValType> r)
        : params(std::move(p)), results(std::move(r))
    {
    }

    bool operator==(const FuncType &other) const = default;
};

/** Human-readable rendering, e.g. "[i32 f64] -> [i32]". */
std::string toString(const FuncType &t);

/** Size limits of a table or memory (in entries / 64 KiB pages). */
struct Limits {
    uint32_t min = 0;
    std::optional<uint32_t> max;

    bool operator==(const Limits &other) const = default;
};

/** WebAssembly page size in bytes. */
inline constexpr uint32_t kPageSize = 65536;

} // namespace wasabi::wasm

#endif // WASABI_WASM_TYPES_H
