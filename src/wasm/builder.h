/**
 * @file
 * A fluent builder DSL for constructing WebAssembly modules in C++.
 * Used by the workload generators (PolyBench kernels, synthetic apps)
 * and by tests to author modules without hand-writing binaries.
 */

#ifndef WASABI_WASM_BUILDER_H
#define WASABI_WASM_BUILDER_H

#include <functional>
#include <string>

#include "wasm/module.h"

namespace wasabi::wasm {

class ModuleBuilder;

/**
 * Builds the body of one function. Obtained from
 * ModuleBuilder::startFunction(); every instruction helper appends one
 * instruction and returns *this for chaining. Control-flow helpers
 * track nesting depth so that finish() can verify balance.
 */
class FunctionBuilder {
  public:
    /** Append an arbitrary instruction. */
    FunctionBuilder &emit(Instr instr);

    /** Append an instruction without immediate. */
    FunctionBuilder &op(Opcode o) { return emit(Instr(o)); }

    /** Allocate a fresh (non-parameter) local of type @p t. */
    uint32_t addLocal(ValType t);

    /** Constants. @{ */
    FunctionBuilder &i32Const(int32_t v)
    {
        return emit(Instr::i32Const(static_cast<uint32_t>(v)));
    }
    FunctionBuilder &i64Const(int64_t v)
    {
        return emit(Instr::i64Const(static_cast<uint64_t>(v)));
    }
    FunctionBuilder &f32Const(float v) { return emit(Instr::f32Const(v)); }
    FunctionBuilder &f64Const(double v) { return emit(Instr::f64Const(v)); }
    /** @} */

    /** Locals and globals. @{ */
    FunctionBuilder &localGet(uint32_t i) { return emit(Instr::localGet(i)); }
    FunctionBuilder &localSet(uint32_t i) { return emit(Instr::localSet(i)); }
    FunctionBuilder &localTee(uint32_t i) { return emit(Instr::localTee(i)); }
    FunctionBuilder &globalGet(uint32_t i)
    {
        return emit(Instr::globalGet(i));
    }
    FunctionBuilder &globalSet(uint32_t i)
    {
        return emit(Instr::globalSet(i));
    }
    /** @} */

    /** Memory accesses (align defaults to natural). @{ */
    FunctionBuilder &load(Opcode o, uint32_t offset = 0, uint32_t align = 0)
    {
        return emit(Instr::memOp(o, align, offset));
    }
    FunctionBuilder &store(Opcode o, uint32_t offset = 0, uint32_t align = 0)
    {
        return emit(Instr::memOp(o, align, offset));
    }
    FunctionBuilder &i32Load(uint32_t offset = 0)
    {
        return load(Opcode::I32Load, offset, 2);
    }
    FunctionBuilder &i32Store(uint32_t offset = 0)
    {
        return store(Opcode::I32Store, offset, 2);
    }
    FunctionBuilder &i64Load(uint32_t offset = 0)
    {
        return load(Opcode::I64Load, offset, 3);
    }
    FunctionBuilder &i64Store(uint32_t offset = 0)
    {
        return store(Opcode::I64Store, offset, 3);
    }
    FunctionBuilder &f64Load(uint32_t offset = 0)
    {
        return load(Opcode::F64Load, offset, 3);
    }
    FunctionBuilder &f64Store(uint32_t offset = 0)
    {
        return store(Opcode::F64Store, offset, 3);
    }
    /** @} */

    /** Control flow. @{ */
    FunctionBuilder &block(BlockType bt = std::nullopt);
    FunctionBuilder &loop(BlockType bt = std::nullopt);
    FunctionBuilder &if_(BlockType bt = std::nullopt);
    FunctionBuilder &else_();
    FunctionBuilder &end();
    FunctionBuilder &br(uint32_t label) { return emit(Instr::br(label)); }
    FunctionBuilder &brIf(uint32_t label)
    {
        return emit(Instr::brIf(label));
    }
    FunctionBuilder &brTable(std::vector<uint32_t> labels,
                             uint32_t default_label)
    {
        return emit(Instr::brTable(std::move(labels), default_label));
    }
    FunctionBuilder &call(uint32_t func) { return emit(Instr::call(func)); }
    FunctionBuilder &callIndirect(uint32_t type_idx)
    {
        return emit(Instr::callIndirect(type_idx));
    }
    FunctionBuilder &ret() { return op(Opcode::Return); }
    FunctionBuilder &unreachable() { return op(Opcode::Unreachable); }
    FunctionBuilder &nop() { return op(Opcode::Nop); }
    FunctionBuilder &drop() { return op(Opcode::Drop); }
    FunctionBuilder &select() { return op(Opcode::Select); }
    /** @} */

    /**
     * Emit a counted loop: `for (local = from; local < to; local +=
     * step) body()`. The loop variable is an existing i32 local.
     */
    FunctionBuilder &forLoop(uint32_t local, int32_t from, int32_t to,
                             const std::function<void()> &body,
                             int32_t step = 1);

    /**
     * Close the function: appends the final `end`, checks balance,
     * and registers it with the module. Returns the function index.
     */
    uint32_t finish();

    /** Number of parameters (locals [0, numParams) are params). */
    uint32_t numParams() const { return numParams_; }

  private:
    friend class ModuleBuilder;

    FunctionBuilder(ModuleBuilder &mb, uint32_t func_idx,
                    uint32_t num_params)
        : mb_(mb), funcIdx_(func_idx), numParams_(num_params)
    {
    }

    ModuleBuilder &mb_;
    uint32_t funcIdx_;
    uint32_t numParams_;
    int depth_ = 0;
    bool finished_ = false;
};

/**
 * Builds a whole module. All import-adding methods must be called
 * before the corresponding defined entities are added (binary index
 * spaces put imports first).
 */
class ModuleBuilder {
  public:
    ModuleBuilder();

    /** Add (or find) a function type. */
    uint32_t type(const FuncType &t) { return m_.addType(t); }

    /** Import a function; returns its function index. */
    uint32_t importFunction(const std::string &module,
                            const std::string &name, const FuncType &type);

    /**
     * Start a defined function. At most one function may be under
     * construction at a time; call FunctionBuilder::finish() before
     * starting the next.
     */
    FunctionBuilder startFunction(const FuncType &type,
                                  const std::string &export_name = "",
                                  const std::string &debug_name = "");

    /** Define a function via a callback; returns the function index. */
    uint32_t addFunction(const FuncType &type,
                         const std::string &export_name,
                         const std::function<void(FunctionBuilder &)> &fill);

    /** Define a memory; returns its index (always 0 in MVP). */
    uint32_t memory(uint32_t min_pages,
                    std::optional<uint32_t> max_pages = std::nullopt,
                    const std::string &export_name = "");

    /** Define a table; returns its index (always 0 in MVP). */
    uint32_t table(uint32_t min, std::optional<uint32_t> max = std::nullopt);

    /** Define a global with a constant initial value. */
    uint32_t global(ValType t, bool mut, Value init,
                    const std::string &export_name = "");

    /** Add an active element segment at constant offset. */
    void elem(uint32_t offset, std::vector<uint32_t> func_idxs);

    /** Add an active data segment at constant offset. */
    void data(uint32_t offset, std::vector<uint8_t> bytes);

    /** Set the start function. */
    void start(uint32_t func_idx) { m_.start = func_idx; }

    /** Finish and return the module (builder becomes empty). */
    Module build();

    /** Access to the module under construction (for tests). */
    Module &module() { return m_; }

  private:
    friend class FunctionBuilder;

    Module m_;
    bool functionOpen_ = false;
};

} // namespace wasabi::wasm

#endif // WASABI_WASM_BUILDER_H
