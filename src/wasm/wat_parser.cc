#include "wasm/wat_parser.h"

#include <cassert>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <map>
#include <optional>
#include <vector>

namespace wasabi::wasm {

namespace {

// =====================================================================
// S-expression reader.

struct SExpr {
    bool list = false;
    bool string = false;   ///< atom was a "quoted string" (decoded)
    std::string atom;      ///< atom text / decoded string bytes
    std::vector<SExpr> items;
    int line = 0;
    int col = 0;

    bool
    isAtom(const char *s) const
    {
        return !list && !string && atom == s;
    }

    /** True for a list whose head atom is @p s. */
    bool
    isForm(const char *s) const
    {
        return list && !items.empty() && items[0].isAtom(s);
    }
};

class Lexer {
  public:
    explicit Lexer(const std::string &text) : text_(text) {}

    [[noreturn]] void
    fail(const std::string &msg) const
    {
        throw ParseError(msg, line_, col());
    }

    SExpr
    parseAll()
    {
        SExpr root = parseOne();
        skipSpace();
        if (!done())
            fail("trailing input after module");
        return root;
    }

  private:
    bool done() const { return pos_ >= text_.size(); }
    char peek() const { return text_[pos_]; }

    int
    col() const
    {
        return static_cast<int>(pos_ - line_start_) + 1;
    }

    char
    advance()
    {
        char c = text_[pos_++];
        if (c == '\n') {
            ++line_;
            line_start_ = pos_;
        }
        return c;
    }

    void
    skipSpace()
    {
        while (!done()) {
            char c = peek();
            if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
                advance();
            } else if (c == ';' && pos_ + 1 < text_.size() &&
                       text_[pos_ + 1] == ';') {
                while (!done() && peek() != '\n')
                    advance();
            } else if (c == '(' && pos_ + 1 < text_.size() &&
                       text_[pos_ + 1] == ';') {
                advance();
                advance();
                int depth = 1;
                while (!done() && depth > 0) {
                    char d = advance();
                    if (d == '(' && !done() && peek() == ';') {
                        advance();
                        ++depth;
                    } else if (d == ';' && !done() && peek() == ')') {
                        advance();
                        --depth;
                    }
                }
                if (depth != 0)
                    fail("unterminated block comment");
            } else {
                return;
            }
        }
    }

    SExpr
    parseOne()
    {
        skipSpace();
        if (done())
            fail("unexpected end of input");
        SExpr e;
        e.line = line_;
        e.col = col();
        char c = peek();
        if (c == '(') {
            advance();
            e.list = true;
            while (true) {
                skipSpace();
                if (done())
                    fail("unterminated list");
                if (peek() == ')') {
                    advance();
                    return e;
                }
                e.items.push_back(parseOne());
            }
        }
        if (c == '"') {
            advance();
            e.string = true;
            while (true) {
                if (done())
                    fail("unterminated string");
                char d = advance();
                if (d == '"')
                    return e;
                if (d == '\\') {
                    if (done())
                        fail("bad escape");
                    char esc = advance();
                    switch (esc) {
                      case 'n': e.atom += '\n'; break;
                      case 't': e.atom += '\t'; break;
                      case 'r': e.atom += '\r'; break;
                      case '\\': e.atom += '\\'; break;
                      case '"': e.atom += '"'; break;
                      case '\'': e.atom += '\''; break;
                      default: {
                        // two-digit hex escape
                        auto hex = [this](char h) -> int {
                            if (h >= '0' && h <= '9')
                                return h - '0';
                            if (h >= 'a' && h <= 'f')
                                return h - 'a' + 10;
                            if (h >= 'A' && h <= 'F')
                                return h - 'A' + 10;
                            fail("bad hex escape");
                        };
                        if (done())
                            fail("bad escape");
                        int v = hex(esc) * 16 + hex(advance());
                        e.atom += static_cast<char>(v);
                        break;
                      }
                    }
                } else {
                    e.atom += d;
                }
            }
        }
        // Plain atom: read until whitespace, paren or quote.
        while (!done()) {
            char d = peek();
            if (d == ' ' || d == '\t' || d == '\n' || d == '\r' ||
                d == '(' || d == ')' || d == '"' || d == ';') {
                break;
            }
            e.atom += advance();
        }
        if (e.atom.empty())
            fail("unexpected character");
        return e;
    }

    const std::string &text_;
    size_t pos_ = 0;
    int line_ = 1;
    size_t line_start_ = 0;
};

// =====================================================================
// Numbers.

[[noreturn]] void
failAt(const SExpr &e, const std::string &msg)
{
    throw ParseError(msg + " (got '" + (e.list ? "(...)" : e.atom) + "')",
                     e.line, e.col);
}

std::string
stripUnderscores(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c != '_')
            out += c;
    }
    return out;
}

uint64_t
parseIntBits(const SExpr &e, int bits)
{
    std::string s = stripUnderscores(e.atom);
    bool neg = false;
    size_t i = 0;
    if (i < s.size() && (s[i] == '+' || s[i] == '-')) {
        neg = s[i] == '-';
        ++i;
    }
    int base = 10;
    if (i + 1 < s.size() && s[i] == '0' &&
        (s[i + 1] == 'x' || s[i + 1] == 'X')) {
        base = 16;
        i += 2;
    }
    if (i >= s.size())
        failAt(e, "expected integer");
    uint64_t v = 0;
    for (; i < s.size(); ++i) {
        char c = s[i];
        int digit;
        if (c >= '0' && c <= '9')
            digit = c - '0';
        else if (base == 16 && c >= 'a' && c <= 'f')
            digit = c - 'a' + 10;
        else if (base == 16 && c >= 'A' && c <= 'F')
            digit = c - 'A' + 10;
        else
            failAt(e, "bad digit in integer");
        v = v * base + static_cast<uint64_t>(digit);
    }
    if (neg)
        v = ~v + 1; // two's complement
    if (bits == 32)
        v &= 0xFFFFFFFFull;
    return v;
}

double
parseFloat(const SExpr &e)
{
    std::string s = stripUnderscores(e.atom);
    bool neg = !s.empty() && s[0] == '-';
    std::string mag = (neg || (!s.empty() && s[0] == '+'))
                          ? s.substr(1)
                          : s;
    double v;
    if (mag == "inf") {
        v = std::numeric_limits<double>::infinity();
    } else if (mag == "nan" || mag.rfind("nan:", 0) == 0) {
        v = std::numeric_limits<double>::quiet_NaN();
    } else {
        char *end = nullptr;
        v = std::strtod(mag.c_str(), &end);
        if (end == mag.c_str() || *end != '\0')
            failAt(e, "expected float");
    }
    return neg ? -v : v;
}

std::optional<ValType>
valTypeFromAtom(const SExpr &e)
{
    if (e.list || e.string)
        return std::nullopt;
    if (e.atom == "i32")
        return ValType::I32;
    if (e.atom == "i64")
        return ValType::I64;
    if (e.atom == "f32")
        return ValType::F32;
    if (e.atom == "f64")
        return ValType::F64;
    return std::nullopt;
}

// =====================================================================
// Module parsing.

/** Index space with optional $names. */
class Space {
  public:
    uint32_t
    add(const std::string &name, const SExpr *at = nullptr)
    {
        uint32_t idx = count_++;
        if (!name.empty()) {
            if (names_.count(name) && at != nullptr)
                failAt(*at, "duplicate identifier " + name);
            names_[name] = idx;
        }
        return idx;
    }

    uint32_t
    resolve(const SExpr &e) const
    {
        if (!e.list && !e.string && !e.atom.empty() && e.atom[0] == '$') {
            auto it = names_.find(e.atom);
            if (it == names_.end())
                failAt(e, "unknown identifier " + e.atom);
            return it->second;
        }
        return static_cast<uint32_t>(parseIntBits(e, 32));
    }

    uint32_t count() const { return count_; }

  private:
    std::map<std::string, uint32_t> names_;
    uint32_t count_ = 0;
};

class ModuleParser {
  public:
    Module
    run(const SExpr &root)
    {
        if (!root.isForm("module"))
            failAt(root, "expected (module ...)");
        std::vector<const SExpr *> fields;
        for (size_t i = 1; i < root.items.size(); ++i)
            fields.push_back(&root.items[i]);

        // Pass 1: explicit (type ...) declarations.
        for (const SExpr *f : fields) {
            if (f->isForm("type"))
                parseTypeDecl(*f);
        }
        // Pass 2: declare all entities so forward references resolve.
        for (const SExpr *f : fields)
            declareField(*f);
        // Pass 3: fill in bodies, segments, exports, start.
        for (const SExpr *f : fields)
            defineField(*f);

        return std::move(m_);
    }

  private:
    // ----- types -------------------------------------------------------

    void
    parseTypeDecl(const SExpr &e)
    {
        size_t i = 1;
        std::string name;
        if (i < e.items.size() && !e.items[i].list &&
            !e.items[i].atom.empty() && e.items[i].atom[0] == '$') {
            name = e.items[i].atom;
            ++i;
        }
        if (i >= e.items.size() || !e.items[i].isForm("func"))
            failAt(e, "expected (func ...) in type");
        FuncType type = parseFuncTypeBody(e.items[i], 1, nullptr);
        uint32_t idx = static_cast<uint32_t>(m_.types.size());
        m_.types.push_back(type);
        typeSpace_.add(name, &e);
        (void)idx;
    }

    /** Parse (param ...)* (result ...)* starting at item @p i of @p e;
     * if @p param_names is non-null, records $names of params. */
    FuncType
    parseFuncTypeBody(const SExpr &e, size_t i, Space *param_names)
    {
        FuncType type;
        for (; i < e.items.size(); ++i) {
            const SExpr &f = e.items[i];
            if (f.isForm("param")) {
                size_t j = 1;
                if (j < f.items.size() && !f.items[j].list &&
                    !f.items[j].atom.empty() &&
                    f.items[j].atom[0] == '$') {
                    // Named single param.
                    if (j + 1 >= f.items.size())
                        failAt(f, "named param needs a type");
                    auto t = valTypeFromAtom(f.items[j + 1]);
                    if (!t)
                        failAt(f.items[j + 1], "expected value type");
                    if (param_names)
                        param_names->add(f.items[j].atom, &f);
                    type.params.push_back(*t);
                    continue;
                }
                for (; j < f.items.size(); ++j) {
                    auto t = valTypeFromAtom(f.items[j]);
                    if (!t)
                        failAt(f.items[j], "expected value type");
                    if (param_names)
                        param_names->add("", &f);
                    type.params.push_back(*t);
                }
            } else if (f.isForm("result")) {
                for (size_t j = 1; j < f.items.size(); ++j) {
                    auto t = valTypeFromAtom(f.items[j]);
                    if (!t)
                        failAt(f.items[j], "expected value type");
                    type.results.push_back(*t);
                }
            } else {
                break;
            }
        }
        return type;
    }

    /** Parse a typeuse: optional (type x), then inline params/results.
     * Returns {type index, index of first unconsumed item}. */
    std::pair<uint32_t, size_t>
    parseTypeUse(const SExpr &e, size_t i, Space *param_names)
    {
        std::optional<uint32_t> declared;
        if (i < e.items.size() && e.items[i].isForm("type")) {
            if (e.items[i].items.size() != 2)
                failAt(e.items[i], "(type x) takes one index");
            declared = typeSpace_.resolve(e.items[i].items[1]);
            if (*declared >= m_.types.size())
                failAt(e.items[i], "type index out of range");
            ++i;
        }
        size_t before = i;
        FuncType inline_type = parseFuncTypeBody(e, i, param_names);
        // Advance i past the param/result forms.
        while (i < e.items.size() &&
               (e.items[i].isForm("param") || e.items[i].isForm("result")))
            ++i;
        if (declared) {
            const FuncType &dt = m_.types[*declared];
            if (i != before && inline_type != dt)
                failAt(e, "inline type does not match (type x)");
            if (param_names && i == before) {
                // Params are anonymous; still reserve their slots.
                for (size_t p = 0; p < dt.params.size(); ++p)
                    param_names->add("");
            }
            return {*declared, i};
        }
        return {m_.addType(inline_type), i};
    }

    // ----- pass 2: declarations ---------------------------------------

    static std::string
    optName(const SExpr &e, size_t &i)
    {
        if (i < e.items.size() && !e.items[i].list && !e.items[i].string &&
            !e.items[i].atom.empty() && e.items[i].atom[0] == '$') {
            return e.items[i++].atom;
        }
        return "";
    }

    /** Collect inline (export "n") forms; returns names. */
    std::vector<std::string>
    inlineExports(const SExpr &e, size_t &i)
    {
        std::vector<std::string> names;
        while (i < e.items.size() && e.items[i].isForm("export")) {
            if (e.items[i].items.size() != 2 || !e.items[i].items[1].string)
                failAt(e.items[i], "inline export needs a string");
            names.push_back(e.items[i].items[1].atom);
            ++i;
        }
        return names;
    }

    /** Inline (import "m" "n") form. */
    std::optional<ImportRef>
    inlineImport(const SExpr &e, size_t &i)
    {
        if (i < e.items.size() && e.items[i].isForm("import")) {
            const SExpr &imp = e.items[i];
            if (imp.items.size() != 3 || !imp.items[1].string ||
                !imp.items[2].string)
                failAt(imp, "inline import needs two strings");
            ++i;
            return ImportRef{imp.items[1].atom, imp.items[2].atom};
        }
        return std::nullopt;
    }

    void
    declareField(const SExpr &e)
    {
        if (e.isForm("func")) {
            size_t i = 1;
            std::string name = optName(e, i);
            std::vector<std::string> exports = inlineExports(e, i);
            std::optional<ImportRef> import = inlineImport(e, i);
            Function f;
            Space params; // discarded; real parsing happens in pass 3
            auto [type_idx, next] = parseTypeUse(e, i, &params);
            (void)next;
            f.typeIdx = type_idx;
            f.import = import;
            f.exportNames = exports;
            if (!name.empty())
                f.debugName = name.substr(1);
            if (import && !m_.functions.empty() &&
                !m_.functions.back().imported())
                failAt(e, "imports must precede defined functions");
            m_.functions.push_back(std::move(f));
            funcSpace_.add(name, &e);
        } else if (e.isForm("memory")) {
            size_t i = 1;
            std::string name = optName(e, i);
            std::vector<std::string> exports = inlineExports(e, i);
            std::optional<ImportRef> import = inlineImport(e, i);
            Memory mem;
            mem.import = import;
            mem.exportNames = exports;
            mem.limits = parseLimits(e, i);
            m_.memories.push_back(std::move(mem));
            memSpace_.add(name, &e);
        } else if (e.isForm("table")) {
            size_t i = 1;
            std::string name = optName(e, i);
            std::vector<std::string> exports = inlineExports(e, i);
            std::optional<ImportRef> import = inlineImport(e, i);
            Table t;
            t.import = import;
            t.exportNames = exports;
            t.limits = parseLimits(e, i);
            if (i < e.items.size() && e.items[i].isAtom("funcref"))
                ++i;
            m_.tables.push_back(std::move(t));
            tableSpace_.add(name, &e);
        } else if (e.isForm("global")) {
            size_t i = 1;
            std::string name = optName(e, i);
            std::vector<std::string> exports = inlineExports(e, i);
            std::optional<ImportRef> import = inlineImport(e, i);
            Global g;
            g.import = import;
            g.exportNames = exports;
            if (i >= e.items.size())
                failAt(e, "global needs a type");
            if (e.items[i].isForm("mut")) {
                g.mut = true;
                if (e.items[i].items.size() != 2)
                    failAt(e.items[i], "(mut t)");
                auto t = valTypeFromAtom(e.items[i].items[1]);
                if (!t)
                    failAt(e.items[i], "expected value type");
                g.type = *t;
            } else {
                auto t = valTypeFromAtom(e.items[i]);
                if (!t)
                    failAt(e.items[i], "expected value type");
                g.type = *t;
            }
            m_.globals.push_back(std::move(g));
            globalSpace_.add(name, &e);
        } else if (e.isForm("import")) {
            // Standalone form: (import "m" "n" (func $f (type ...)))
            if (e.items.size() != 4 || !e.items[1].string ||
                !e.items[2].string)
                failAt(e, "(import \"m\" \"n\" <desc>)");
            ImportRef ref{e.items[1].atom, e.items[2].atom};
            const SExpr &desc = e.items[3];
            if (desc.isForm("func")) {
                size_t i = 1;
                std::string name = optName(desc, i);
                Function f;
                Space params;
                auto [type_idx, next] = parseTypeUse(desc, i, &params);
                (void)next;
                f.typeIdx = type_idx;
                f.import = ref;
                if (!name.empty())
                    f.debugName = name.substr(1);
                m_.functions.push_back(std::move(f));
                funcSpace_.add(name, &desc);
            } else if (desc.isForm("memory")) {
                size_t i = 1;
                std::string name = optName(desc, i);
                Memory mem;
                mem.import = ref;
                mem.limits = parseLimits(desc, i);
                m_.memories.push_back(std::move(mem));
                memSpace_.add(name, &desc);
            } else if (desc.isForm("table")) {
                size_t i = 1;
                std::string name = optName(desc, i);
                Table t;
                t.import = ref;
                t.limits = parseLimits(desc, i);
                m_.tables.push_back(std::move(t));
                tableSpace_.add(name, &desc);
            } else if (desc.isForm("global")) {
                size_t i = 1;
                std::string name = optName(desc, i);
                Global g;
                g.import = ref;
                if (i < desc.items.size() && desc.items[i].isForm("mut")) {
                    g.mut = true;
                    auto t = valTypeFromAtom(desc.items[i].items.at(1));
                    if (!t)
                        failAt(desc, "expected value type");
                    g.type = *t;
                } else if (i < desc.items.size()) {
                    auto t = valTypeFromAtom(desc.items[i]);
                    if (!t)
                        failAt(desc, "expected value type");
                    g.type = *t;
                }
                m_.globals.push_back(std::move(g));
                globalSpace_.add(name, &desc);
            } else {
                failAt(desc, "unsupported import description");
            }
        }
        // type/export/start/elem/data are handled in other passes.
    }

    Limits
    parseLimits(const SExpr &e, size_t &i)
    {
        Limits l;
        if (i >= e.items.size())
            return l;
        l.min = static_cast<uint32_t>(parseIntBits(e.items[i], 32));
        ++i;
        if (i < e.items.size() && !e.items[i].list && !e.items[i].string &&
            !e.items[i].atom.empty() &&
            (std::isdigit(static_cast<unsigned char>(e.items[i].atom[0])))) {
            l.max = static_cast<uint32_t>(parseIntBits(e.items[i], 32));
            ++i;
        }
        return l;
    }

    // ----- pass 3: definitions ------------------------------------------

    void
    defineField(const SExpr &e)
    {
        if (e.isForm("func")) {
            defineFunc(e);
        } else if (e.isForm("export")) {
            if (e.items.size() != 3 || !e.items[1].string)
                failAt(e, "(export \"n\" (kind idx))");
            const SExpr &desc = e.items[2];
            const std::string &name = e.items[1].atom;
            if (desc.isForm("func")) {
                m_.functions
                    .at(funcSpace_.resolve(desc.items.at(1)))
                    .exportNames.push_back(name);
            } else if (desc.isForm("memory")) {
                m_.memories.at(memSpace_.resolve(desc.items.at(1)))
                    .exportNames.push_back(name);
            } else if (desc.isForm("table")) {
                m_.tables.at(tableSpace_.resolve(desc.items.at(1)))
                    .exportNames.push_back(name);
            } else if (desc.isForm("global")) {
                m_.globals.at(globalSpace_.resolve(desc.items.at(1)))
                    .exportNames.push_back(name);
            } else {
                failAt(desc, "unsupported export description");
            }
        } else if (e.isForm("start")) {
            m_.start = funcSpace_.resolve(e.items.at(1));
        } else if (e.isForm("elem")) {
            ElementSegment seg;
            size_t i = 1;
            seg.offset = parseConstExprForm(e.items.at(i));
            ++i;
            if (i < e.items.size() && e.items[i].isAtom("func"))
                ++i;
            for (; i < e.items.size(); ++i)
                seg.funcIdxs.push_back(funcSpace_.resolve(e.items[i]));
            m_.elements.push_back(std::move(seg));
        } else if (e.isForm("data")) {
            DataSegment seg;
            size_t i = 1;
            seg.offset = parseConstExprForm(e.items.at(i));
            ++i;
            for (; i < e.items.size(); ++i) {
                if (!e.items[i].string)
                    failAt(e.items[i], "data expects strings");
                seg.bytes.insert(seg.bytes.end(), e.items[i].atom.begin(),
                                 e.items[i].atom.end());
            }
            m_.data.push_back(std::move(seg));
        } else if (e.isForm("global")) {
            // Initializer of a defined global (last child form).
            uint32_t idx = nextGlobal_++;
            Global &g = m_.globals.at(idx);
            if (g.imported())
                return;
            g.init = parseConstExprForm(e.items.back());
        } else if (e.isForm("import")) {
            // Keep the per-kind definition counters aligned with the
            // index spaces built in pass 2.
            const SExpr &desc = e.items.at(3);
            if (desc.isForm("func"))
                ++nextFunc_;
            else if (desc.isForm("global"))
                ++nextGlobal_;
        }
    }

    /** A folded constant expression like (i32.const 7). */
    std::vector<Instr>
    parseConstExprForm(const SExpr &e)
    {
        if (!e.list || e.items.empty())
            failAt(e, "expected a constant expression");
        FuncBodyParser body(*this, nullptr, nullptr);
        body.parseFolded(e);
        body.instrs.push_back(Instr(Opcode::End));
        return std::move(body.instrs);
    }

    void
    defineFunc(const SExpr &e)
    {
        uint32_t func_idx = nextFunc_++;
        Function &f = m_.functions.at(func_idx);
        size_t i = 1;
        (void)optName(e, i);
        (void)inlineExports(e, i);
        if (f.imported())
            return;
        Space locals;
        auto [type_idx, next] = parseTypeUse(e, i, &locals);
        (void)type_idx;
        i = next;
        // Locals.
        while (i < e.items.size() && e.items[i].isForm("local")) {
            const SExpr &l = e.items[i];
            size_t j = 1;
            if (j < l.items.size() && !l.items[j].list &&
                !l.items[j].atom.empty() && l.items[j].atom[0] == '$') {
                if (j + 1 >= l.items.size())
                    failAt(l, "named local needs a type");
                auto t = valTypeFromAtom(l.items[j + 1]);
                if (!t)
                    failAt(l, "expected value type");
                locals.add(l.items[j].atom, &l);
                f.locals.push_back(*t);
            } else {
                for (; j < l.items.size(); ++j) {
                    auto t = valTypeFromAtom(l.items[j]);
                    if (!t)
                        failAt(l.items[j], "expected value type");
                    locals.add("");
                    f.locals.push_back(*t);
                }
            }
            ++i;
        }
        FuncBodyParser body(*this, &locals, nullptr);
        body.parseSeq(e, i, e.items.size());
        body.instrs.push_back(Instr(Opcode::End));
        f.body = std::move(body.instrs);
    }

    // ----- instruction parsing -------------------------------------------

    friend class FuncBodyParser;

    class FuncBodyParser {
      public:
        FuncBodyParser(ModuleParser &mp, Space *locals, void *)
            : mp_(mp), locals_(locals)
        {
        }

        std::vector<Instr> instrs;

        /** Parse flat instructions e.items[i, end). */
        void
        parseSeq(const SExpr &e, size_t i, size_t end)
        {
            while (i < end)
                i = parseFlat(e, i, end);
        }

        /** Parse one folded instruction (an s-expr list). */
        void
        parseFolded(const SExpr &e)
        {
            if (!e.list || e.items.empty())
                failAt(e, "expected folded instruction");
            const SExpr &head = e.items[0];
            if (head.atom == "block" || head.atom == "loop") {
                size_t i = 1;
                std::string label = labelName(e, i);
                BlockType bt = parseBlockType(e, i);
                labels_.push_back(label);
                instrs.push_back(Instr::blockStart(
                    head.atom == "block" ? Opcode::Block : Opcode::Loop,
                    bt));
                parseSeq(e, i, e.items.size());
                labels_.pop_back();
                instrs.push_back(Instr(Opcode::End));
                return;
            }
            if (head.atom == "if") {
                size_t i = 1;
                std::string label = labelName(e, i);
                BlockType bt = parseBlockType(e, i);
                // Condition expressions precede (then ...).
                while (i < e.items.size() && !e.items[i].isForm("then"))
                    parseFolded(e.items[i++]);
                labels_.push_back(label);
                instrs.push_back(Instr::blockStart(Opcode::If, bt));
                if (i >= e.items.size())
                    failAt(e, "folded if needs (then ...)");
                parseSeq(e.items[i], 1, e.items[i].items.size());
                ++i;
                if (i < e.items.size() && e.items[i].isForm("else")) {
                    instrs.push_back(Instr(Opcode::Else));
                    parseSeq(e.items[i], 1, e.items[i].items.size());
                    ++i;
                }
                labels_.pop_back();
                instrs.push_back(Instr(Opcode::End));
                if (i != e.items.size())
                    failAt(e, "trailing items in folded if");
                return;
            }
            // Plain op: (op imm* operand*) — operands first, then op.
            auto [instr, i] = parseOpWithImms(e, 0);
            for (; i < e.items.size(); ++i)
                parseFolded(e.items[i]);
            instrs.push_back(std::move(instr));
        }

      private:
        std::string
        labelName(const SExpr &e, size_t &i)
        {
            if (i < e.items.size() && !e.items[i].list &&
                !e.items[i].string && !e.items[i].atom.empty() &&
                e.items[i].atom[0] == '$') {
                return e.items[i++].atom;
            }
            return "";
        }

        BlockType
        parseBlockType(const SExpr &e, size_t &i)
        {
            if (i < e.items.size() && e.items[i].isForm("result")) {
                const SExpr &r = e.items[i];
                if (r.items.size() != 2)
                    failAt(r, "blocks support at most one result");
                auto t = valTypeFromAtom(r.items[1]);
                if (!t)
                    failAt(r, "expected value type");
                ++i;
                return *t;
            }
            return std::nullopt;
        }

        uint32_t
        resolveLabel(const SExpr &e)
        {
            if (!e.list && !e.atom.empty() && e.atom[0] == '$') {
                for (size_t d = 0; d < labels_.size(); ++d) {
                    if (labels_[labels_.size() - 1 - d] == e.atom)
                        return static_cast<uint32_t>(d);
                }
                failAt(e, "unknown label " + e.atom);
            }
            return static_cast<uint32_t>(parseIntBits(e, 32));
        }

        uint32_t
        resolveLocal(const SExpr &e)
        {
            if (locals_ == nullptr)
                failAt(e, "locals not allowed here");
            return locals_->resolve(e);
        }

        /** True if the atom at items[i] looks like a label/index arg. */
        static bool
        isIndexLike(const SExpr &e)
        {
            if (e.list || e.string || e.atom.empty())
                return false;
            char c = e.atom[0];
            return c == '$' || (c >= '0' && c <= '9') || c == '-';
        }

        /**
         * Parse one opcode + its immediates from e.items starting at
         * @p at (the opcode atom). Returns the instruction and the
         * index of the first unconsumed item.
         */
        std::pair<Instr, size_t>
        parseOpWithImms(const SExpr &e, size_t at)
        {
            const SExpr &head = e.items.at(at);
            if (head.list || head.string)
                failAt(head, "expected an instruction mnemonic");
            Opcode op;
            if (auto o = mp_.opcodeByName(head.atom)) {
                op = *o;
            } else {
                failAt(head, "unknown instruction " + head.atom);
            }
            Instr instr(op);
            size_t i = at + 1;
            switch (opInfo(op).imm) {
              case ImmKind::None:
              case ImmKind::MemIdx:
              case ImmKind::BlockType: // handled by callers
                break;
              case ImmKind::Label:
                instr.imm.idx = resolveLabel(e.items.at(i++));
                break;
              case ImmKind::BrTableImm: {
                std::vector<uint32_t> targets;
                while (i < e.items.size() && isIndexLike(e.items[i]))
                    targets.push_back(resolveLabel(e.items[i++]));
                if (targets.empty())
                    failAt(e, "br_table needs at least a default");
                uint32_t def = targets.back();
                targets.pop_back();
                instr = Instr::brTable(std::move(targets), def);
                break;
              }
              case ImmKind::Func:
                instr.imm.idx = mp_.funcSpace_.resolve(e.items.at(i++));
                break;
              case ImmKind::CallInd: {
                if (i < e.items.size() && e.items[i].isForm("type")) {
                    instr.imm.idx =
                        mp_.typeSpace_.resolve(e.items[i].items.at(1));
                    ++i;
                } else {
                    failAt(e, "call_indirect needs (type x)");
                }
                break;
              }
              case ImmKind::Local:
                instr.imm.idx = resolveLocal(e.items.at(i++));
                break;
              case ImmKind::Global:
                instr.imm.idx =
                    mp_.globalSpace_.resolve(e.items.at(i++));
                break;
              case ImmKind::Mem: {
                // offset=N and align=N in either order.
                while (i < e.items.size() && !e.items[i].list &&
                       (e.items[i].atom.rfind("offset=", 0) == 0 ||
                        e.items[i].atom.rfind("align=", 0) == 0)) {
                    const std::string &a = e.items[i].atom;
                    SExpr num = e.items[i];
                    num.atom = a.substr(a.find('=') + 1);
                    uint32_t v =
                        static_cast<uint32_t>(parseIntBits(num, 32));
                    if (a[0] == 'o') {
                        instr.imm.mem.offset = v;
                    } else {
                        // WAT align is in bytes; encode log2.
                        uint32_t log2 = 0;
                        while ((1u << log2) < v)
                            ++log2;
                        instr.imm.mem.align = log2;
                    }
                    ++i;
                }
                break;
              }
              case ImmKind::I32:
                instr.imm.i32v =
                    static_cast<uint32_t>(parseIntBits(e.items.at(i++), 32));
                break;
              case ImmKind::I64:
                instr.imm.i64v = parseIntBits(e.items.at(i++), 64);
                break;
              case ImmKind::F32:
                instr.imm.f32v =
                    static_cast<float>(parseFloat(e.items.at(i++)));
                break;
              case ImmKind::F64:
                instr.imm.f64v = parseFloat(e.items.at(i++));
                break;
            }
            return {std::move(instr), i};
        }

        /** Parse one flat-form instruction at items[i]; returns the
         * index after it (including any nested flat body). */
        size_t
        parseFlat(const SExpr &e, size_t i, size_t end)
        {
            const SExpr &head = e.items.at(i);
            if (head.list) {
                parseFolded(head);
                return i + 1;
            }
            if (head.atom == "block" || head.atom == "loop" ||
                head.atom == "if") {
                size_t j = i + 1;
                std::string label = labelName(e, j);
                BlockType bt = parseBlockType(e, j);
                Opcode op = head.atom == "block"  ? Opcode::Block
                            : head.atom == "loop" ? Opcode::Loop
                                                  : Opcode::If;
                labels_.push_back(label);
                instrs.push_back(Instr::blockStart(op, bt));
                int depth = 1;
                while (j < end && depth > 0) {
                    const SExpr &cur = e.items[j];
                    if (!cur.list &&
                        (cur.atom == "block" || cur.atom == "loop" ||
                         cur.atom == "if")) {
                        // Nested flat block: recurse.
                        j = parseFlat(e, j, end);
                        continue;
                    }
                    if (cur.isAtom("else") && depth == 1) {
                        instrs.push_back(Instr(Opcode::Else));
                        ++j;
                        // optional label id after else
                        (void)labelName(e, j);
                        continue;
                    }
                    if (cur.isAtom("end")) {
                        --depth;
                        ++j;
                        (void)labelName(e, j); // optional trailing id
                        continue;
                    }
                    j = parseFlat(e, j, end);
                }
                if (depth != 0)
                    failAt(head, "missing end");
                labels_.pop_back();
                instrs.push_back(Instr(Opcode::End));
                return j;
            }
            if (head.isAtom("end") || head.isAtom("else"))
                failAt(head, "unexpected " + head.atom);
            auto [instr, next] = parseOpWithImms(e, i);
            instrs.push_back(std::move(instr));
            return next;
        }

        ModuleParser &mp_;
        Space *locals_;
        std::vector<std::string> labels_;
    };

    std::optional<Opcode>
    opcodeByName(const std::string &name)
    {
        if (opcodeNames_.empty()) {
            for (Opcode op : allOpcodes())
                opcodeNames_[wasm::name(op)] = op;
            // Accept the pre-1.0 mnemonics too (the paper uses them).
            opcodeNames_["get_local"] = Opcode::LocalGet;
            opcodeNames_["set_local"] = Opcode::LocalSet;
            opcodeNames_["tee_local"] = Opcode::LocalTee;
            opcodeNames_["get_global"] = Opcode::GlobalGet;
            opcodeNames_["set_global"] = Opcode::GlobalSet;
            opcodeNames_["current_memory"] = Opcode::MemorySize;
            opcodeNames_["grow_memory"] = Opcode::MemoryGrow;
        }
        auto it = opcodeNames_.find(name);
        if (it == opcodeNames_.end())
            return std::nullopt;
        return it->second;
    }

    Module m_;
    Space typeSpace_, funcSpace_, globalSpace_, tableSpace_, memSpace_;
    uint32_t nextFunc_ = 0;
    uint32_t nextGlobal_ = 0;
    std::map<std::string, Opcode> opcodeNames_;
};

} // namespace

Module
parseWat(const std::string &text)
{
    Lexer lexer(text);
    SExpr root = lexer.parseAll();
    return ModuleParser().run(root);
}

} // namespace wasabi::wasm
