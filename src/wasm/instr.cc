#include "wasm/instr.h"

namespace wasabi::wasm {

Value
Instr::constValue() const
{
    switch (op) {
      case Opcode::I32Const: return Value::makeI32(imm.i32v);
      case Opcode::I64Const: return Value::makeI64(imm.i64v);
      case Opcode::F32Const: return Value::makeF32(imm.f32v);
      case Opcode::F64Const: return Value::makeF64(imm.f64v);
      default: return Value();
    }
}

bool
sameImm(const Instr &a, const Instr &b)
{
    if (a.op != b.op)
        return false;
    switch (opInfo(a.op).imm) {
      case ImmKind::None:
      case ImmKind::MemIdx:
        return true;
      case ImmKind::BlockType:
        return a.block == b.block;
      case ImmKind::Label:
      case ImmKind::Func:
      case ImmKind::CallInd:
      case ImmKind::Local:
      case ImmKind::Global:
        return a.imm.idx == b.imm.idx;
      case ImmKind::BrTableImm:
        return a.table == b.table;
      case ImmKind::Mem:
        return a.imm.mem == b.imm.mem;
      case ImmKind::I32:
        return a.imm.i32v == b.imm.i32v;
      case ImmKind::I64:
        return a.imm.i64v == b.imm.i64v;
      case ImmKind::F32:
      case ImmKind::F64:
        // Compare bit patterns so NaNs compare equal to themselves.
        return a.constValue() == b.constValue();
    }
    return false;
}

bool
Instr::operator==(const Instr &other) const
{
    return sameImm(*this, other);
}

} // namespace wasabi::wasm
