#include "wasm/name_section.h"

#include "wasm/leb128.h"

namespace wasabi::wasm {

size_t
applyNameSection(Module &m)
{
    const CustomSection *section = nullptr;
    for (const CustomSection &c : m.customs) {
        if (c.name == "name") {
            section = &c;
            break;
        }
    }
    if (section == nullptr)
        return 0;

    size_t applied = 0;
    try {
        ByteReader r(section->bytes);
        while (!r.done()) {
            uint8_t id = r.readByte();
            uint32_t size = r.readU32();
            if (id != 1) {
                // Skip module/local/other name subsections.
                r.readBytes(size);
                continue;
            }
            ByteReader sub(section->bytes.data() + r.pos(), size);
            uint32_t count = sub.readU32();
            for (uint32_t i = 0; i < count; ++i) {
                uint32_t func_idx = sub.readU32();
                std::string name = sub.readName();
                if (func_idx < m.functions.size()) {
                    m.functions[func_idx].debugName = std::move(name);
                    ++applied;
                }
            }
            r.readBytes(size);
        }
    } catch (const DecodeError &) {
        // Name payloads are non-semantic; ignore malformed ones.
    }
    return applied;
}

void
buildNameSection(Module &m)
{
    // Collect named functions.
    std::vector<std::pair<uint32_t, const std::string *>> names;
    for (uint32_t i = 0; i < m.functions.size(); ++i) {
        if (!m.functions[i].debugName.empty())
            names.push_back({i, &m.functions[i].debugName});
    }

    // Drop any existing name section.
    std::erase_if(m.customs, [](const CustomSection &c) {
        return c.name == "name";
    });
    if (names.empty())
        return;

    std::vector<uint8_t> payload;
    // Subsection 1: function names.
    std::vector<uint8_t> sub;
    encodeULEB(sub, names.size());
    for (auto [idx, name] : names) {
        encodeULEB(sub, idx);
        encodeULEB(sub, name->size());
        sub.insert(sub.end(), name->begin(), name->end());
    }
    payload.push_back(1);
    encodeULEB(payload, sub.size());
    payload.insert(payload.end(), sub.begin(), sub.end());

    m.customs.push_back({"name", std::move(payload)});
}

std::string
functionName(const Module &m, uint32_t func_idx)
{
    if (func_idx < m.functions.size()) {
        const Function &f = m.functions[func_idx];
        if (!f.debugName.empty())
            return f.debugName;
        if (!f.exportNames.empty())
            return f.exportNames.front();
        if (f.imported())
            return f.import->module + "." + f.import->name;
    }
    return "f" + std::to_string(func_idx);
}

} // namespace wasabi::wasm
