#include "wasm/name_section.h"

#include <algorithm>

#include "wasm/leb128.h"
#include "wasm/remap.h"

namespace wasabi::wasm {

namespace {

const CustomSection *
findNameSection(const Module &m)
{
    for (const CustomSection &c : m.customs) {
        if (c.name == "name")
            return &c;
    }
    return nullptr;
}

NameMap
readNameMap(ByteReader &r)
{
    NameMap names;
    uint32_t count = r.readU32();
    for (uint32_t i = 0; i < count; ++i) {
        uint32_t idx = r.readU32();
        std::string name = r.readName();
        names.push_back({idx, std::move(name)});
    }
    return names;
}

IndirectNameMap
readIndirectNameMap(ByteReader &r)
{
    IndirectNameMap maps;
    uint32_t count = r.readU32();
    for (uint32_t i = 0; i < count; ++i) {
        uint32_t func_idx = r.readU32();
        maps.push_back({func_idx, readNameMap(r)});
    }
    return maps;
}

void
writeName(std::vector<uint8_t> &out, const std::string &name)
{
    encodeULEB(out, name.size());
    out.insert(out.end(), name.begin(), name.end());
}

void
writeNameMap(std::vector<uint8_t> &out, const NameMap &names)
{
    encodeULEB(out, names.size());
    for (const auto &[idx, name] : names) {
        encodeULEB(out, idx);
        writeName(out, name);
    }
}

void
writeIndirectNameMap(std::vector<uint8_t> &out, const IndirectNameMap &maps)
{
    encodeULEB(out, maps.size());
    for (const auto &[func_idx, names] : maps) {
        encodeULEB(out, func_idx);
        writeNameMap(out, names);
    }
}

void
writeSubsection(std::vector<uint8_t> &payload, uint8_t id,
                const std::vector<uint8_t> &sub)
{
    payload.push_back(id);
    encodeULEB(payload, sub.size());
    payload.insert(payload.end(), sub.begin(), sub.end());
}

} // namespace

size_t
applyNameSection(Module &m)
{
    const CustomSection *section = findNameSection(m);
    if (section == nullptr)
        return 0;

    size_t applied = 0;
    try {
        ByteReader r(section->bytes);
        while (!r.done()) {
            uint8_t id = r.readByte();
            uint32_t size = r.readU32();
            if (id != 1) {
                // Skip module/local/other name subsections.
                r.readBytes(size);
                continue;
            }
            ByteReader sub(section->bytes.data() + r.pos(), size);
            uint32_t count = sub.readU32();
            for (uint32_t i = 0; i < count; ++i) {
                uint32_t func_idx = sub.readU32();
                std::string name = sub.readName();
                if (func_idx < m.functions.size()) {
                    m.functions[func_idx].debugName = std::move(name);
                    ++applied;
                }
            }
            r.readBytes(size);
        }
    } catch (const DecodeError &) {
        // Name payloads are non-semantic; ignore malformed ones.
    }
    return applied;
}

void
buildNameSection(Module &m)
{
    // Collect named functions.
    std::vector<std::pair<uint32_t, const std::string *>> names;
    for (uint32_t i = 0; i < m.functions.size(); ++i) {
        if (!m.functions[i].debugName.empty())
            names.push_back({i, &m.functions[i].debugName});
    }

    // Drop any existing name section.
    std::erase_if(m.customs, [](const CustomSection &c) {
        return c.name == "name";
    });
    if (names.empty())
        return;

    std::vector<uint8_t> payload;
    // Subsection 1: function names.
    std::vector<uint8_t> sub;
    encodeULEB(sub, names.size());
    for (auto [idx, name] : names) {
        encodeULEB(sub, idx);
        encodeULEB(sub, name->size());
        sub.insert(sub.end(), name->begin(), name->end());
    }
    payload.push_back(1);
    encodeULEB(payload, sub.size());
    payload.insert(payload.end(), sub.begin(), sub.end());

    m.customs.push_back({"name", std::move(payload)});
}

std::string
functionName(const Module &m, uint32_t func_idx)
{
    if (func_idx < m.functions.size()) {
        const Function &f = m.functions[func_idx];
        if (!f.debugName.empty())
            return f.debugName;
        if (!f.exportNames.empty())
            return f.exportNames.front();
        if (f.imported())
            return f.import->module + "." + f.import->name;
    }
    return "f" + std::to_string(func_idx);
}

NameSectionData
parseNameSection(const Module &m)
{
    NameSectionData data;
    const CustomSection *section = findNameSection(m);
    if (section == nullptr)
        return data;

    try {
        ByteReader r(section->bytes);
        while (!r.done()) {
            uint8_t id = r.readByte();
            uint32_t size = r.readU32();
            ByteReader sub(section->bytes.data() + r.pos(), size);
            switch (id) {
              case 0:
                data.moduleName = sub.readName();
                break;
              case 1:
                data.funcNames = readNameMap(sub);
                break;
              case 2:
                data.localNames = readIndirectNameMap(sub);
                break;
              case 3:
                data.labelNames = readIndirectNameMap(sub);
                break;
              default:
                break; // unknown subsection: skipped
            }
            r.readBytes(size);
        }
    } catch (const DecodeError &) {
        // Keep whatever parsed cleanly before the malformed part.
    }
    return data;
}

void
setNameSection(Module &m, const NameSectionData &data)
{
    std::erase_if(m.customs, [](const CustomSection &c) {
        return c.name == "name";
    });
    if (data.empty())
        return;

    std::vector<uint8_t> payload;
    std::vector<uint8_t> sub;
    if (data.moduleName) {
        writeName(sub, *data.moduleName);
        writeSubsection(payload, 0, sub);
    }
    if (!data.funcNames.empty()) {
        sub.clear();
        writeNameMap(sub, data.funcNames);
        writeSubsection(payload, 1, sub);
    }
    if (!data.localNames.empty()) {
        sub.clear();
        writeIndirectNameMap(sub, data.localNames);
        writeSubsection(payload, 2, sub);
    }
    if (!data.labelNames.empty()) {
        sub.clear();
        writeIndirectNameMap(sub, data.labelNames);
        writeSubsection(payload, 3, sub);
    }
    m.customs.push_back({"name", std::move(payload)});
}

namespace {

uint32_t
mappedFunc(const std::vector<uint32_t> &func_map, uint32_t old_idx)
{
    if (func_map.empty())
        return old_idx;
    if (old_idx >= func_map.size())
        return kDeletedIndex;
    return func_map[old_idx];
}

void
remapIndirect(IndirectNameMap &maps,
              const std::vector<uint32_t> &func_map)
{
    IndirectNameMap out;
    for (auto &[old_idx, names] : maps) {
        uint32_t new_idx = mappedFunc(func_map, old_idx);
        if (new_idx != kDeletedIndex)
            out.push_back({new_idx, std::move(names)});
    }
    std::sort(out.begin(), out.end(),
              [](const auto &a, const auto &b) { return a.first < b.first; });
    maps = std::move(out);
}

} // namespace

void
remapNameData(NameSectionData &data, const std::vector<uint32_t> &func_map)
{
    NameMap funcs;
    for (auto &[old_idx, name] : data.funcNames) {
        uint32_t new_idx = mappedFunc(func_map, old_idx);
        if (new_idx != kDeletedIndex)
            funcs.push_back({new_idx, std::move(name)});
    }
    std::sort(funcs.begin(), funcs.end(),
              [](const auto &a, const auto &b) { return a.first < b.first; });
    data.funcNames = std::move(funcs);
    remapIndirect(data.localNames, func_map);
    remapIndirect(data.labelNames, func_map);
}

} // namespace wasabi::wasm
