/**
 * @file
 * Shared index-remapping layer for binary rewriting: when functions,
 * types, or globals are inserted or deleted, every reference in the
 * module — call immediates, `call_indirect` type immediates,
 * global accesses, element segments, global initializers, the start
 * section, and the "name" custom section — must be rewritten for the
 * shifted index space. The instrumenter (hook-import injection) and
 * the rewriting toolkit (`src/static/rewrite/`) both build on this.
 *
 * A reference to a *deleted* entity from surviving code is a
 * structured RemapError, never silent corruption.
 */

#ifndef WASABI_WASM_REMAP_H
#define WASABI_WASM_REMAP_H

#include <stdexcept>
#include <string>
#include <vector>

#include "wasm/module.h"

namespace wasabi::wasm {

/** Sentinel in a remap table: the old index has no new home. */
inline constexpr uint32_t kDeletedIndex = 0xFFFFFFFFu;

/**
 * Old-index -> new-index maps for the three index spaces a rewrite
 * can shift. An empty vector means "identity" for that space; an
 * entry of kDeletedIndex means the entity was deleted.
 */
struct IndexRemap {
    std::vector<uint32_t> funcMap;
    std::vector<uint32_t> typeMap;
    std::vector<uint32_t> globalMap;

    /** Identity for all spaces (no edits). */
    bool
    identity() const
    {
        return funcMap.empty() && typeMap.empty() && globalMap.empty();
    }

    uint32_t func(uint32_t old_idx) const { return lookup(funcMap, old_idx); }
    uint32_t type(uint32_t old_idx) const { return lookup(typeMap, old_idx); }
    uint32_t global(uint32_t old_idx) const
    {
        return lookup(globalMap, old_idx);
    }

  private:
    static uint32_t
    lookup(const std::vector<uint32_t> &map, uint32_t old_idx)
    {
        if (map.empty() || old_idx >= map.size())
            return old_idx;
        return map[old_idx];
    }
};

/** Structured rewrite-fixup failure with a stable dotted code, e.g.
 * "remap.element-deleted-function". */
class RemapError : public std::runtime_error {
  public:
    RemapError(std::string code, const std::string &what)
        : std::runtime_error("remap error [" + code + "]: " + what),
          code_(std::move(code))
    {
    }

    const std::string &code() const { return code_; }

  private:
    std::string code_;
};

/**
 * Rewrite every index reference in @p m through @p remap: function
 * typeIdx fields, Call / CallIndirect / GlobalGet / GlobalSet
 * immediates in bodies and constant expressions, element-segment
 * function lists, the start section, and the "name" custom section
 * (function, local, and label subsections). The module's entity
 * vectors themselves are NOT reordered — callers compact those first
 * and then call this to fix the references.
 *
 * Throws RemapError when surviving code still references a deleted
 * entity:
 *  - "remap.call-deleted-function"      (call immediate)
 *  - "remap.element-deleted-function"   (element segment entry)
 *  - "remap.start-deleted-function"     (start section)
 *  - "remap.call-deleted-type"          (call_indirect type)
 *  - "remap.func-deleted-type"          (function signature)
 *  - "remap.access-deleted-global"      (global.get/set or init expr)
 */
void remapModule(Module &m, const IndexRemap &remap);

} // namespace wasabi::wasm

#endif // WASABI_WASM_REMAP_H
