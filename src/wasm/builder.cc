#include "wasm/builder.h"

#include <stdexcept>

namespace wasabi::wasm {

FunctionBuilder &
FunctionBuilder::emit(Instr instr)
{
    if (finished_)
        throw std::logic_error("FunctionBuilder: emit after finish");
    mb_.m_.functions.at(funcIdx_).body.push_back(std::move(instr));
    return *this;
}

uint32_t
FunctionBuilder::addLocal(ValType t)
{
    Function &f = mb_.m_.functions.at(funcIdx_);
    f.locals.push_back(t);
    return numParams_ + static_cast<uint32_t>(f.locals.size()) - 1;
}

FunctionBuilder &
FunctionBuilder::block(BlockType bt)
{
    ++depth_;
    return emit(Instr::blockStart(Opcode::Block, bt));
}

FunctionBuilder &
FunctionBuilder::loop(BlockType bt)
{
    ++depth_;
    return emit(Instr::blockStart(Opcode::Loop, bt));
}

FunctionBuilder &
FunctionBuilder::if_(BlockType bt)
{
    ++depth_;
    return emit(Instr::blockStart(Opcode::If, bt));
}

FunctionBuilder &
FunctionBuilder::else_()
{
    return emit(Instr(Opcode::Else));
}

FunctionBuilder &
FunctionBuilder::end()
{
    if (depth_ <= 0)
        throw std::logic_error("FunctionBuilder: unbalanced end");
    --depth_;
    return emit(Instr(Opcode::End));
}

FunctionBuilder &
FunctionBuilder::forLoop(uint32_t local, int32_t from, int32_t to,
                         const std::function<void()> &body, int32_t step)
{
    // local = from
    i32Const(from);
    localSet(local);
    block();
    loop();
    // if (local >= to) break
    localGet(local);
    i32Const(to);
    op(Opcode::I32GeS);
    brIf(1);
    body();
    // local += step; continue
    localGet(local);
    i32Const(step);
    op(Opcode::I32Add);
    localSet(local);
    br(0);
    end(); // loop
    end(); // block
    return *this;
}

uint32_t
FunctionBuilder::finish()
{
    if (finished_)
        throw std::logic_error("FunctionBuilder: finish called twice");
    if (depth_ != 0)
        throw std::logic_error("FunctionBuilder: unbalanced blocks");
    emit(Instr(Opcode::End));
    finished_ = true;
    mb_.functionOpen_ = false;
    return funcIdx_;
}

ModuleBuilder::ModuleBuilder() = default;

uint32_t
ModuleBuilder::importFunction(const std::string &module,
                              const std::string &name, const FuncType &type)
{
    for (const Function &f : m_.functions) {
        if (!f.imported()) {
            throw std::logic_error(
                "ModuleBuilder: imports must precede defined functions");
        }
    }
    Function f;
    f.typeIdx = m_.addType(type);
    f.import = ImportRef{module, name};
    m_.functions.push_back(std::move(f));
    return static_cast<uint32_t>(m_.functions.size() - 1);
}

FunctionBuilder
ModuleBuilder::startFunction(const FuncType &type,
                             const std::string &export_name,
                             const std::string &debug_name)
{
    if (functionOpen_) {
        throw std::logic_error(
            "ModuleBuilder: previous function not finished");
    }
    functionOpen_ = true;
    Function f;
    f.typeIdx = m_.addType(type);
    if (!export_name.empty())
        f.exportNames.push_back(export_name);
    f.debugName = debug_name.empty() ? export_name : debug_name;
    m_.functions.push_back(std::move(f));
    return FunctionBuilder(*this,
                           static_cast<uint32_t>(m_.functions.size() - 1),
                           static_cast<uint32_t>(type.params.size()));
}

uint32_t
ModuleBuilder::addFunction(const FuncType &type,
                           const std::string &export_name,
                           const std::function<void(FunctionBuilder &)> &fill)
{
    FunctionBuilder fb = startFunction(type, export_name);
    fill(fb);
    return fb.finish();
}

uint32_t
ModuleBuilder::memory(uint32_t min_pages, std::optional<uint32_t> max_pages,
                      const std::string &export_name)
{
    Memory mem;
    mem.limits = Limits{min_pages, max_pages};
    if (!export_name.empty())
        mem.exportNames.push_back(export_name);
    m_.memories.push_back(std::move(mem));
    return static_cast<uint32_t>(m_.memories.size() - 1);
}

uint32_t
ModuleBuilder::table(uint32_t min, std::optional<uint32_t> max)
{
    Table t;
    t.limits = Limits{min, max};
    m_.tables.push_back(std::move(t));
    return static_cast<uint32_t>(m_.tables.size() - 1);
}

uint32_t
ModuleBuilder::global(ValType t, bool mut, Value init,
                      const std::string &export_name)
{
    Global g;
    g.type = t;
    g.mut = mut;
    Instr c;
    switch (t) {
      case ValType::I32: c = Instr::i32Const(init.i32()); break;
      case ValType::I64: c = Instr::i64Const(init.i64()); break;
      case ValType::F32: c = Instr::f32Const(init.f32()); break;
      case ValType::F64: c = Instr::f64Const(init.f64()); break;
    }
    g.init = {c, Instr(Opcode::End)};
    if (!export_name.empty())
        g.exportNames.push_back(export_name);
    m_.globals.push_back(std::move(g));
    return static_cast<uint32_t>(m_.globals.size() - 1);
}

void
ModuleBuilder::elem(uint32_t offset, std::vector<uint32_t> func_idxs)
{
    ElementSegment seg;
    seg.tableIdx = 0;
    seg.offset = {Instr::i32Const(offset), Instr(Opcode::End)};
    seg.funcIdxs = std::move(func_idxs);
    m_.elements.push_back(std::move(seg));
}

void
ModuleBuilder::data(uint32_t offset, std::vector<uint8_t> bytes)
{
    DataSegment seg;
    seg.memIdx = 0;
    seg.offset = {Instr::i32Const(offset), Instr(Opcode::End)};
    seg.bytes = std::move(bytes);
    m_.data.push_back(std::move(seg));
}

Module
ModuleBuilder::build()
{
    if (functionOpen_)
        throw std::logic_error("ModuleBuilder: unfinished function");
    return std::move(m_);
}

} // namespace wasabi::wasm
