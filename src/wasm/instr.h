/**
 * @file
 * In-memory instruction representation: an opcode plus its decoded
 * immediates. Function bodies are flat vectors of Instr; structure
 * (block/loop/if/else/end nesting) is implicit, exactly as in the
 * binary format.
 */

#ifndef WASABI_WASM_INSTR_H
#define WASABI_WASM_INSTR_H

#include <cstdint>
#include <optional>
#include <vector>

#include "wasm/opcode.h"
#include "wasm/types.h"

namespace wasabi::wasm {

/**
 * Block result type of block/loop/if. The MVP binary format allows
 * either an empty result or a single value type.
 */
using BlockType = std::optional<ValType>;

/** Memory immediate of loads/stores: alignment exponent and offset. */
struct MemArg {
    uint32_t align = 0;
    uint32_t offset = 0;

    bool operator==(const MemArg &other) const = default;
};

/**
 * One decoded instruction. Immediates are a union discriminated by
 * opInfo(op).imm; br_table labels live in a side vector since they are
 * variable-length.
 */
struct Instr {
    Opcode op = Opcode::Nop;

    union Imm {
        uint32_t idx;    ///< label / func / local / global / type index
        MemArg mem;      ///< loads & stores
        uint32_t i32v;   ///< i32.const payload (as bits)
        uint64_t i64v;   ///< i64.const payload (as bits)
        float f32v;      ///< f32.const payload
        double f64v;     ///< f64.const payload

        Imm() : i64v(0) {}
    } imm;

    /** Block result type; meaningful for block/loop/if only. */
    BlockType block;

    /** br_table: target labels; the *last* element is the default. */
    std::vector<uint32_t> table;

    Instr() = default;

    explicit Instr(Opcode o) : op(o) {}

    /** Builder helpers for common instructions. @{ */
    static Instr
    i32Const(uint32_t v)
    {
        Instr i(Opcode::I32Const);
        i.imm.i32v = v;
        return i;
    }

    static Instr
    i64Const(uint64_t v)
    {
        Instr i(Opcode::I64Const);
        i.imm.i64v = v;
        return i;
    }

    static Instr
    f32Const(float v)
    {
        Instr i(Opcode::F32Const);
        i.imm.f32v = v;
        return i;
    }

    static Instr
    f64Const(double v)
    {
        Instr i(Opcode::F64Const);
        i.imm.f64v = v;
        return i;
    }

    static Instr
    withIdx(Opcode o, uint32_t idx)
    {
        Instr i(o);
        i.imm.idx = idx;
        return i;
    }

    static Instr
    localGet(uint32_t idx)
    {
        return withIdx(Opcode::LocalGet, idx);
    }

    static Instr
    localSet(uint32_t idx)
    {
        return withIdx(Opcode::LocalSet, idx);
    }

    static Instr
    localTee(uint32_t idx)
    {
        return withIdx(Opcode::LocalTee, idx);
    }

    static Instr
    globalGet(uint32_t idx)
    {
        return withIdx(Opcode::GlobalGet, idx);
    }

    static Instr
    globalSet(uint32_t idx)
    {
        return withIdx(Opcode::GlobalSet, idx);
    }

    static Instr
    call(uint32_t func_idx)
    {
        return withIdx(Opcode::Call, func_idx);
    }

    static Instr
    callIndirect(uint32_t type_idx)
    {
        return withIdx(Opcode::CallIndirect, type_idx);
    }

    static Instr
    br(uint32_t label)
    {
        return withIdx(Opcode::Br, label);
    }

    static Instr
    brIf(uint32_t label)
    {
        return withIdx(Opcode::BrIf, label);
    }

    static Instr
    brTable(std::vector<uint32_t> labels, uint32_t default_label)
    {
        Instr i(Opcode::BrTable);
        i.table = std::move(labels);
        i.table.push_back(default_label);
        return i;
    }

    static Instr
    blockStart(Opcode o, BlockType bt)
    {
        Instr i(o);
        i.block = bt;
        return i;
    }

    static Instr
    memOp(Opcode o, uint32_t align, uint32_t offset)
    {
        Instr i(o);
        i.imm.mem = MemArg{align, offset};
        return i;
    }
    /** @} */

    /** The value pushed by a const instruction. */
    Value constValue() const;

    bool operator==(const Instr &other) const;
};

/** Structural + immediate equality (ignores unused union bytes). */
bool sameImm(const Instr &a, const Instr &b);

} // namespace wasabi::wasm

#endif // WASABI_WASM_INSTR_H
