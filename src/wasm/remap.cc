#include "wasm/remap.h"

#include "wasm/name_section.h"

namespace wasabi::wasm {

namespace {

uint32_t
remapOrThrow(const std::vector<uint32_t> &map, uint32_t old_idx,
             const char *code, const std::string &context)
{
    if (map.empty() || old_idx >= map.size())
        return old_idx;
    uint32_t new_idx = map[old_idx];
    if (new_idx == kDeletedIndex)
        throw RemapError(code, context + " still references deleted index " +
                                   std::to_string(old_idx));
    return new_idx;
}

void
remapExpr(std::vector<Instr> &body, const IndexRemap &remap,
          const std::string &context)
{
    for (Instr &instr : body) {
        switch (instr.op) {
          case Opcode::Call:
            instr.imm.idx =
                remapOrThrow(remap.funcMap, instr.imm.idx,
                             "remap.call-deleted-function", context);
            break;
          case Opcode::CallIndirect:
            instr.imm.idx =
                remapOrThrow(remap.typeMap, instr.imm.idx,
                             "remap.call-deleted-type", context);
            break;
          case Opcode::GlobalGet:
          case Opcode::GlobalSet:
            instr.imm.idx =
                remapOrThrow(remap.globalMap, instr.imm.idx,
                             "remap.access-deleted-global", context);
            break;
          default:
            break;
        }
    }
}

} // namespace

void
remapModule(Module &m, const IndexRemap &remap)
{
    if (remap.identity())
        return;

    for (uint32_t i = 0; i < m.functions.size(); ++i) {
        Function &f = m.functions[i];
        std::string context = "function " + std::to_string(i);
        f.typeIdx = remapOrThrow(remap.typeMap, f.typeIdx,
                                 "remap.func-deleted-type", context);
        remapExpr(f.body, remap, context);
    }
    for (uint32_t i = 0; i < m.globals.size(); ++i)
        remapExpr(m.globals[i].init, remap,
                  "global " + std::to_string(i) + " initializer");
    for (uint32_t i = 0; i < m.elements.size(); ++i) {
        ElementSegment &seg = m.elements[i];
        std::string context = "element segment " + std::to_string(i);
        remapExpr(seg.offset, remap, context);
        for (uint32_t &f : seg.funcIdxs)
            f = remapOrThrow(remap.funcMap, f,
                             "remap.element-deleted-function", context);
    }
    for (DataSegment &seg : m.data)
        remapExpr(seg.offset, remap, "data segment offset");
    if (m.start)
        m.start = remapOrThrow(remap.funcMap, *m.start,
                               "remap.start-deleted-function",
                               "start section");

    if (!remap.funcMap.empty()) {
        NameSectionData names = parseNameSection(m);
        if (!names.empty()) {
            remapNameData(names, remap.funcMap);
            setNameSection(m, names);
        }
    }
}

} // namespace wasabi::wasm
