#include "wasm/leb128.h"

#include <cstring>

namespace wasabi::wasm {

void
encodeULEB(std::vector<uint8_t> &out, uint64_t value)
{
    do {
        uint8_t byte = value & 0x7F;
        value >>= 7;
        if (value != 0)
            byte |= 0x80;
        out.push_back(byte);
    } while (value != 0);
}

void
encodeSLEB(std::vector<uint8_t> &out, int64_t value)
{
    bool more = true;
    while (more) {
        uint8_t byte = value & 0x7F;
        value >>= 7; // arithmetic shift
        bool sign_bit = (byte & 0x40) != 0;
        if ((value == 0 && !sign_bit) || (value == -1 && sign_bit))
            more = false;
        else
            byte |= 0x80;
        out.push_back(byte);
    }
}

uint8_t
ByteReader::readByte()
{
    if (pos_ >= size_)
        throw DecodeError("unexpected end of input");
    return data_[pos_++];
}

uint8_t
ByteReader::peekByte() const
{
    if (pos_ >= size_)
        throw DecodeError("unexpected end of input (peek)");
    return data_[pos_];
}

void
ByteReader::readBytes(uint8_t *dst, size_t n)
{
    if (remaining() < n)
        throw DecodeError("unexpected end of input (bytes)");
    std::memcpy(dst, data_ + pos_, n);
    pos_ += n;
}

std::vector<uint8_t>
ByteReader::readBytes(size_t n)
{
    std::vector<uint8_t> v(n);
    if (n > 0)
        readBytes(v.data(), n);
    return v;
}

uint64_t
ByteReader::readULEB(int max_bits)
{
    const int max_bytes = (max_bits + 6) / 7;
    uint64_t result = 0;
    int shift = 0;
    for (int i = 0; i < max_bytes; ++i) {
        uint8_t byte = readByte();
        // Significant bits of the last allowed byte must fit.
        int remaining = max_bits - shift;
        if (remaining < 7 && ((byte & 0x7F) >> remaining) != 0)
            throw DecodeError("ULEB128 value too large");
        result |= static_cast<uint64_t>(byte & 0x7F) << shift;
        if ((byte & 0x80) == 0)
            return result;
        shift += 7;
    }
    throw DecodeError("ULEB128 too long");
}

int64_t
ByteReader::readSLEB(int max_bits)
{
    const int max_bytes = (max_bits + 6) / 7;
    int64_t result = 0;
    int shift = 0;
    for (int i = 0; i < max_bytes; ++i) {
        uint8_t byte = readByte();
        // In the last allowed byte only `r` bits carry value (the
        // topmost of them is the sign); the bits above must all equal
        // that sign bit, or the encoding smuggles in extra magnitude
        // (spec: "unused bits must be a sign extension").
        int r = max_bits - shift;
        if (r < 7) {
            uint8_t ext = static_cast<uint8_t>((byte & 0x7F) >> (r - 1));
            if (ext != 0 && ext != (0x7F >> (r - 1)))
                throw DecodeError("SLEB128 value too large");
        }
        if (shift < 64)
            result |= static_cast<int64_t>(byte & 0x7F) << shift;
        shift += 7;
        if ((byte & 0x80) == 0) {
            // Sign-extend from the last byte's sign bit.
            if (shift < 64 && (byte & 0x40))
                result |= static_cast<int64_t>(~uint64_t{0} << shift);
            return result;
        }
    }
    throw DecodeError("SLEB128 too long");
}

uint32_t
ByteReader::readFixedU32()
{
    uint8_t b[4];
    readBytes(b, 4);
    return static_cast<uint32_t>(b[0]) | (static_cast<uint32_t>(b[1]) << 8) |
        (static_cast<uint32_t>(b[2]) << 16) |
        (static_cast<uint32_t>(b[3]) << 24);
}

uint64_t
ByteReader::readFixedU64()
{
    uint64_t lo = readFixedU32();
    uint64_t hi = readFixedU32();
    return lo | (hi << 32);
}

std::string
ByteReader::readName()
{
    uint32_t len = readU32();
    if (remaining() < len)
        throw DecodeError("name length exceeds input");
    std::string s(reinterpret_cast<const char *>(data_ + pos_), len);
    pos_ += len;
    return s;
}

} // namespace wasabi::wasm
