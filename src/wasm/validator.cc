#include "wasm/validator.h"

#include <optional>
#include <vector>

namespace wasabi::wasm {

namespace {

/**
 * An operand-stack entry during validation: a concrete type, or
 * "unknown" (nullopt) for values produced in unreachable code.
 */
using StackType = std::optional<ValType>;

/** One control frame of the standard validation algorithm. */
struct CtrlFrame {
    Opcode opcode;                   ///< block/loop/if/else/function
    std::vector<ValType> startTypes; ///< label types of a loop
    std::vector<ValType> endTypes;   ///< label types of other blocks
    size_t height;                   ///< operand stack height at entry
    bool unreachable = false;
};

/** Type checker for one function body. */
class FuncValidator {
  public:
    FuncValidator(const Module &m, uint32_t func_idx)
        : m_(m), funcIdx_(func_idx), func_(m.functions.at(func_idx))
    {
        const FuncType &type = m_.funcType(func_idx);
        locals_ = type.params;
        locals_.insert(locals_.end(), func_.locals.begin(),
                       func_.locals.end());
        pushCtrl(Opcode::Block, {}, type.results);
    }

    void
    run()
    {
        const std::vector<Instr> &body = func_.body;
        if (body.empty() || body.back().op != Opcode::End)
            fail("function body must end with `end`");
        for (instrIdx_ = 0; instrIdx_ < body.size(); ++instrIdx_)
            check(body[instrIdx_]);
        if (!ctrls_.empty())
            fail("unbalanced blocks: control stack not empty at end");
    }

  private:
    [[noreturn]] void
    fail(const std::string &msg) const
    {
        throw ValidationError(msg, funcIdx_, instrIdx_);
    }

    void
    pushVal(StackType t)
    {
        vals_.push_back(t);
    }

    StackType
    popVal()
    {
        CtrlFrame &frame = ctrls_.back();
        if (vals_.size() == frame.height) {
            if (frame.unreachable)
                return std::nullopt;
            fail("operand stack underflow");
        }
        StackType t = vals_.back();
        vals_.pop_back();
        return t;
    }

    StackType
    popExpect(StackType expect)
    {
        StackType actual = popVal();
        if (actual && expect && *actual != *expect) {
            fail(std::string("type mismatch: expected ") + name(*expect) +
                 ", got " + name(*actual));
        }
        return actual ? actual : expect;
    }

    void
    popExpect(const std::vector<ValType> &types)
    {
        for (auto it = types.rbegin(); it != types.rend(); ++it)
            popExpect(*it);
    }

    void
    pushAll(const std::vector<ValType> &types)
    {
        for (ValType t : types)
            pushVal(t);
    }

    void
    pushCtrl(Opcode op, std::vector<ValType> start,
             std::vector<ValType> end)
    {
        ctrls_.push_back(
            {op, std::move(start), std::move(end), vals_.size(), false});
    }

    CtrlFrame
    popCtrl()
    {
        if (ctrls_.empty())
            fail("control stack underflow");
        CtrlFrame frame = ctrls_.back();
        // End of a block must leave exactly its result types.
        popExpect(frame.endTypes);
        if (vals_.size() != frame.height)
            fail("operand stack not empty at end of block");
        ctrls_.pop_back();
        return frame;
    }

    const std::vector<ValType> &
    labelTypes(const CtrlFrame &frame) const
    {
        return frame.opcode == Opcode::Loop ? frame.startTypes
                                            : frame.endTypes;
    }

    const CtrlFrame &
    frameAt(uint32_t label) const
    {
        if (label >= ctrls_.size())
            fail("branch label out of range");
        return ctrls_[ctrls_.size() - 1 - label];
    }

    void
    setUnreachable()
    {
        CtrlFrame &frame = ctrls_.back();
        vals_.resize(frame.height);
        frame.unreachable = true;
    }

    std::vector<ValType>
    blockResults(const Instr &instr) const
    {
        if (instr.block)
            return {*instr.block};
        return {};
    }

    ValType
    localType(uint32_t idx) const
    {
        if (idx >= locals_.size())
            fail("local index out of range");
        return locals_[idx];
    }

    const Global &
    globalAt(uint32_t idx) const
    {
        if (idx >= m_.globals.size())
            fail("global index out of range");
        return m_.globals[idx];
    }

    void
    checkMemExists() const
    {
        if (m_.memories.empty())
            fail("memory instruction without memory");
    }

    void
    checkAlign(const Instr &instr) const
    {
        // Natural alignment limit: align exponent must not exceed
        // log2 of the access width.
        static const int kWidthLog2[] = {2, 3, 2, 3}; // full-width by type
        const OpInfo &info = opInfo(instr.op);
        int max_align;
        std::string nm = info.name;
        if (nm.find("8") != std::string::npos &&
            nm.find("16") == std::string::npos) {
            max_align = 0;
        } else if (nm.find("16") != std::string::npos) {
            max_align = 1;
        } else if (nm.find("32") != std::string::npos &&
                   (nm.rfind("i64", 0) == 0)) {
            max_align = 2; // i64.load32_*/store32
        } else {
            ValType t = info.cls == OpClass::Load ? info.out : info.in[1];
            max_align = kWidthLog2[static_cast<int>(t)];
        }
        if (static_cast<int>(instr.imm.mem.align) > max_align)
            fail("alignment exceeds natural alignment");
    }

    void
    check(const Instr &instr)
    {
        const OpInfo &info = opInfo(instr.op);
        switch (info.cls) {
          case OpClass::Nop:
            break;
          case OpClass::Unreachable:
            setUnreachable();
            break;
          case OpClass::Block:
            pushCtrl(Opcode::Block, {}, blockResults(instr));
            break;
          case OpClass::Loop:
            pushCtrl(Opcode::Loop, {}, blockResults(instr));
            break;
          case OpClass::If:
            popExpect(ValType::I32);
            pushCtrl(Opcode::If, {}, blockResults(instr));
            break;
          case OpClass::Else: {
            if (ctrls_.empty() || ctrls_.back().opcode != Opcode::If)
                fail("else without matching if");
            CtrlFrame frame = popCtrl();
            pushCtrl(Opcode::Else, frame.startTypes, frame.endTypes);
            break;
          }
          case OpClass::End: {
            CtrlFrame frame = popCtrl();
            // An if without else must have empty result type.
            if (frame.opcode == Opcode::If && !frame.endTypes.empty())
                fail("if without else must not produce a value");
            if (!ctrls_.empty())
                pushAll(frame.endTypes);
            else if (instrIdx_ + 1 != func_.body.size())
                fail("instructions after function end");
            break;
          }
          case OpClass::Br: {
            popExpect(labelTypes(frameAt(instr.imm.idx)));
            setUnreachable();
            break;
          }
          case OpClass::BrIf: {
            popExpect(ValType::I32);
            const std::vector<ValType> &types =
                labelTypes(frameAt(instr.imm.idx));
            popExpect(types);
            pushAll(types);
            break;
          }
          case OpClass::BrTable: {
            popExpect(ValType::I32);
            if (instr.table.empty())
                fail("br_table without default");
            const std::vector<ValType> &default_types =
                labelTypes(frameAt(instr.table.back()));
            for (size_t i = 0; i + 1 < instr.table.size(); ++i) {
                const std::vector<ValType> &types =
                    labelTypes(frameAt(instr.table[i]));
                if (types != default_types)
                    fail("br_table targets have inconsistent types");
            }
            popExpect(default_types);
            setUnreachable();
            break;
          }
          case OpClass::Return: {
            popExpect(m_.funcType(funcIdx_).results);
            setUnreachable();
            break;
          }
          case OpClass::Call: {
            if (instr.imm.idx >= m_.functions.size())
                fail("call function index out of range");
            const FuncType &type = m_.funcType(instr.imm.idx);
            popExpect(type.params);
            pushAll(type.results);
            break;
          }
          case OpClass::CallIndirect: {
            if (m_.tables.empty())
                fail("call_indirect without table");
            if (instr.imm.idx >= m_.types.size())
                fail("call_indirect type index out of range");
            popExpect(ValType::I32);
            const FuncType &type = m_.types[instr.imm.idx];
            popExpect(type.params);
            pushAll(type.results);
            break;
          }
          case OpClass::Drop:
            popVal();
            break;
          case OpClass::Select: {
            popExpect(ValType::I32);
            StackType t1 = popVal();
            StackType t2 = popExpect(t1);
            pushVal(t1 ? t1 : t2);
            break;
          }
          case OpClass::LocalGet:
            pushVal(localType(instr.imm.idx));
            break;
          case OpClass::LocalSet:
            popExpect(localType(instr.imm.idx));
            break;
          case OpClass::LocalTee: {
            ValType t = localType(instr.imm.idx);
            popExpect(t);
            pushVal(t);
            break;
          }
          case OpClass::GlobalGet:
            pushVal(globalAt(instr.imm.idx).type);
            break;
          case OpClass::GlobalSet: {
            const Global &g = globalAt(instr.imm.idx);
            if (!g.mut)
                fail("global.set of immutable global");
            popExpect(g.type);
            break;
          }
          case OpClass::Load:
            checkMemExists();
            checkAlign(instr);
            popExpect(ValType::I32);
            pushVal(info.out);
            break;
          case OpClass::Store:
            checkMemExists();
            checkAlign(instr);
            popExpect(info.in[1]);
            popExpect(ValType::I32);
            break;
          case OpClass::MemorySize:
            checkMemExists();
            pushVal(ValType::I32);
            break;
          case OpClass::MemoryGrow:
            checkMemExists();
            popExpect(ValType::I32);
            pushVal(ValType::I32);
            break;
          case OpClass::Const:
            pushVal(info.out);
            break;
          case OpClass::Unary:
            popExpect(info.in[0]);
            pushVal(info.out);
            break;
          case OpClass::Binary:
            popExpect(info.in[1]);
            popExpect(info.in[0]);
            pushVal(info.out);
            break;
        }
    }

    const Module &m_;
    uint32_t funcIdx_;
    const Function &func_;
    std::vector<ValType> locals_;
    std::vector<StackType> vals_;
    std::vector<CtrlFrame> ctrls_;
    size_t instrIdx_ = 0;
};

/** Check a constant initializer expression of the expected type.
 * @p what names the owning entity including its index, e.g.
 * "global 3" or "element segment 0". */
void
checkConstExpr(const Module &m, const std::vector<Instr> &expr,
               ValType expected, const std::string &what)
{
    if (expr.size() != 2 || expr.back().op != Opcode::End) {
        throw ValidationError(what +
                              ": initializer must be one constant "
                              "instruction followed by end");
    }
    const Instr &instr = expr.front();
    ValType produced;
    switch (instr.op) {
      case Opcode::I32Const: produced = ValType::I32; break;
      case Opcode::I64Const: produced = ValType::I64; break;
      case Opcode::F32Const: produced = ValType::F32; break;
      case Opcode::F64Const: produced = ValType::F64; break;
      case Opcode::GlobalGet: {
        if (instr.imm.idx >= m.globals.size()) {
            throw ValidationError(
                what + ": init global index " +
                std::to_string(instr.imm.idx) + " out of range (" +
                std::to_string(m.globals.size()) + " globals)");
        }
        const Global &g = m.globals[instr.imm.idx];
        if (!g.imported() || g.mut) {
            throw ValidationError(what + ": init global.get " +
                                  std::to_string(instr.imm.idx) +
                                  " must reference an imported "
                                  "immutable global");
        }
        produced = g.type;
        break;
      }
      default:
        throw ValidationError(what + ": non-constant initializer "
                                     "instruction '" +
                              name(instr.op) + "'");
    }
    if (produced != expected) {
        throw ValidationError(what + ": initializer produces " +
                              std::string(name(produced)) +
                              " but the entity expects " +
                              name(expected));
    }
}

} // namespace

void
validateModule(const Module &m)
{
    // Index-space invariants.
    if (m.tables.size() > 1)
        throw ValidationError("at most one table allowed (MVP)");
    if (m.memories.size() > 1)
        throw ValidationError("at most one memory allowed (MVP)");

    auto checkOrder = [](auto const &vec, const char *what) {
        bool seen_defined = false;
        for (size_t i = 0; i < vec.size(); ++i) {
            if (vec[i].imported() && seen_defined) {
                throw ValidationError(std::string(what) + ": import at "
                                      "index " +
                                      std::to_string(i) +
                                      " after defined entity");
            }
            if (!vec[i].imported())
                seen_defined = true;
        }
    };
    checkOrder(m.functions, "functions");
    checkOrder(m.tables, "tables");
    checkOrder(m.memories, "memories");
    checkOrder(m.globals, "globals");

    for (uint32_t i = 0; i < m.functions.size(); ++i) {
        const Function &f = m.functions[i];
        if (f.typeIdx >= m.types.size()) {
            throw ValidationError("type index " +
                                      std::to_string(f.typeIdx) +
                                      " out of range (" +
                                      std::to_string(m.types.size()) +
                                      " types)",
                                  i);
        }
        if (m.types[f.typeIdx].results.size() > 1) {
            throw ValidationError("multiple results not allowed (MVP)",
                                  i);
        }
    }

    for (size_t i = 0; i < m.globals.size(); ++i) {
        const Global &g = m.globals[i];
        if (!g.imported()) {
            checkConstExpr(m, g.init, g.type,
                           "global " + std::to_string(i));
        }
    }

    if (!m.tables.empty()) {
        const Limits &l = m.tables[0].limits;
        if (l.max && *l.max < l.min)
            throw ValidationError("table max < min");
    }
    if (!m.memories.empty()) {
        const Limits &l = m.memories[0].limits;
        if (l.max && *l.max < l.min)
            throw ValidationError("memory max < min");
        if (l.min > 65536 || (l.max && *l.max > 65536))
            throw ValidationError("memory limits exceed 4 GiB");
    }

    for (size_t i = 0; i < m.elements.size(); ++i) {
        const ElementSegment &seg = m.elements[i];
        std::string what = "element segment " + std::to_string(i);
        if (seg.tableIdx >= m.tables.size()) {
            throw ValidationError(what + ": table index " +
                                  std::to_string(seg.tableIdx) +
                                  " out of range");
        }
        checkConstExpr(m, seg.offset, ValType::I32, what);
        for (uint32_t f : seg.funcIdxs) {
            if (f >= m.functions.size()) {
                throw ValidationError(
                    what + ": function index " + std::to_string(f) +
                    " out of range (" +
                    std::to_string(m.functions.size()) + " functions)");
            }
        }
    }

    for (size_t i = 0; i < m.data.size(); ++i) {
        const DataSegment &seg = m.data[i];
        std::string what = "data segment " + std::to_string(i);
        if (seg.memIdx >= m.memories.size()) {
            throw ValidationError(what + ": memory index " +
                                  std::to_string(seg.memIdx) +
                                  " out of range");
        }
        checkConstExpr(m, seg.offset, ValType::I32, what);
    }

    if (m.start) {
        if (*m.start >= m.functions.size()) {
            throw ValidationError("start function index " +
                                  std::to_string(*m.start) +
                                  " out of range (" +
                                  std::to_string(m.functions.size()) +
                                  " functions)");
        }
        const FuncType &t = m.funcType(*m.start);
        if (!t.params.empty() || !t.results.empty()) {
            throw ValidationError("start function must have type "
                                  "[]->[], has " +
                                      toString(t),
                                  *m.start);
        }
    }

    for (uint32_t i = 0; i < m.functions.size(); ++i) {
        if (m.functions[i].imported())
            continue;
        FuncValidator(m, i).run();
    }
}

std::optional<std::string>
validationError(const Module &m)
{
    try {
        validateModule(m);
        return std::nullopt;
    } catch (const ValidationError &e) {
        return e.what();
    }
}

} // namespace wasabi::wasm
