/**
 * @file
 * Decoder from the WebAssembly binary format (MVP, version 1) to the
 * in-memory Module AST. Throws DecodeError on malformed input.
 */

#ifndef WASABI_WASM_DECODER_H
#define WASABI_WASM_DECODER_H

#include <cstdint>
#include <vector>

#include "wasm/module.h"

namespace wasabi::wasm {

/** Decode a complete binary module. */
Module decodeModule(const std::vector<uint8_t> &bytes);

/** Decode a complete binary module from a raw buffer. */
Module decodeModule(const uint8_t *data, size_t size);

} // namespace wasabi::wasm

#endif // WASABI_WASM_DECODER_H
