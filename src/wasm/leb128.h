/**
 * @file
 * LEB128 variable-length integer encoding and decoding, as used
 * throughout the WebAssembly binary format.
 */

#ifndef WASABI_WASM_LEB128_H
#define WASABI_WASM_LEB128_H

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace wasabi::wasm {

/** Error thrown when decoding malformed binary input. */
class DecodeError : public std::runtime_error {
  public:
    explicit DecodeError(const std::string &what)
        : std::runtime_error("decode error: " + what)
    {
    }
};

/** Append an unsigned LEB128 encoding of @p value to @p out. */
void encodeULEB(std::vector<uint8_t> &out, uint64_t value);

/** Append a signed LEB128 encoding of @p value to @p out. */
void encodeSLEB(std::vector<uint8_t> &out, int64_t value);

/**
 * A bounds-checked byte cursor over an input buffer, with LEB128 and
 * fixed-width primitives. All read methods throw DecodeError on
 * truncated or malformed input.
 */
class ByteReader {
  public:
    ByteReader(const uint8_t *data, size_t size)
        : data_(data), size_(size)
    {
    }

    explicit ByteReader(const std::vector<uint8_t> &bytes)
        : ByteReader(bytes.data(), bytes.size())
    {
    }

    size_t pos() const { return pos_; }
    size_t size() const { return size_; }
    bool done() const { return pos_ >= size_; }
    size_t remaining() const { return size_ - pos_; }

    uint8_t readByte();
    /** Peek at the next byte without consuming it. */
    uint8_t peekByte() const;
    void readBytes(uint8_t *dst, size_t n);
    std::vector<uint8_t> readBytes(size_t n);

    /** Unsigned LEB128, at most @p max_bits significant bits. */
    uint64_t readULEB(int max_bits = 32);
    uint32_t readU32() { return static_cast<uint32_t>(readULEB(32)); }

    /** Signed LEB128, at most @p max_bits significant bits. */
    int64_t readSLEB(int max_bits = 32);
    int32_t readS32() { return static_cast<int32_t>(readSLEB(32)); }
    int64_t readS64() { return readSLEB(64); }

    /** Little-endian fixed-width reads (f32/f64 payloads). @{ */
    uint32_t readFixedU32();
    uint64_t readFixedU64();
    /** @} */

    /** Length-prefixed UTF-8 name. */
    std::string readName();

  private:
    const uint8_t *data_;
    size_t size_;
    size_t pos_ = 0;
};

} // namespace wasabi::wasm

#endif // WASABI_WASM_LEB128_H
