/**
 * @file
 * Support for the standard "name" custom section: decoding function
 * names into Function::debugName and re-encoding them. Wasabi keeps
 * names across instrumentation so analyses can report human-readable
 * function names (e.g. the paper's Figure 2 `func_name(loc.func)`).
 *
 * Beyond the function-name shortcut, the full section is exposed as
 * structured NameSectionData (module name, function names, and the
 * local-/label-name subsections keyed by function index) so the
 * rewriting layer can remap *all* subsections when function indices
 * shift, instead of silently dropping local and label names.
 */

#ifndef WASABI_WASM_NAME_SECTION_H
#define WASABI_WASM_NAME_SECTION_H

#include <optional>
#include <utility>

#include "wasm/module.h"

namespace wasabi::wasm {

/**
 * Parse the "name" custom section of @p m (if present) and fill
 * Function::debugName for named functions. Returns the number of
 * function names applied. Unknown subsections are ignored, as the
 * spec requires. Malformed name payloads are ignored rather than
 * rejected (they are non-semantic).
 */
size_t applyNameSection(Module &m);

/**
 * Build (or replace) the "name" custom section from the module's
 * debugNames. Functions with empty debugName are omitted. If no
 * function has a name, any existing name section is removed.
 * Note: this keeps only function names; use setNameSection with
 * parsed NameSectionData to preserve local/label subsections.
 */
void buildNameSection(Module &m);

/** Best-effort human-readable name of a function: debug name, first
 * export name, or "f<idx>". */
std::string functionName(const Module &m, uint32_t func_idx);

// ---------------------------------------------------------------------
// Structured access to the full section (all standard subsections).

/** An index -> name association list, kept sorted by index. */
using NameMap = std::vector<std::pair<uint32_t, std::string>>;

/** Function index -> inner NameMap (locals or labels of that
 * function). Inner indices are opaque to the rewriter: they refer to
 * locals (params first) or label positions *within* the function and
 * survive any edit that does not touch that function's body/locals. */
using IndirectNameMap = std::vector<std::pair<uint32_t, NameMap>>;

/** Decoded "name" section: subsections 0 (module), 1 (functions),
 * 2 (locals), and 3 (labels). Unknown subsection ids are dropped on
 * re-encode (they are non-semantic and cannot be remapped safely). */
struct NameSectionData {
    std::optional<std::string> moduleName;
    NameMap funcNames;
    IndirectNameMap localNames;
    IndirectNameMap labelNames;

    bool
    empty() const
    {
        return !moduleName && funcNames.empty() && localNames.empty() &&
               labelNames.empty();
    }
};

/**
 * Parse the "name" custom section of @p m into structured form.
 * Best-effort: a malformed subsection is skipped, well-formed ones
 * before it are kept. Returns empty data when no section exists.
 */
NameSectionData parseNameSection(const Module &m);

/**
 * Replace the "name" custom section of @p m with a canonical encoding
 * of @p data (subsections in increasing id order, entries sorted by
 * index, canonical LEB128). Removes the section when @p data is
 * empty. parse -> set roundtrips byte-identically for sections this
 * encoder produced.
 */
void setNameSection(Module &m, const NameSectionData &data);

/**
 * Rewrite all function indices in @p data through @p func_map
 * (old index -> new index; wasm::kDeletedIndex drops the entry, as do
 * old indices >= func_map.size()). Entries of deleted functions are
 * removed from every subsection; surviving entries are re-sorted by
 * their new index. An empty map is the identity.
 */
void remapNameData(NameSectionData &data,
                   const std::vector<uint32_t> &func_map);

} // namespace wasabi::wasm

#endif // WASABI_WASM_NAME_SECTION_H
