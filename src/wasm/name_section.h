/**
 * @file
 * Support for the standard "name" custom section: decoding function
 * names into Function::debugName and re-encoding them. Wasabi keeps
 * names across instrumentation so analyses can report human-readable
 * function names (e.g. the paper's Figure 2 `func_name(loc.func)`).
 */

#ifndef WASABI_WASM_NAME_SECTION_H
#define WASABI_WASM_NAME_SECTION_H

#include "wasm/module.h"

namespace wasabi::wasm {

/**
 * Parse the "name" custom section of @p m (if present) and fill
 * Function::debugName for named functions. Returns the number of
 * function names applied. Unknown subsections are ignored, as the
 * spec requires. Malformed name payloads are ignored rather than
 * rejected (they are non-semantic).
 */
size_t applyNameSection(Module &m);

/**
 * Build (or replace) the "name" custom section from the module's
 * debugNames. Functions with empty debugName are omitted. If no
 * function has a name, any existing name section is removed.
 */
void buildNameSection(Module &m);

/** Best-effort human-readable name of a function: debug name, first
 * export name, or "f<idx>". */
std::string functionName(const Module &m, uint32_t func_idx);

} // namespace wasabi::wasm

#endif // WASABI_WASM_NAME_SECTION_H
