/**
 * @file
 * Encoder from the Module AST to the WebAssembly binary format (MVP,
 * version 1). The output of encodeModule(decodeModule(b)) is
 * semantically identical to b (byte-identical up to LEB128 padding and
 * custom-section placement).
 */

#ifndef WASABI_WASM_ENCODER_H
#define WASABI_WASM_ENCODER_H

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "wasm/module.h"

namespace wasabi::wasm {

/** Error thrown when a module violates encodability invariants
 * (e.g. an imported function appearing after a defined one). */
class EncodeError : public std::runtime_error {
  public:
    explicit EncodeError(const std::string &what)
        : std::runtime_error("encode error: " + what)
    {
    }
};

/** Encode a module to binary. */
std::vector<uint8_t> encodeModule(const Module &m);

/** Encode a single instruction (exposed for tests). */
void encodeInstr(std::vector<uint8_t> &out, const Instr &instr);

/** Size of one top-level section in an encoded module. */
struct SectionSize {
    uint8_t id = 0;       ///< section id (0 = custom)
    std::string name;     ///< "type", "code", ...; custom section name
    size_t bytes = 0;     ///< full section size incl. header
};

/**
 * Per-section byte sizes of an encoded module (the `wasabi opt` size
 * report). Throws DecodeError on a malformed section layout.
 */
std::vector<SectionSize> sectionSizes(const std::vector<uint8_t> &bytes);

} // namespace wasabi::wasm

#endif // WASABI_WASM_ENCODER_H
