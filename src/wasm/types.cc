#include "wasm/types.h"

#include <sstream>

namespace wasabi::wasm {

const char *
name(ValType t)
{
    switch (t) {
      case ValType::I32: return "i32";
      case ValType::I64: return "i64";
      case ValType::F32: return "f32";
      case ValType::F64: return "f64";
    }
    return "?";
}

uint8_t
binaryByte(ValType t)
{
    switch (t) {
      case ValType::I32: return 0x7F;
      case ValType::I64: return 0x7E;
      case ValType::F32: return 0x7D;
      case ValType::F64: return 0x7C;
    }
    return 0;
}

std::optional<ValType>
valTypeFromByte(uint8_t b)
{
    switch (b) {
      case 0x7F: return ValType::I32;
      case 0x7E: return ValType::I64;
      case 0x7D: return ValType::F32;
      case 0x7C: return ValType::F64;
      default: return std::nullopt;
    }
}

double
Value::toDouble() const
{
    switch (type) {
      case ValType::I32: return static_cast<double>(i32s());
      case ValType::I64: return static_cast<double>(i64s());
      case ValType::F32: return static_cast<double>(f32());
      case ValType::F64: return f64();
    }
    return 0.0;
}

std::string
toString(const Value &v)
{
    std::ostringstream os;
    os << name(v.type) << ":";
    switch (v.type) {
      case ValType::I32: os << v.i32(); break;
      case ValType::I64: os << v.i64(); break;
      case ValType::F32: os << v.f32(); break;
      case ValType::F64: os << v.f64(); break;
    }
    return os.str();
}

std::string
toString(const FuncType &t)
{
    std::ostringstream os;
    os << "[";
    for (size_t i = 0; i < t.params.size(); ++i) {
        if (i > 0)
            os << " ";
        os << name(t.params[i]);
    }
    os << "] -> [";
    for (size_t i = 0; i < t.results.size(); ++i) {
        if (i > 0)
            os << " ";
        os << name(t.results[i]);
    }
    os << "]";
    return os.str();
}

} // namespace wasabi::wasm
