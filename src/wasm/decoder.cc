#include "wasm/decoder.h"

#include <bit>

#include "wasm/leb128.h"

namespace wasabi::wasm {

namespace {

/** Section ids of the binary format. */
enum SectionId : uint8_t {
    kCustom = 0,
    kType = 1,
    kImport = 2,
    kFunction = 3,
    kTable = 4,
    kMemory = 5,
    kGlobal = 6,
    kExport = 7,
    kStart = 8,
    kElement = 9,
    kCode = 10,
    kData = 11,
};

ValType
readValType(ByteReader &r)
{
    auto t = valTypeFromByte(r.readByte());
    if (!t)
        throw DecodeError("invalid value type byte");
    return *t;
}

Limits
readLimits(ByteReader &r)
{
    Limits l;
    uint8_t flag = r.readByte();
    l.min = r.readU32();
    if (flag == 0x01)
        l.max = r.readU32();
    else if (flag != 0x00)
        throw DecodeError("invalid limits flag");
    return l;
}

Instr
readInstr(ByteReader &r)
{
    uint8_t byte = r.readByte();
    const OpInfo &info = opInfoByte(byte);
    if (!info.valid())
        throw DecodeError("invalid opcode byte " + std::to_string(byte));

    Instr instr(static_cast<Opcode>(byte));
    switch (info.imm) {
      case ImmKind::None:
        break;
      case ImmKind::BlockType: {
        uint8_t bt = r.readByte();
        if (bt == 0x40) {
            instr.block = std::nullopt;
        } else {
            auto t = valTypeFromByte(bt);
            if (!t)
                throw DecodeError("invalid block type");
            instr.block = *t;
        }
        break;
      }
      case ImmKind::Label:
      case ImmKind::Func:
      case ImmKind::Local:
      case ImmKind::Global:
        instr.imm.idx = r.readU32();
        break;
      case ImmKind::CallInd: {
        instr.imm.idx = r.readU32();
        if (r.readByte() != 0x00)
            throw DecodeError("call_indirect reserved byte must be 0");
        break;
      }
      case ImmKind::BrTableImm: {
        uint32_t count = r.readU32();
        instr.table.reserve(count + 1);
        for (uint32_t i = 0; i < count; ++i)
            instr.table.push_back(r.readU32());
        instr.table.push_back(r.readU32()); // default target
        break;
      }
      case ImmKind::Mem:
        instr.imm.mem.align = r.readU32();
        instr.imm.mem.offset = r.readU32();
        break;
      case ImmKind::MemIdx:
        if (r.readByte() != 0x00)
            throw DecodeError("memory index byte must be 0");
        break;
      case ImmKind::I32:
        instr.imm.i32v = static_cast<uint32_t>(r.readS32());
        break;
      case ImmKind::I64:
        instr.imm.i64v = static_cast<uint64_t>(r.readS64());
        break;
      case ImmKind::F32:
        instr.imm.f32v = std::bit_cast<float>(r.readFixedU32());
        break;
      case ImmKind::F64:
        instr.imm.f64v = std::bit_cast<double>(r.readFixedU64());
        break;
    }
    return instr;
}

/**
 * Read an expression: instructions up to and including the `end` that
 * closes the expression (nesting-aware).
 */
std::vector<Instr>
readExpr(ByteReader &r)
{
    std::vector<Instr> body;
    int depth = 0;
    while (true) {
        Instr instr = readInstr(r);
        if (isBlockStart(instr.op)) {
            ++depth;
        } else if (instr.op == Opcode::End) {
            if (depth == 0) {
                body.push_back(instr);
                return body;
            }
            --depth;
        }
        body.push_back(instr);
    }
}

struct Decoder {
    Module m;
    /// Type indices of defined functions (function section), matched
    /// with bodies from the code section.
    std::vector<uint32_t> defined_func_types;

    void
    typeSection(ByteReader &r)
    {
        uint32_t count = r.readU32();
        for (uint32_t i = 0; i < count; ++i) {
            if (r.readByte() != 0x60)
                throw DecodeError("function type must start with 0x60");
            FuncType t;
            uint32_t np = r.readU32();
            for (uint32_t j = 0; j < np; ++j)
                t.params.push_back(readValType(r));
            uint32_t nr = r.readU32();
            for (uint32_t j = 0; j < nr; ++j)
                t.results.push_back(readValType(r));
            m.types.push_back(std::move(t));
        }
    }

    void
    importSection(ByteReader &r)
    {
        uint32_t count = r.readU32();
        for (uint32_t i = 0; i < count; ++i) {
            ImportRef ref;
            ref.module = r.readName();
            ref.name = r.readName();
            uint8_t kind = r.readByte();
            switch (kind) {
              case 0x00: {
                Function f;
                f.typeIdx = r.readU32();
                f.import = ref;
                m.functions.push_back(std::move(f));
                break;
              }
              case 0x01: {
                if (r.readByte() != 0x70)
                    throw DecodeError("table element type must be funcref");
                Table t;
                t.limits = readLimits(r);
                t.import = ref;
                m.tables.push_back(std::move(t));
                break;
              }
              case 0x02: {
                Memory mem;
                mem.limits = readLimits(r);
                mem.import = ref;
                m.memories.push_back(std::move(mem));
                break;
              }
              case 0x03: {
                Global g;
                g.type = readValType(r);
                g.mut = r.readByte() == 0x01;
                g.import = ref;
                m.globals.push_back(std::move(g));
                break;
              }
              default:
                throw DecodeError("invalid import kind");
            }
        }
    }

    void
    functionSection(ByteReader &r)
    {
        uint32_t count = r.readU32();
        for (uint32_t i = 0; i < count; ++i) {
            uint32_t type_idx = r.readU32();
            defined_func_types.push_back(type_idx);
            // Create the entry now so that the export section (which
            // precedes the code section) can reference it.
            Function f;
            f.typeIdx = type_idx;
            m.functions.push_back(std::move(f));
        }
    }

    void
    tableSection(ByteReader &r)
    {
        uint32_t count = r.readU32();
        for (uint32_t i = 0; i < count; ++i) {
            if (r.readByte() != 0x70)
                throw DecodeError("table element type must be funcref");
            Table t;
            t.limits = readLimits(r);
            m.tables.push_back(std::move(t));
        }
    }

    void
    memorySection(ByteReader &r)
    {
        uint32_t count = r.readU32();
        for (uint32_t i = 0; i < count; ++i) {
            Memory mem;
            mem.limits = readLimits(r);
            m.memories.push_back(std::move(mem));
        }
    }

    void
    globalSection(ByteReader &r)
    {
        uint32_t count = r.readU32();
        for (uint32_t i = 0; i < count; ++i) {
            Global g;
            g.type = readValType(r);
            g.mut = r.readByte() == 0x01;
            g.init = readExpr(r);
            m.globals.push_back(std::move(g));
        }
    }

    void
    exportSection(ByteReader &r)
    {
        uint32_t count = r.readU32();
        for (uint32_t i = 0; i < count; ++i) {
            std::string name = r.readName();
            uint8_t kind = r.readByte();
            uint32_t idx = r.readU32();
            auto checked = [&](auto &vec) -> decltype(vec.at(0)) {
                if (idx >= vec.size())
                    throw DecodeError("export index out of range");
                return vec[idx];
            };
            switch (kind) {
              case 0x00:
                checked(m.functions).exportNames.push_back(name);
                break;
              case 0x01:
                checked(m.tables).exportNames.push_back(name);
                break;
              case 0x02:
                checked(m.memories).exportNames.push_back(name);
                break;
              case 0x03:
                checked(m.globals).exportNames.push_back(name);
                break;
              default:
                throw DecodeError("invalid export kind");
            }
        }
    }

    void
    elementSection(ByteReader &r)
    {
        uint32_t count = r.readU32();
        for (uint32_t i = 0; i < count; ++i) {
            ElementSegment seg;
            seg.tableIdx = r.readU32();
            seg.offset = readExpr(r);
            uint32_t n = r.readU32();
            for (uint32_t j = 0; j < n; ++j)
                seg.funcIdxs.push_back(r.readU32());
            m.elements.push_back(std::move(seg));
        }
    }

    void
    codeSection(ByteReader &r)
    {
        uint32_t count = r.readU32();
        if (count != defined_func_types.size())
            throw DecodeError("code/function section count mismatch");
        uint32_t first_defined =
            static_cast<uint32_t>(m.functions.size()) - count;
        for (uint32_t i = 0; i < count; ++i) {
            uint32_t body_size = r.readU32();
            size_t end_pos = r.pos() + body_size;
            Function &f = m.functions.at(first_defined + i);
            uint32_t num_locals = r.readU32();
            for (uint32_t j = 0; j < num_locals; ++j) {
                uint32_t n = r.readU32();
                ValType t = readValType(r);
                // Cap to avoid absurd allocations on corrupt input.
                if (f.locals.size() + n > 1000000)
                    throw DecodeError("too many locals");
                f.locals.insert(f.locals.end(), n, t);
            }
            f.body = readExpr(r);
            if (r.pos() != end_pos)
                throw DecodeError("code body size mismatch");
        }
    }

    void
    dataSection(ByteReader &r)
    {
        uint32_t count = r.readU32();
        for (uint32_t i = 0; i < count; ++i) {
            DataSegment seg;
            seg.memIdx = r.readU32();
            seg.offset = readExpr(r);
            uint32_t n = r.readU32();
            seg.bytes = r.readBytes(n);
            m.data.push_back(std::move(seg));
        }
    }
};

} // namespace

Module
decodeModule(const uint8_t *data, size_t size)
{
    ByteReader r(data, size);
    if (r.readFixedU32() != 0x6D736100)
        throw DecodeError("bad magic number");
    if (r.readFixedU32() != 1)
        throw DecodeError("unsupported version");

    Decoder d;
    int last_section = -1;
    while (!r.done()) {
        uint8_t id = r.readByte();
        uint32_t sec_size = r.readU32();
        if (r.remaining() < sec_size)
            throw DecodeError("section size exceeds input");
        ByteReader sec(data + r.pos(), sec_size);
        // Non-custom sections must appear in order, at most once.
        if (id != kCustom) {
            if (id <= last_section)
                throw DecodeError("section out of order");
            last_section = id;
        }
        switch (id) {
          case kCustom: {
            CustomSection c;
            c.name = sec.readName();
            c.bytes = sec.readBytes(sec.remaining());
            d.m.customs.push_back(std::move(c));
            break;
          }
          case kType: d.typeSection(sec); break;
          case kImport: d.importSection(sec); break;
          case kFunction: d.functionSection(sec); break;
          case kTable: d.tableSection(sec); break;
          case kMemory: d.memorySection(sec); break;
          case kGlobal: d.globalSection(sec); break;
          case kExport: d.exportSection(sec); break;
          case kStart: d.m.start = sec.readU32(); break;
          case kElement: d.elementSection(sec); break;
          case kCode: d.codeSection(sec); break;
          case kData: d.dataSection(sec); break;
          default:
            throw DecodeError("unknown section id");
        }
        if (id != kCustom && !sec.done())
            throw DecodeError("trailing bytes in section");
        // Advance past the section regardless.
        r.readBytes(sec_size);
    }
    for (const Function &f : d.m.functions) {
        if (!f.imported() && f.body.empty())
            throw DecodeError("defined function without code body");
    }
    return std::move(d.m);
}

Module
decodeModule(const std::vector<uint8_t> &bytes)
{
    return decodeModule(bytes.data(), bytes.size());
}

} // namespace wasabi::wasm
