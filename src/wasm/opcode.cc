#include "wasm/opcode.h"

#include <array>

namespace wasabi::wasm {

namespace {

using enum ValType;

struct Table {
    std::array<OpInfo, 256> info{};
    std::vector<Opcode> all;

    void
    set(Opcode op, const char *nm, ImmKind imm, OpClass cls, int8_t nin,
        ValType in0, ValType in1, int8_t nout, ValType out)
    {
        OpInfo &e = info[static_cast<uint8_t>(op)];
        e.name = nm;
        e.imm = imm;
        e.cls = cls;
        e.numIn = nin;
        e.in[0] = in0;
        e.in[1] = in1;
        e.numOut = nout;
        e.out = out;
        all.push_back(op);
    }

    /// Structural / polymorphic instruction (no fixed signature).
    void
    ctl(Opcode op, const char *nm, ImmKind imm, OpClass cls)
    {
        set(op, nm, imm, cls, -1, I32, I32, -1, I32);
    }

    /// Unary operation with fixed input/output types.
    void
    un(Opcode op, const char *nm, ValType in, ValType out)
    {
        set(op, nm, ImmKind::None, OpClass::Unary, 1, in, in, 1, out);
    }

    /// Binary operation [t, t] -> [out].
    void
    bin(Opcode op, const char *nm, ValType t, ValType out)
    {
        set(op, nm, ImmKind::None, OpClass::Binary, 2, t, t, 1, out);
    }

    /// Memory load [i32] -> [t].
    void
    load(Opcode op, const char *nm, ValType t)
    {
        set(op, nm, ImmKind::Mem, OpClass::Load, 1, I32, I32, 1, t);
    }

    /// Memory store [i32, t] -> [].
    void
    store(Opcode op, const char *nm, ValType t)
    {
        set(op, nm, ImmKind::Mem, OpClass::Store, 2, I32, t, 0, I32);
    }

    /// Constant [] -> [t].
    void
    cst(Opcode op, const char *nm, ImmKind imm, ValType t)
    {
        set(op, nm, imm, OpClass::Const, 0, I32, I32, 1, t);
    }

    Table();
};

Table::Table()
{
    using O = Opcode;
    using I = ImmKind;
    using C = OpClass;

    ctl(O::Unreachable, "unreachable", I::None, C::Unreachable);
    ctl(O::Nop, "nop", I::None, C::Nop);
    ctl(O::Block, "block", I::BlockType, C::Block);
    ctl(O::Loop, "loop", I::BlockType, C::Loop);
    ctl(O::If, "if", I::BlockType, C::If);
    ctl(O::Else, "else", I::None, C::Else);
    ctl(O::End, "end", I::None, C::End);
    ctl(O::Br, "br", I::Label, C::Br);
    ctl(O::BrIf, "br_if", I::Label, C::BrIf);
    ctl(O::BrTable, "br_table", I::BrTableImm, C::BrTable);
    ctl(O::Return, "return", I::None, C::Return);
    ctl(O::Call, "call", I::Func, C::Call);
    ctl(O::CallIndirect, "call_indirect", I::CallInd, C::CallIndirect);

    ctl(O::Drop, "drop", I::None, C::Drop);
    ctl(O::Select, "select", I::None, C::Select);

    ctl(O::LocalGet, "local.get", I::Local, C::LocalGet);
    ctl(O::LocalSet, "local.set", I::Local, C::LocalSet);
    ctl(O::LocalTee, "local.tee", I::Local, C::LocalTee);
    ctl(O::GlobalGet, "global.get", I::Global, C::GlobalGet);
    ctl(O::GlobalSet, "global.set", I::Global, C::GlobalSet);

    load(O::I32Load, "i32.load", I32);
    load(O::I64Load, "i64.load", I64);
    load(O::F32Load, "f32.load", F32);
    load(O::F64Load, "f64.load", F64);
    load(O::I32Load8S, "i32.load8_s", I32);
    load(O::I32Load8U, "i32.load8_u", I32);
    load(O::I32Load16S, "i32.load16_s", I32);
    load(O::I32Load16U, "i32.load16_u", I32);
    load(O::I64Load8S, "i64.load8_s", I64);
    load(O::I64Load8U, "i64.load8_u", I64);
    load(O::I64Load16S, "i64.load16_s", I64);
    load(O::I64Load16U, "i64.load16_u", I64);
    load(O::I64Load32S, "i64.load32_s", I64);
    load(O::I64Load32U, "i64.load32_u", I64);
    store(O::I32Store, "i32.store", I32);
    store(O::I64Store, "i64.store", I64);
    store(O::F32Store, "f32.store", F32);
    store(O::F64Store, "f64.store", F64);
    store(O::I32Store8, "i32.store8", I32);
    store(O::I32Store16, "i32.store16", I32);
    store(O::I64Store8, "i64.store8", I64);
    store(O::I64Store16, "i64.store16", I64);
    store(O::I64Store32, "i64.store32", I64);
    set(O::MemorySize, "memory.size", I::MemIdx, C::MemorySize,
        0, I32, I32, 1, I32);
    set(O::MemoryGrow, "memory.grow", I::MemIdx, C::MemoryGrow,
        1, I32, I32, 1, I32);

    cst(O::I32Const, "i32.const", I::I32, I32);
    cst(O::I64Const, "i64.const", I::I64, I64);
    cst(O::F32Const, "f32.const", I::F32, F32);
    cst(O::F64Const, "f64.const", I::F64, F64);

    un(O::I32Eqz, "i32.eqz", I32, I32);
    bin(O::I32Eq, "i32.eq", I32, I32);
    bin(O::I32Ne, "i32.ne", I32, I32);
    bin(O::I32LtS, "i32.lt_s", I32, I32);
    bin(O::I32LtU, "i32.lt_u", I32, I32);
    bin(O::I32GtS, "i32.gt_s", I32, I32);
    bin(O::I32GtU, "i32.gt_u", I32, I32);
    bin(O::I32LeS, "i32.le_s", I32, I32);
    bin(O::I32LeU, "i32.le_u", I32, I32);
    bin(O::I32GeS, "i32.ge_s", I32, I32);
    bin(O::I32GeU, "i32.ge_u", I32, I32);
    un(O::I64Eqz, "i64.eqz", I64, I32);
    bin(O::I64Eq, "i64.eq", I64, I32);
    bin(O::I64Ne, "i64.ne", I64, I32);
    bin(O::I64LtS, "i64.lt_s", I64, I32);
    bin(O::I64LtU, "i64.lt_u", I64, I32);
    bin(O::I64GtS, "i64.gt_s", I64, I32);
    bin(O::I64GtU, "i64.gt_u", I64, I32);
    bin(O::I64LeS, "i64.le_s", I64, I32);
    bin(O::I64LeU, "i64.le_u", I64, I32);
    bin(O::I64GeS, "i64.ge_s", I64, I32);
    bin(O::I64GeU, "i64.ge_u", I64, I32);
    bin(O::F32Eq, "f32.eq", F32, I32);
    bin(O::F32Ne, "f32.ne", F32, I32);
    bin(O::F32Lt, "f32.lt", F32, I32);
    bin(O::F32Gt, "f32.gt", F32, I32);
    bin(O::F32Le, "f32.le", F32, I32);
    bin(O::F32Ge, "f32.ge", F32, I32);
    bin(O::F64Eq, "f64.eq", F64, I32);
    bin(O::F64Ne, "f64.ne", F64, I32);
    bin(O::F64Lt, "f64.lt", F64, I32);
    bin(O::F64Gt, "f64.gt", F64, I32);
    bin(O::F64Le, "f64.le", F64, I32);
    bin(O::F64Ge, "f64.ge", F64, I32);

    un(O::I32Clz, "i32.clz", I32, I32);
    un(O::I32Ctz, "i32.ctz", I32, I32);
    un(O::I32Popcnt, "i32.popcnt", I32, I32);
    bin(O::I32Add, "i32.add", I32, I32);
    bin(O::I32Sub, "i32.sub", I32, I32);
    bin(O::I32Mul, "i32.mul", I32, I32);
    bin(O::I32DivS, "i32.div_s", I32, I32);
    bin(O::I32DivU, "i32.div_u", I32, I32);
    bin(O::I32RemS, "i32.rem_s", I32, I32);
    bin(O::I32RemU, "i32.rem_u", I32, I32);
    bin(O::I32And, "i32.and", I32, I32);
    bin(O::I32Or, "i32.or", I32, I32);
    bin(O::I32Xor, "i32.xor", I32, I32);
    bin(O::I32Shl, "i32.shl", I32, I32);
    bin(O::I32ShrS, "i32.shr_s", I32, I32);
    bin(O::I32ShrU, "i32.shr_u", I32, I32);
    bin(O::I32Rotl, "i32.rotl", I32, I32);
    bin(O::I32Rotr, "i32.rotr", I32, I32);
    un(O::I64Clz, "i64.clz", I64, I64);
    un(O::I64Ctz, "i64.ctz", I64, I64);
    un(O::I64Popcnt, "i64.popcnt", I64, I64);
    bin(O::I64Add, "i64.add", I64, I64);
    bin(O::I64Sub, "i64.sub", I64, I64);
    bin(O::I64Mul, "i64.mul", I64, I64);
    bin(O::I64DivS, "i64.div_s", I64, I64);
    bin(O::I64DivU, "i64.div_u", I64, I64);
    bin(O::I64RemS, "i64.rem_s", I64, I64);
    bin(O::I64RemU, "i64.rem_u", I64, I64);
    bin(O::I64And, "i64.and", I64, I64);
    bin(O::I64Or, "i64.or", I64, I64);
    bin(O::I64Xor, "i64.xor", I64, I64);
    bin(O::I64Shl, "i64.shl", I64, I64);
    bin(O::I64ShrS, "i64.shr_s", I64, I64);
    bin(O::I64ShrU, "i64.shr_u", I64, I64);
    bin(O::I64Rotl, "i64.rotl", I64, I64);
    bin(O::I64Rotr, "i64.rotr", I64, I64);
    un(O::F32Abs, "f32.abs", F32, F32);
    un(O::F32Neg, "f32.neg", F32, F32);
    un(O::F32Ceil, "f32.ceil", F32, F32);
    un(O::F32Floor, "f32.floor", F32, F32);
    un(O::F32Trunc, "f32.trunc", F32, F32);
    un(O::F32Nearest, "f32.nearest", F32, F32);
    un(O::F32Sqrt, "f32.sqrt", F32, F32);
    bin(O::F32Add, "f32.add", F32, F32);
    bin(O::F32Sub, "f32.sub", F32, F32);
    bin(O::F32Mul, "f32.mul", F32, F32);
    bin(O::F32Div, "f32.div", F32, F32);
    bin(O::F32Min, "f32.min", F32, F32);
    bin(O::F32Max, "f32.max", F32, F32);
    bin(O::F32Copysign, "f32.copysign", F32, F32);
    un(O::F64Abs, "f64.abs", F64, F64);
    un(O::F64Neg, "f64.neg", F64, F64);
    un(O::F64Ceil, "f64.ceil", F64, F64);
    un(O::F64Floor, "f64.floor", F64, F64);
    un(O::F64Trunc, "f64.trunc", F64, F64);
    un(O::F64Nearest, "f64.nearest", F64, F64);
    un(O::F64Sqrt, "f64.sqrt", F64, F64);
    bin(O::F64Add, "f64.add", F64, F64);
    bin(O::F64Sub, "f64.sub", F64, F64);
    bin(O::F64Mul, "f64.mul", F64, F64);
    bin(O::F64Div, "f64.div", F64, F64);
    bin(O::F64Min, "f64.min", F64, F64);
    bin(O::F64Max, "f64.max", F64, F64);
    bin(O::F64Copysign, "f64.copysign", F64, F64);

    un(O::I32WrapI64, "i32.wrap_i64", I64, I32);
    un(O::I32TruncF32S, "i32.trunc_f32_s", F32, I32);
    un(O::I32TruncF32U, "i32.trunc_f32_u", F32, I32);
    un(O::I32TruncF64S, "i32.trunc_f64_s", F64, I32);
    un(O::I32TruncF64U, "i32.trunc_f64_u", F64, I32);
    un(O::I64ExtendI32S, "i64.extend_i32_s", I32, I64);
    un(O::I64ExtendI32U, "i64.extend_i32_u", I32, I64);
    un(O::I64TruncF32S, "i64.trunc_f32_s", F32, I64);
    un(O::I64TruncF32U, "i64.trunc_f32_u", F32, I64);
    un(O::I64TruncF64S, "i64.trunc_f64_s", F64, I64);
    un(O::I64TruncF64U, "i64.trunc_f64_u", F64, I64);
    un(O::F32ConvertI32S, "f32.convert_i32_s", I32, F32);
    un(O::F32ConvertI32U, "f32.convert_i32_u", I32, F32);
    un(O::F32ConvertI64S, "f32.convert_i64_s", I64, F32);
    un(O::F32ConvertI64U, "f32.convert_i64_u", I64, F32);
    un(O::F32DemoteF64, "f32.demote_f64", F64, F32);
    un(O::F64ConvertI32S, "f64.convert_i32_s", I32, F64);
    un(O::F64ConvertI32U, "f64.convert_i32_u", I32, F64);
    un(O::F64ConvertI64S, "f64.convert_i64_s", I64, F64);
    un(O::F64ConvertI64U, "f64.convert_i64_u", I64, F64);
    un(O::F64PromoteF32, "f64.promote_f32", F32, F64);
    un(O::I32ReinterpretF32, "i32.reinterpret_f32", F32, I32);
    un(O::I64ReinterpretF64, "i64.reinterpret_f64", F64, I64);
    un(O::F32ReinterpretI32, "f32.reinterpret_i32", I32, F32);
    un(O::F64ReinterpretI64, "f64.reinterpret_i64", I64, F64);
}

const Table &
table()
{
    static const Table t;
    return t;
}

} // namespace

const OpInfo &
opInfo(Opcode op)
{
    return table().info[static_cast<uint8_t>(op)];
}

const OpInfo &
opInfoByte(uint8_t byte)
{
    return table().info[byte];
}

const char *
name(Opcode op)
{
    const OpInfo &i = opInfo(op);
    return i.valid() ? i.name : "";
}

const std::vector<Opcode> &
allOpcodes()
{
    return table().all;
}

bool
isBlockStart(Opcode op)
{
    OpClass c = opInfo(op).cls;
    return c == OpClass::Block || c == OpClass::Loop || c == OpClass::If;
}

bool
isBranch(Opcode op)
{
    OpClass c = opInfo(op).cls;
    return c == OpClass::Br || c == OpClass::BrIf || c == OpClass::BrTable;
}

bool
isNumeric(Opcode op)
{
    OpClass c = opInfo(op).cls;
    return c == OpClass::Const || c == OpClass::Unary ||
        c == OpClass::Binary;
}

size_t
memAccessBytes(Opcode op)
{
    switch (op) {
      case Opcode::I32Load8S:
      case Opcode::I32Load8U:
      case Opcode::I64Load8S:
      case Opcode::I64Load8U:
      case Opcode::I32Store8:
      case Opcode::I64Store8:
        return 1;
      case Opcode::I32Load16S:
      case Opcode::I32Load16U:
      case Opcode::I64Load16S:
      case Opcode::I64Load16U:
      case Opcode::I32Store16:
      case Opcode::I64Store16:
        return 2;
      case Opcode::I32Load:
      case Opcode::F32Load:
      case Opcode::I64Load32S:
      case Opcode::I64Load32U:
      case Opcode::I32Store:
      case Opcode::F32Store:
      case Opcode::I64Store32:
        return 4;
      case Opcode::I64Load:
      case Opcode::F64Load:
      case Opcode::I64Store:
      case Opcode::F64Store:
        return 8;
      default:
        return 0; // not a memory access
    }
}

} // namespace wasabi::wasm
