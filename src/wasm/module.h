/**
 * @file
 * The module AST: types, functions, globals, tables, memories, element
 * and data segments, start function, and custom sections.
 *
 * Index spaces follow the binary format: imported entities occupy the
 * low indices of each space. In this AST, each space is a single
 * vector where imported entities carry an ImportRef and no
 * body/initializer; the encoder requires all imported entities to
 * precede defined ones within each vector.
 */

#ifndef WASABI_WASM_MODULE_H
#define WASABI_WASM_MODULE_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "wasm/instr.h"
#include "wasm/types.h"

namespace wasabi::wasm {

/** Import source: module and field name. */
struct ImportRef {
    std::string module;
    std::string name;

    bool operator==(const ImportRef &other) const = default;
};

/**
 * A function: either imported (no body) or defined (locals + body).
 * The body *includes* the terminating `end` instruction, mirroring the
 * binary format; instruction locations (Wasabi's `instr` index) count
 * it like any other instruction.
 */
struct Function {
    uint32_t typeIdx = 0;
    std::optional<ImportRef> import;
    /** Types of non-parameter locals, already flattened. */
    std::vector<ValType> locals;
    std::vector<Instr> body;
    std::vector<std::string> exportNames;
    /** Optional debug name (not encoded). */
    std::string debugName;

    bool imported() const { return import.has_value(); }
};

/** A global variable. */
struct Global {
    ValType type = ValType::I32;
    bool mut = false;
    std::optional<ImportRef> import;
    /** Constant initializer expression (defined globals only),
     * including the terminating `end`. */
    std::vector<Instr> init;
    std::vector<std::string> exportNames;

    bool imported() const { return import.has_value(); }
};

/** A table of function references (MVP: at most one per module). */
struct Table {
    Limits limits;
    std::optional<ImportRef> import;
    std::vector<std::string> exportNames;

    bool imported() const { return import.has_value(); }
};

/** A linear memory (MVP: at most one per module). */
struct Memory {
    Limits limits;
    std::optional<ImportRef> import;
    std::vector<std::string> exportNames;

    bool imported() const { return import.has_value(); }
};

/** An active element segment initializing part of a table. */
struct ElementSegment {
    uint32_t tableIdx = 0;
    /** Constant offset expression, including terminating `end`. */
    std::vector<Instr> offset;
    std::vector<uint32_t> funcIdxs;
};

/** An active data segment initializing part of a memory. */
struct DataSegment {
    uint32_t memIdx = 0;
    std::vector<Instr> offset;
    std::vector<uint8_t> bytes;
};

/** A custom section, preserved as raw bytes. */
struct CustomSection {
    std::string name;
    std::vector<uint8_t> bytes;
};

/** A complete WebAssembly module. */
struct Module {
    std::vector<FuncType> types;
    std::vector<Function> functions;
    std::vector<Global> globals;
    std::vector<Table> tables;
    std::vector<Memory> memories;
    std::vector<ElementSegment> elements;
    std::vector<DataSegment> data;
    std::optional<uint32_t> start;
    std::vector<CustomSection> customs;

    /**
     * Index of the given function type, adding it if not present.
     * Types are deduplicated structurally (required so that
     * call_indirect type checks keep working after instrumentation
     * appends hook types).
     */
    uint32_t addType(const FuncType &type);

    /** Function type of function @p func_idx. */
    const FuncType &funcType(uint32_t func_idx) const;

    /** Number of imported functions (= index of first defined one). */
    uint32_t numImportedFunctions() const;

    /** Total size of the function index space. */
    uint32_t numFunctions() const
    {
        return static_cast<uint32_t>(functions.size());
    }

    /** Find a function index by export name; nullopt if absent. */
    std::optional<uint32_t> findFuncExport(const std::string &name) const;

    /** Total number of instructions across all function bodies. */
    size_t numInstructions() const;
};

} // namespace wasabi::wasm

#endif // WASABI_WASM_MODULE_H
