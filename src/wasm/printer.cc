#include "wasm/printer.h"

#include <sstream>

namespace wasabi::wasm {

std::string
toString(const Instr &instr)
{
    const OpInfo &info = opInfo(instr.op);
    std::ostringstream os;
    os << info.name;
    switch (info.imm) {
      case ImmKind::None:
      case ImmKind::MemIdx:
        break;
      case ImmKind::BlockType:
        if (instr.block)
            os << " (result " << name(*instr.block) << ")";
        break;
      case ImmKind::Label:
      case ImmKind::Func:
      case ImmKind::Local:
      case ImmKind::Global:
        os << " " << instr.imm.idx;
        break;
      case ImmKind::CallInd:
        os << " (type " << instr.imm.idx << ")";
        break;
      case ImmKind::BrTableImm:
        for (uint32_t label : instr.table)
            os << " " << label;
        break;
      case ImmKind::Mem:
        if (instr.imm.mem.offset != 0)
            os << " offset=" << instr.imm.mem.offset;
        if (instr.imm.mem.align != 0)
            os << " align=" << (1u << instr.imm.mem.align);
        break;
      case ImmKind::I32:
        os << " " << static_cast<int32_t>(instr.imm.i32v);
        break;
      case ImmKind::I64:
        os << " " << static_cast<int64_t>(instr.imm.i64v);
        break;
      case ImmKind::F32:
        os << " " << instr.imm.f32v;
        break;
      case ImmKind::F64:
        os << " " << instr.imm.f64v;
        break;
    }
    return os.str();
}

std::string
toString(const Module &m, uint32_t func_idx)
{
    const Function &f = m.functions.at(func_idx);
    const FuncType &type = m.funcType(func_idx);
    std::ostringstream os;
    os << "  (func $" << func_idx;
    if (!f.debugName.empty())
        os << " ;; " << f.debugName;
    os << " " << toString(type);
    if (f.imported()) {
        os << " (import \"" << f.import->module << "\" \"" << f.import->name
           << "\"))\n";
        return os.str();
    }
    for (const std::string &e : f.exportNames)
        os << " (export \"" << e << "\")";
    os << "\n";
    if (!f.locals.empty()) {
        os << "    (local";
        for (ValType t : f.locals)
            os << " " << name(t);
        os << ")\n";
    }
    int indent = 2;
    for (size_t i = 0; i < f.body.size(); ++i) {
        const Instr &instr = f.body[i];
        OpClass c = opInfo(instr.op).cls;
        if (c == OpClass::End || c == OpClass::Else)
            indent = std::max(1, indent - 1);
        for (int s = 0; s < indent; ++s)
            os << "  ";
        os << toString(instr) << "  ;; @" << i << "\n";
        if (isBlockStart(instr.op) || c == OpClass::Else)
            ++indent;
    }
    os << "  )\n";
    return os.str();
}

std::string
toString(const Module &m)
{
    std::ostringstream os;
    os << "(module\n";
    for (size_t i = 0; i < m.types.size(); ++i)
        os << "  (type $" << i << " " << toString(m.types[i]) << ")\n";
    for (const Global &g : m.globals) {
        os << "  (global " << (g.mut ? "(mut " : "(") << name(g.type)
           << "))\n";
    }
    for (const Memory &mem : m.memories) {
        os << "  (memory " << mem.limits.min;
        if (mem.limits.max)
            os << " " << *mem.limits.max;
        os << ")\n";
    }
    for (const Table &t : m.tables) {
        os << "  (table " << t.limits.min;
        if (t.limits.max)
            os << " " << *t.limits.max;
        os << " funcref)\n";
    }
    for (uint32_t i = 0; i < m.functions.size(); ++i)
        os << toString(m, i);
    if (m.start)
        os << "  (start $" << *m.start << ")\n";
    os << ")\n";
    return os.str();
}

} // namespace wasabi::wasm
