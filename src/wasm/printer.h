/**
 * @file
 * WAT-style text rendering of modules, functions and instructions,
 * mainly for debugging, tests and example output.
 */

#ifndef WASABI_WASM_PRINTER_H
#define WASABI_WASM_PRINTER_H

#include <string>

#include "wasm/module.h"

namespace wasabi::wasm {

/** Render one instruction, e.g. "i32.const 42" or "br_table 0 1 2". */
std::string toString(const Instr &instr);

/** Render a function (header, locals and indented body). */
std::string toString(const Module &m, uint32_t func_idx);

/** Render a whole module. */
std::string toString(const Module &m);

} // namespace wasabi::wasm

#endif // WASABI_WASM_PRINTER_H
