#include "wasm/encoder.h"

#include <bit>

#include "wasm/leb128.h"

namespace wasabi::wasm {

namespace {

void
putU32(std::vector<uint8_t> &out, uint32_t v)
{
    encodeULEB(out, v);
}

void
putFixedU32(std::vector<uint8_t> &out, uint32_t v)
{
    out.push_back(v & 0xFF);
    out.push_back((v >> 8) & 0xFF);
    out.push_back((v >> 16) & 0xFF);
    out.push_back((v >> 24) & 0xFF);
}

void
putFixedU64(std::vector<uint8_t> &out, uint64_t v)
{
    putFixedU32(out, static_cast<uint32_t>(v));
    putFixedU32(out, static_cast<uint32_t>(v >> 32));
}

void
putName(std::vector<uint8_t> &out, const std::string &s)
{
    putU32(out, static_cast<uint32_t>(s.size()));
    out.insert(out.end(), s.begin(), s.end());
}

void
putValType(std::vector<uint8_t> &out, ValType t)
{
    out.push_back(binaryByte(t));
}

void
putLimits(std::vector<uint8_t> &out, const Limits &l)
{
    if (l.max) {
        out.push_back(0x01);
        putU32(out, l.min);
        putU32(out, *l.max);
    } else {
        out.push_back(0x00);
        putU32(out, l.min);
    }
}

void
putExpr(std::vector<uint8_t> &out, const std::vector<Instr> &expr)
{
    for (const Instr &i : expr)
        encodeInstr(out, i);
}

/** Append a section with the given id; empty payloads are skipped. */
void
putSection(std::vector<uint8_t> &out, uint8_t id,
           const std::vector<uint8_t> &payload)
{
    if (payload.empty())
        return;
    out.push_back(id);
    putU32(out, static_cast<uint32_t>(payload.size()));
    out.insert(out.end(), payload.begin(), payload.end());
}

/** Export entries collected across all index spaces. */
struct ExportEntry {
    std::string name;
    uint8_t kind;
    uint32_t idx;
};

} // namespace

void
encodeInstr(std::vector<uint8_t> &out, const Instr &instr)
{
    const OpInfo &info = opInfo(instr.op);
    if (!info.valid())
        throw EncodeError("invalid opcode");
    out.push_back(static_cast<uint8_t>(instr.op));
    switch (info.imm) {
      case ImmKind::None:
        break;
      case ImmKind::BlockType:
        out.push_back(instr.block ? binaryByte(*instr.block) : 0x40);
        break;
      case ImmKind::Label:
      case ImmKind::Func:
      case ImmKind::Local:
      case ImmKind::Global:
        putU32(out, instr.imm.idx);
        break;
      case ImmKind::CallInd:
        putU32(out, instr.imm.idx);
        out.push_back(0x00);
        break;
      case ImmKind::BrTableImm: {
        if (instr.table.empty())
            throw EncodeError("br_table without default target");
        putU32(out, static_cast<uint32_t>(instr.table.size() - 1));
        for (uint32_t label : instr.table)
            putU32(out, label);
        break;
      }
      case ImmKind::Mem:
        putU32(out, instr.imm.mem.align);
        putU32(out, instr.imm.mem.offset);
        break;
      case ImmKind::MemIdx:
        out.push_back(0x00);
        break;
      case ImmKind::I32:
        encodeSLEB(out, static_cast<int32_t>(instr.imm.i32v));
        break;
      case ImmKind::I64:
        encodeSLEB(out, static_cast<int64_t>(instr.imm.i64v));
        break;
      case ImmKind::F32:
        putFixedU32(out, std::bit_cast<uint32_t>(instr.imm.f32v));
        break;
      case ImmKind::F64:
        putFixedU64(out, std::bit_cast<uint64_t>(instr.imm.f64v));
        break;
    }
}

std::vector<uint8_t>
encodeModule(const Module &m)
{
    std::vector<uint8_t> out;
    putFixedU32(out, 0x6D736100);
    putFixedU32(out, 1);

    // --- Type section.
    {
        std::vector<uint8_t> sec;
        if (!m.types.empty()) {
            putU32(sec, static_cast<uint32_t>(m.types.size()));
            for (const FuncType &t : m.types) {
                sec.push_back(0x60);
                putU32(sec, static_cast<uint32_t>(t.params.size()));
                for (ValType p : t.params)
                    putValType(sec, p);
                putU32(sec, static_cast<uint32_t>(t.results.size()));
                for (ValType r : t.results)
                    putValType(sec, r);
            }
        }
        putSection(out, 1, sec);
    }

    // --- Import section, gathered from all index spaces.
    {
        std::vector<uint8_t> entries;
        uint32_t count = 0;
        for (const Function &f : m.functions) {
            if (!f.imported())
                break;
            putName(entries, f.import->module);
            putName(entries, f.import->name);
            entries.push_back(0x00);
            putU32(entries, f.typeIdx);
            ++count;
        }
        for (const Table &t : m.tables) {
            if (!t.imported())
                break;
            putName(entries, t.import->module);
            putName(entries, t.import->name);
            entries.push_back(0x01);
            entries.push_back(0x70);
            putLimits(entries, t.limits);
            ++count;
        }
        for (const Memory &mem : m.memories) {
            if (!mem.imported())
                break;
            putName(entries, mem.import->module);
            putName(entries, mem.import->name);
            entries.push_back(0x02);
            putLimits(entries, mem.limits);
            ++count;
        }
        for (const Global &g : m.globals) {
            if (!g.imported())
                break;
            putName(entries, g.import->module);
            putName(entries, g.import->name);
            entries.push_back(0x03);
            putValType(entries, g.type);
            entries.push_back(g.mut ? 0x01 : 0x00);
            ++count;
        }
        std::vector<uint8_t> sec;
        if (count > 0) {
            putU32(sec, count);
            sec.insert(sec.end(), entries.begin(), entries.end());
        }
        putSection(out, 2, sec);
    }

    // Check import-before-defined invariant in every index space.
    auto checkOrder = [](auto const &vec, const char *what) {
        bool seen_defined = false;
        for (const auto &e : vec) {
            if (e.imported() && seen_defined) {
                throw EncodeError(std::string(what) +
                                  ": import after defined entity");
            }
            if (!e.imported())
                seen_defined = true;
        }
    };
    checkOrder(m.functions, "functions");
    checkOrder(m.tables, "tables");
    checkOrder(m.memories, "memories");
    checkOrder(m.globals, "globals");

    // --- Function section (type indices of defined functions).
    {
        std::vector<uint8_t> sec;
        uint32_t count = 0;
        std::vector<uint8_t> entries;
        for (const Function &f : m.functions) {
            if (f.imported())
                continue;
            putU32(entries, f.typeIdx);
            ++count;
        }
        if (count > 0) {
            putU32(sec, count);
            sec.insert(sec.end(), entries.begin(), entries.end());
        }
        putSection(out, 3, sec);
    }

    // --- Table section.
    {
        std::vector<uint8_t> sec;
        uint32_t count = 0;
        std::vector<uint8_t> entries;
        for (const Table &t : m.tables) {
            if (t.imported())
                continue;
            entries.push_back(0x70);
            putLimits(entries, t.limits);
            ++count;
        }
        if (count > 0) {
            putU32(sec, count);
            sec.insert(sec.end(), entries.begin(), entries.end());
        }
        putSection(out, 4, sec);
    }

    // --- Memory section.
    {
        std::vector<uint8_t> sec;
        uint32_t count = 0;
        std::vector<uint8_t> entries;
        for (const Memory &mem : m.memories) {
            if (mem.imported())
                continue;
            putLimits(entries, mem.limits);
            ++count;
        }
        if (count > 0) {
            putU32(sec, count);
            sec.insert(sec.end(), entries.begin(), entries.end());
        }
        putSection(out, 5, sec);
    }

    // --- Global section.
    {
        std::vector<uint8_t> sec;
        uint32_t count = 0;
        std::vector<uint8_t> entries;
        for (const Global &g : m.globals) {
            if (g.imported())
                continue;
            putValType(entries, g.type);
            entries.push_back(g.mut ? 0x01 : 0x00);
            putExpr(entries, g.init);
            ++count;
        }
        if (count > 0) {
            putU32(sec, count);
            sec.insert(sec.end(), entries.begin(), entries.end());
        }
        putSection(out, 6, sec);
    }

    // --- Export section.
    {
        std::vector<ExportEntry> exports;
        for (size_t i = 0; i < m.functions.size(); ++i) {
            for (const std::string &n : m.functions[i].exportNames)
                exports.push_back({n, 0x00, static_cast<uint32_t>(i)});
        }
        for (size_t i = 0; i < m.tables.size(); ++i) {
            for (const std::string &n : m.tables[i].exportNames)
                exports.push_back({n, 0x01, static_cast<uint32_t>(i)});
        }
        for (size_t i = 0; i < m.memories.size(); ++i) {
            for (const std::string &n : m.memories[i].exportNames)
                exports.push_back({n, 0x02, static_cast<uint32_t>(i)});
        }
        for (size_t i = 0; i < m.globals.size(); ++i) {
            for (const std::string &n : m.globals[i].exportNames)
                exports.push_back({n, 0x03, static_cast<uint32_t>(i)});
        }
        std::vector<uint8_t> sec;
        if (!exports.empty()) {
            putU32(sec, static_cast<uint32_t>(exports.size()));
            for (const ExportEntry &e : exports) {
                putName(sec, e.name);
                sec.push_back(e.kind);
                putU32(sec, e.idx);
            }
        }
        putSection(out, 7, sec);
    }

    // --- Start section.
    if (m.start) {
        std::vector<uint8_t> sec;
        putU32(sec, *m.start);
        putSection(out, 8, sec);
    }

    // --- Element section.
    if (!m.elements.empty()) {
        std::vector<uint8_t> sec;
        putU32(sec, static_cast<uint32_t>(m.elements.size()));
        for (const ElementSegment &seg : m.elements) {
            putU32(sec, seg.tableIdx);
            putExpr(sec, seg.offset);
            putU32(sec, static_cast<uint32_t>(seg.funcIdxs.size()));
            for (uint32_t f : seg.funcIdxs)
                putU32(sec, f);
        }
        putSection(out, 9, sec);
    }

    // --- Code section.
    {
        std::vector<uint8_t> sec;
        uint32_t count = 0;
        std::vector<uint8_t> entries;
        for (const Function &f : m.functions) {
            if (f.imported())
                continue;
            std::vector<uint8_t> body;
            // Run-length encode the locals.
            std::vector<std::pair<ValType, uint32_t>> runs;
            for (ValType t : f.locals) {
                if (!runs.empty() && runs.back().first == t)
                    ++runs.back().second;
                else
                    runs.push_back({t, 1});
            }
            putU32(body, static_cast<uint32_t>(runs.size()));
            for (auto [t, n] : runs) {
                putU32(body, n);
                putValType(body, t);
            }
            putExpr(body, f.body);
            putU32(entries, static_cast<uint32_t>(body.size()));
            entries.insert(entries.end(), body.begin(), body.end());
            ++count;
        }
        if (count > 0) {
            putU32(sec, count);
            sec.insert(sec.end(), entries.begin(), entries.end());
        }
        putSection(out, 10, sec);
    }

    // --- Data section.
    if (!m.data.empty()) {
        std::vector<uint8_t> sec;
        putU32(sec, static_cast<uint32_t>(m.data.size()));
        for (const DataSegment &seg : m.data) {
            putU32(sec, seg.memIdx);
            putExpr(sec, seg.offset);
            putU32(sec, static_cast<uint32_t>(seg.bytes.size()));
            sec.insert(sec.end(), seg.bytes.begin(), seg.bytes.end());
        }
        putSection(out, 11, sec);
    }

    // --- Custom sections, appended at the end.
    for (const CustomSection &c : m.customs) {
        std::vector<uint8_t> sec;
        putName(sec, c.name);
        sec.insert(sec.end(), c.bytes.begin(), c.bytes.end());
        putSection(out, 0, sec);
    }

    return out;
}

std::vector<SectionSize>
sectionSizes(const std::vector<uint8_t> &bytes)
{
    static const char *kSectionNames[] = {
        "custom", "type",   "import", "function", "table",  "memory",
        "global", "export", "start",  "element",  "code",   "data",
    };
    std::vector<SectionSize> sizes;
    ByteReader r(bytes);
    r.readBytes(8); // magic + version
    while (!r.done()) {
        size_t header_start = r.pos();
        uint8_t id = r.readByte();
        uint32_t payload = r.readU32();
        SectionSize s;
        s.id = id;
        s.name = id < 12 ? kSectionNames[id] : "unknown";
        if (id == 0) {
            size_t name_start = r.pos();
            ByteReader nr(bytes.data() + name_start, payload);
            s.name = nr.readName();
            r.readBytes(payload);
        } else {
            r.readBytes(payload);
        }
        s.bytes = r.pos() - header_start;
        sizes.push_back(std::move(s));
    }
    return sizes;
}

} // namespace wasabi::wasm
