#include "serve/instance_pool.h"

#include "interp/engine/code.h"

namespace wasabi::serve {

InstanceLease
InstancePool::acquire(const CachedModule &entry)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = parked_.find(entry.hash());
        if (it != parked_.end() && !it->second.empty()) {
            Parked p = std::move(it->second.back());
            it->second.pop_back();
            ++hits_;
            return InstanceLease{std::move(p.instance),
                                 std::move(p.snapshot), entry.hash(),
                                 /*warm=*/true};
        }
    }
    // Cold path outside the lock: instantiation runs the start
    // function, which is arbitrary guest code.
    ++misses_;
    std::unique_ptr<interp::Instance> inst =
        interp::Instance::instantiate(entry.module(), interp::Linker());
    interp::InstanceSnapshot snap = inst->snapshot();
    return InstanceLease{std::move(inst), std::move(snap), entry.hash(),
                         /*warm=*/false};
}

void
InstancePool::release(InstanceLease lease)
{
    if (!lease.instance)
        return;
    lease.instance->restore(lease.snapshot);
    // Park the sink but keep the attached kind set and translations:
    // the next tenant with the same hook requirements re-attaches by
    // swapping the sink pointer back in (CompiledModule::
    // setIntrinsicHooks' same-set fast path).
    lease.instance->engineCode().setIntrinsicSink(nullptr);
    std::lock_guard<std::mutex> lock(mutex_);
    parked_[lease.moduleHash].push_back(
        Parked{std::move(lease.instance), std::move(lease.snapshot)});
}

size_t
InstancePool::parkedCount(uint64_t module_hash) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = parked_.find(module_hash);
    return it == parked_.end() ? 0 : it->second.size();
}

} // namespace wasabi::serve
