#include "serve/server.h"

#include <cinttypes>
#include <cstdio>

#include "analyses/registry.h"
#include "core/instrument.h"
#include "interp/engine/code.h"
#include "interp/interpreter.h"
#include "obs/profile.h"
#include "runtime/runtime.h"
#include "support/file_io.h"
#include "wasm/encoder.h"

namespace wasabi::serve {

namespace {

/** A request denied by its fuel or memory quota. */
struct QuotaExceeded : std::runtime_error {
    std::string resource; ///< "fuel" | "memory"
    QuotaExceeded(std::string res, const std::string &msg)
        : std::runtime_error(msg), resource(std::move(res))
    {
    }
};

/** Guest execution trapped (not quota-attributable). */
struct GuestTrap : std::runtime_error {
    std::string trap; ///< interp::name(kind)
    GuestTrap(std::string kind, const std::string &msg)
        : std::runtime_error(msg), trap(std::move(kind))
    {
    }
};

core::HookSet
parseHookSet(const std::string &spec)
{
    if (spec.empty() || spec == "all")
        return core::HookSet::all();
    core::HookSet set;
    size_t pos = 0;
    while (pos <= spec.size()) {
        size_t comma = spec.find(',', pos);
        std::string name = spec.substr(pos, comma - pos);
        std::optional<core::HookKind> kind = core::hookKindByName(name);
        if (!kind)
            throw BadRequest("unknown hook kind \"" + name + "\"");
        set.add(*kind);
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return set;
}

std::string
hex16(uint64_t v)
{
    char buf[24];
    std::snprintf(buf, sizeof buf, "%016" PRIx64, v);
    return buf;
}

} // namespace

Server::EndpointStats *
Server::statsFor(const std::string &op)
{
    for (size_t i = 0; i < kEndpoints.size(); ++i) {
        if (op == kEndpoints[i])
            return &stats_[i];
    }
    return nullptr;
}

Server::Handled
Server::handle(const std::string &line)
{
    Request r;
    try {
        r = parseRequest(line);
    } catch (const BadRequest &e) {
        ++badRequests_;
        return Handled{
            errorResponse("", "", "serve.bad-request", e.what()), "",
            false};
    }
    EndpointStats *st = statsFor(r.op);
    ++st->requests;
    try {
        if (r.op == "shutdown") {
            ResponseWriter w(true, "shutdown", r.id);
            return Handled{w.result(), r.op, true};
        }
        if (r.op == "metrics")
            return Handled{opMetrics(r), r.op, false};
        if (r.op == "run")
            return Handled{opRun(r, false), r.op, false};
        if (r.op == "profile")
            return Handled{opRun(r, true), r.op, false};
        if (r.op == "instrument")
            return Handled{opInstrument(r), r.op, false};
        return Handled{opAnalyze(r), r.op, false};
    } catch (const BadRequest &e) {
        ++st->errors;
        return Handled{
            errorResponse(r.op, r.id, "serve.bad-request", e.what()),
            r.op, false};
    } catch (const QuotaExceeded &e) {
        ++st->errors;
        return Handled{errorResponse(r.op, r.id, "serve.quota-exceeded",
                                     e.what(), "resource", e.resource),
                       r.op, false};
    } catch (const GuestTrap &e) {
        ++st->errors;
        return Handled{errorResponse(r.op, r.id, "serve.trap", e.what(),
                                     "trap", e.trap),
                       r.op, false};
    } catch (const interp::Trap &t) {
        // e.g. a start function trapping during cold instantiation
        ++st->errors;
        return Handled{errorResponse(r.op, r.id, "serve.trap",
                                     std::string("guest trapped: ") +
                                         interp::name(t.kind()),
                                     "trap", interp::name(t.kind())),
                       r.op, false};
    } catch (const support::IoError &e) {
        ++st->errors;
        const bool write_side = e.code() == "io.write" ||
                                e.code() == "io.short-write";
        return Handled{errorResponse(r.op, r.id,
                                     write_side ? "serve.io-error"
                                                : "serve.module-error",
                                     e.what()),
                       r.op, false};
    } catch (const interp::LinkError &e) {
        ++st->errors;
        return Handled{
            errorResponse(r.op, r.id, "serve.module-error", e.what()),
            r.op, false};
    } catch (const std::invalid_argument &e) {
        ++st->errors;
        return Handled{
            errorResponse(r.op, r.id, "serve.bad-request", e.what()),
            r.op, false};
    } catch (const std::exception &e) {
        ++st->errors;
        return Handled{
            errorResponse(r.op, r.id, "serve.internal", e.what()), r.op,
            false};
    }
}

std::string
Server::opRun(const Request &r, bool with_profile)
{
    const char *op = with_profile ? "profile" : "run";
    std::vector<uint8_t> bytes = support::readBinaryFile(r.module);
    bool cache_hit = false;
    std::shared_ptr<CachedModule> entry =
        cache_.acquire(bytes, r.module, &cache_hit);
    const wasm::Module &m = *entry->module();

    std::unique_ptr<runtime::Analysis> analysis;
    try {
        analysis = analyses::makeAnalysis(r.analysis);
    } catch (const std::exception &e) {
        throw BadRequest(e.what());
    }
    core::HookSet hook_set =
        r.hooks.empty()
            ? runtime::WasabiRuntime::requiredHooks({analysis.get()})
            : parseHookSet(r.hooks);

    std::string entry_name = r.entry;
    if (entry_name.empty()) {
        entry_name = "main";
        if (!m.findFuncExport(entry_name) && m.findFuncExport("kernel"))
            entry_name = "kernel";
    }
    if (!m.findFuncExport(entry_name))
        throw BadRequest("no exported function \"" + entry_name +
                         "\" in " + r.module);

    std::shared_ptr<const core::StaticInfo> info =
        entry->intrinsicInfo(hook_set);
    runtime::WasabiRuntime rt(info);
    rt.addAnalysis(analysis.get(), r.analysis);
    obs::ProfileCollector collector(with_profile);
    if (with_profile) {
        collector.setInstrumentMode("intrinsic");
        rt.setProfiler(&collector);
    }

    InstanceLease lease = pool_.acquire(*entry);
    interp::Instance &inst = *lease.instance;
    const bool warm = lease.warm;

    if (r.memoryPages &&
        inst.memory().sizePages() > *r.memoryPages) {
        uint32_t pages = inst.memory().sizePages();
        pool_.release(std::move(lease));
        ++quotaTrips_;
        throw QuotaExceeded(
            "memory", "module's post-start memory (" +
                          std::to_string(pages) +
                          " pages) already exceeds the request quota "
                          "of " +
                          std::to_string(*r.memoryPages) + " pages");
    }
    if (r.memoryPages)
        inst.memory().setPageQuota(*r.memoryPages);
    if (r.fuel)
        inst.setFuel(*r.fuel);

    // Same-kind re-attach on a warm instance is a sink-pointer swap:
    // translations survive (pinned by the counter delta below).
    rt.attachIntrinsic(inst);
    interp::engine::CompiledModule &cm = inst.engineCode();
    const uint64_t t0 = cm.translationsPerformed();

    interp::Interpreter interp;
    std::vector<wasm::Value> results;
    try {
        obs::ProfileCollector::ScopedPhase p(
            with_profile ? &collector : nullptr, "execute");
        results = interp.invokeExport(inst, entry_name, r.args);
    } catch (const interp::Trap &t) {
        const uint64_t denials = inst.memory().quotaDenials();
        translations_ += cm.translationsPerformed() - t0;
        pool_.release(std::move(lease)); // restored; safe to re-park
        if (t.kind() == interp::TrapKind::FuelExhausted && r.fuel) {
            ++quotaTrips_;
            throw QuotaExceeded(
                "fuel", "execution exceeded the fuel quota of " +
                            std::to_string(*r.fuel) + " instructions");
        }
        if (t.kind() == interp::TrapKind::MemoryOutOfBounds &&
            denials > 0) {
            ++quotaTrips_;
            throw QuotaExceeded(
                "memory",
                "out-of-bounds access after memory.grow was denied " +
                    std::to_string(denials) + " time(s) by the " +
                    std::to_string(*r.memoryPages) + "-page quota");
        }
        throw GuestTrap(interp::name(t.kind()),
                        std::string("guest trapped: ") +
                            interp::name(t.kind()));
    }
    const uint64_t delta = cm.translationsPerformed() - t0;
    translations_ += delta;
    const interp::ExecStats &es = interp.stats();
    const uint64_t hook_invocations = rt.hookInvocations();
    std::string report =
        analyses::analysisReport(r.analysis, *analysis, m);
    pool_.release(std::move(lease));

    ResponseWriter w(true, op, r.id);
    w.field("entry", entry_name);
    std::string arr = "[";
    for (size_t i = 0; i < results.size(); ++i)
        arr += std::string(i ? ", " : "") + "\"" +
               jsonEscape(toString(results[i])) + "\"";
    arr += "]";
    w.fieldRaw("results", arr);
    w.field("instructions", es.instructions);
    w.field("hookInvocations", hook_invocations);
    w.field("analysis", r.analysis);
    w.field("report", report);
    if (with_profile) {
        collector.setInterpCounters(obs::InterpCounters{
            es.instructions, es.calls, es.memoryOps,
            es.memoryOpsElided, es.traps});
        // Deterministic by default so N concurrent clients issuing the
        // same request sequence read byte-identical responses; verbose
        // opts into real (schedule-dependent) timings.
        w.field("profile", collector.toJson(!r.verbose));
    }
    if (r.verbose) {
        w.field("cacheHit", cache_hit);
        w.field("warm", warm);
        w.field("translations", delta);
    }
    return w.result();
}

std::string
Server::opInstrument(const Request &r)
{
    std::vector<uint8_t> bytes = support::readBinaryFile(r.module);
    bool cache_hit = false;
    std::shared_ptr<CachedModule> entry =
        cache_.acquire(bytes, r.module, &cache_hit);
    core::HookSet hook_set = parseHookSet(r.hooks);
    core::InstrumentResult res =
        core::instrument(*entry->module(), hook_set);
    std::vector<uint8_t> out = wasm::encodeModule(res.module);
    support::writeBinaryFile(r.out, out);

    ResponseWriter w(true, "instrument", r.id);
    w.field("out", r.out);
    w.field("sizeIn", static_cast<uint64_t>(bytes.size()));
    w.field("sizeOut", static_cast<uint64_t>(out.size()));
    w.field("hooksGenerated",
            static_cast<uint64_t>(res.info->hooks.size()));
    if (r.verbose)
        w.field("cacheHit", cache_hit);
    return w.result();
}

std::string
Server::opAnalyze(const Request &r)
{
    std::vector<uint8_t> bytes = support::readBinaryFile(r.module);
    bool cache_hit = false;
    std::shared_ptr<CachedModule> entry =
        cache_.acquire(bytes, r.module, &cache_hit);
    const wasm::Module &m = *entry->module();

    uint64_t exports = 0;
    for (const wasm::Function &f : m.functions)
        exports += f.exportNames.size();

    ResponseWriter w(true, "analyze", r.id);
    w.field("hash", hex16(entry->hash()));
    w.field("functions", static_cast<uint64_t>(m.numFunctions()));
    w.field("instructions", static_cast<uint64_t>(m.numInstructions()));
    w.field("types", static_cast<uint64_t>(m.types.size()));
    w.field("exports", exports);
    if (r.verbose)
        w.field("cacheHit", cache_hit);
    return w.result();
}

std::string
Server::metricsJson() const
{
    std::string out =
        "{\"schema\": \"wasabi-profile\", \"version\": 1, "
        "\"deterministic\": true, \"runtime\": {\"hookInvocations\": 0, "
        "\"perKind\": []}, \"serve\": {";
    char buf[512];
    std::snprintf(
        buf, sizeof buf,
        "\"cacheHits\": %" PRIu64 ", \"cacheMisses\": %" PRIu64
        ", \"cacheEntries\": %zu, \"poolHits\": %" PRIu64
        ", \"poolMisses\": %" PRIu64 ", \"translations\": %" PRIu64
        ", \"quotaTrips\": %" PRIu64 ", \"badRequests\": %" PRIu64
        ", \"endpoints\": [",
        cache_.hits(), cache_.misses(), cache_.size(), pool_.hits(),
        pool_.misses(), translations_.load(), quotaTrips_.load(),
        badRequests_.load());
    out += buf;
    for (size_t i = 0; i < kEndpoints.size(); ++i) {
        std::snprintf(buf, sizeof buf,
                      "%s{\"op\": \"%s\", \"requests\": %" PRIu64
                      ", \"errors\": %" PRIu64 "}",
                      i ? ", " : "", kEndpoints[i],
                      stats_[i].requests.load(), stats_[i].errors.load());
        out += buf;
    }
    out += "]}}";
    return out;
}

std::string
Server::opMetrics(const Request &r)
{
    ResponseWriter w(true, "metrics", r.id);
    w.fieldRaw("metrics", metricsJson());
    return w.result();
}

} // namespace wasabi::serve
