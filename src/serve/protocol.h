/**
 * @file
 * The serve daemon's wire protocol: line-oriented JSON. Each request
 * is one JSON object on one line; each response is one JSON object on
 * one line. The same protocol runs over the Unix socket and the
 * `--request=FILE` driver mode, so tests and CI exercise the real
 * request path without socket plumbing.
 *
 * Request:
 *   {"op": "run" | "profile" | "instrument" | "analyze" | "metrics"
 *          | "shutdown",
 *    "id": <any string, echoed back>,          // optional
 *    "module": "<path to .wasm/.wat>",         // per-op
 *    "analysis": "mix",                        // run/profile
 *    "entry": "main", "args": ["i32:5", ...],  // run/profile
 *    "hooks": "all" | "begin,end,...",         // profile/instrument
 *    "out": "<path>",                          // instrument
 *    "fuel": 1000000,                          // quota (optional)
 *    "memoryPages": 64,                        // quota (optional)
 *    "verbose": true}                          // include cache/pool
 *                                              // provenance (breaks
 *                                              // cross-client
 *                                              // determinism; off by
 *                                              // default)
 *
 * Response: {"ok": true, "op": ..., "id": ..., <op payload>} or
 * {"ok": false, "op": ..., "id": ..., "error": {"code": "serve.*",
 * "message": ...}}. Error codes: serve.bad-request,
 * serve.module-error, serve.quota-exceeded (with "resource": "fuel" |
 * "memory"), serve.trap (with "trap": <kind>), serve.internal. No
 * request — malformed, trapping, or over-quota — ever terminates the
 * daemon.
 */

#ifndef WASABI_SERVE_PROTOCOL_H
#define WASABI_SERVE_PROTOCOL_H

#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "wasm/module.h"

namespace wasabi::serve {

/** Client-side usage error — mapped to serve.bad-request. */
struct BadRequest : std::runtime_error {
    using std::runtime_error::runtime_error;
};

/** One parsed request. */
struct Request {
    std::string op;
    std::string id;       ///< echoed back; empty = omitted
    std::string module;   ///< path
    std::string analysis = "mix";
    std::string entry;    ///< empty = "main", falling back to "kernel"
    std::string hooks;    ///< empty = derived from the analysis / all
    std::string out;      ///< instrument output path
    std::vector<wasm::Value> args;
    std::optional<uint64_t> fuel;
    std::optional<uint32_t> memoryPages;
    bool verbose = false;
};

/** Parse one request line. @throws BadRequest on malformed JSON, a
 * missing/unknown "op", or ill-typed fields. */
Request parseRequest(const std::string &line);

/** Parse a "i32:5" / "i64:-1" / "f64:1.5" argument spec. */
wasm::Value parseArgSpec(const std::string &spec);

/** JSON string escaping for response payloads. */
std::string jsonEscape(const std::string &s);

/** Incremental response writer: one flat JSON object, fields appended
 * in call order, rendered with result(). */
class ResponseWriter {
  public:
    ResponseWriter(bool ok, const std::string &op, const std::string &id);

    void field(const std::string &key, const std::string &value);
    void fieldRaw(const std::string &key, const std::string &raw_json);
    void field(const std::string &key, uint64_t value);
    void field(const std::string &key, bool value);

    /** The finished single-line JSON object (no trailing newline). */
    std::string result() const;

  private:
    std::string buf_;
};

/** Build an error response line. @p extra_key/@p extra_value, when
 * non-empty, add one string field inside the "error" object (e.g.
 * "resource": "fuel"). */
std::string errorResponse(const std::string &op, const std::string &id,
                          const std::string &code,
                          const std::string &message,
                          const std::string &extra_key = "",
                          const std::string &extra_value = "");

} // namespace wasabi::serve

#endif // WASABI_SERVE_PROTOCOL_H
