#include "serve/protocol.h"

#include <cinttypes>
#include <cstdio>

#include "obs/json.h"

namespace wasabi::serve {

using obs::json::Value;

wasm::Value
parseArgSpec(const std::string &spec)
{
    size_t colon = spec.find(':');
    if (colon == std::string::npos)
        throw BadRequest("bad arg spec \"" + spec +
                         "\" (expected type:value)");
    std::string type = spec.substr(0, colon);
    std::string val = spec.substr(colon + 1);
    try {
        if (type == "i32")
            return wasm::Value::makeI32(
                static_cast<uint32_t>(std::stoll(val)));
        if (type == "i64")
            return wasm::Value::makeI64(
                static_cast<uint64_t>(std::stoll(val)));
        if (type == "f32")
            return wasm::Value::makeF32(std::stof(val));
        if (type == "f64")
            return wasm::Value::makeF64(std::stod(val));
    } catch (const std::exception &) {
        throw BadRequest("bad arg value in \"" + spec + "\"");
    }
    throw BadRequest("bad arg type in \"" + spec +
                     "\" (expected i32/i64/f32/f64)");
}

namespace {

std::string
requireString(const Value &doc, const char *key, const char *op)
{
    const Value *v = doc.find(key);
    if (!v)
        return "";
    if (!v->isString())
        throw BadRequest(std::string(op) + ": \"" + key +
                         "\" must be a string");
    return v->str;
}

} // namespace

Request
parseRequest(const std::string &line)
{
    std::string err;
    std::optional<Value> doc = obs::json::parse(line, &err);
    if (!doc)
        throw BadRequest("malformed request JSON: " + err);
    if (!doc->isObject())
        throw BadRequest("request must be a JSON object");

    Request r;
    const Value *op = doc->find("op");
    if (!op || !op->isString())
        throw BadRequest("missing string \"op\"");
    r.op = op->str;
    if (r.op != "run" && r.op != "profile" && r.op != "instrument" &&
        r.op != "analyze" && r.op != "metrics" && r.op != "shutdown")
        throw BadRequest("unknown op \"" + r.op +
                         "\" (expected run/profile/instrument/analyze/"
                         "metrics/shutdown)");

    r.id = requireString(*doc, "id", r.op.c_str());
    r.module = requireString(*doc, "module", r.op.c_str());
    r.entry = requireString(*doc, "entry", r.op.c_str());
    r.hooks = requireString(*doc, "hooks", r.op.c_str());
    r.out = requireString(*doc, "out", r.op.c_str());
    if (const Value *a = doc->find("analysis")) {
        if (!a->isString())
            throw BadRequest("\"analysis\" must be a string");
        r.analysis = a->str;
    }
    if (const Value *args = doc->find("args")) {
        if (!args->isArray())
            throw BadRequest("\"args\" must be an array of "
                             "\"type:value\" strings");
        for (const Value &a : args->array) {
            if (!a.isString())
                throw BadRequest("\"args\" entries must be strings");
            r.args.push_back(parseArgSpec(a.str));
        }
    }
    if (const Value *fuel = doc->find("fuel")) {
        if (!fuel->isNumber() || fuel->number < 0)
            throw BadRequest("\"fuel\" must be a non-negative number");
        r.fuel = fuel->asU64();
    }
    if (const Value *pages = doc->find("memoryPages")) {
        if (!pages->isNumber() || pages->number < 0 ||
            pages->number > 65536)
            throw BadRequest(
                "\"memoryPages\" must be a number in [0, 65536]");
        r.memoryPages = static_cast<uint32_t>(pages->asU64());
    }
    if (const Value *verbose = doc->find("verbose")) {
        if (!verbose->isBool())
            throw BadRequest("\"verbose\" must be a boolean");
        r.verbose = verbose->boolean;
    }

    if (r.op == "run" || r.op == "profile" || r.op == "instrument" ||
        r.op == "analyze") {
        if (r.module.empty())
            throw BadRequest(r.op + ": missing \"module\" path");
    }
    if (r.op == "instrument" && r.out.empty())
        throw BadRequest("instrument: missing \"out\" path");
    return r;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (unsigned char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

ResponseWriter::ResponseWriter(bool ok, const std::string &op,
                               const std::string &id)
{
    buf_ = std::string("{\"ok\": ") + (ok ? "true" : "false") +
           ", \"op\": \"" + jsonEscape(op) + "\"";
    if (!id.empty())
        buf_ += ", \"id\": \"" + jsonEscape(id) + "\"";
}

void
ResponseWriter::field(const std::string &key, const std::string &value)
{
    buf_ += ", \"" + jsonEscape(key) + "\": \"" + jsonEscape(value) + "\"";
}

void
ResponseWriter::fieldRaw(const std::string &key,
                         const std::string &raw_json)
{
    buf_ += ", \"" + jsonEscape(key) + "\": " + raw_json;
}

void
ResponseWriter::field(const std::string &key, uint64_t value)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%" PRIu64, value);
    buf_ += ", \"" + jsonEscape(key) + "\": " + buf;
}

void
ResponseWriter::field(const std::string &key, bool value)
{
    buf_ += ", \"" + jsonEscape(key) + "\": " +
            (value ? "true" : "false");
}

std::string
ResponseWriter::result() const
{
    return buf_ + "}";
}

std::string
errorResponse(const std::string &op, const std::string &id,
              const std::string &code, const std::string &message,
              const std::string &extra_key,
              const std::string &extra_value)
{
    ResponseWriter w(false, op, id);
    std::string err = "{\"code\": \"" + jsonEscape(code) +
                      "\", \"message\": \"" + jsonEscape(message) + "\"";
    if (!extra_key.empty())
        err += ", \"" + jsonEscape(extra_key) + "\": \"" +
               jsonEscape(extra_value) + "\"";
    err += "}";
    w.fieldRaw("error", err);
    return w.result();
}

} // namespace wasabi::serve
