#include "serve/socket.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <csignal>
#include <cstring>
#include <thread>
#include <vector>

#include "support/file_io.h"

namespace wasabi::serve {

namespace {

/** Send all of @p data, tolerating partial writes. MSG_NOSIGNAL keeps
 * a client that hung up from killing the daemon with SIGPIPE. */
bool
sendAll(int fd, const std::string &data)
{
    size_t off = 0;
    while (off < data.size()) {
        ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                           MSG_NOSIGNAL);
        if (n <= 0)
            return false;
        off += static_cast<size_t>(n);
    }
    return true;
}

/** Serve one connection: newline-framed requests in, one response
 * line per request out. Returns true if a shutdown was requested. */
bool
serveConnection(Server &server, int fd)
{
    std::string buf;
    char chunk[4096];
    bool shutdown = false;
    for (;;) {
        size_t nl;
        while ((nl = buf.find('\n')) == std::string::npos) {
            ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
            if (n <= 0)
                return shutdown; // EOF or error: drop the connection
            buf.append(chunk, static_cast<size_t>(n));
        }
        std::string line = buf.substr(0, nl);
        buf.erase(0, nl + 1);
        if (line.empty())
            continue;
        Server::Handled h = server.handle(line);
        if (!sendAll(fd, h.response + "\n"))
            return shutdown;
        if (h.shutdown)
            return true;
    }
}

} // namespace

int
serveUnixSocket(Server &server, const std::string &socket_path)
{
    if (socket_path.size() >= sizeof(sockaddr_un{}.sun_path))
        throw support::IoError("io.socket", socket_path,
                               "socket path too long");
    int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd < 0)
        throw support::IoError("io.socket", socket_path,
                               std::strerror(errno));
    ::unlink(socket_path.c_str());
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::bind(listen_fd, reinterpret_cast<sockaddr *>(&addr),
               sizeof addr) != 0 ||
        ::listen(listen_fd, 16) != 0) {
        int saved = errno;
        ::close(listen_fd);
        throw support::IoError("io.socket", socket_path,
                               std::strerror(saved));
    }

    std::atomic<bool> stopping{false};
    std::vector<std::thread> workers;
    while (!stopping.load()) {
        int fd = ::accept(listen_fd, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (stopping.load()) {
            ::close(fd);
            break;
        }
        workers.emplace_back([&server, &stopping, fd, listen_fd] {
            if (serveConnection(server, fd)) {
                // Wake the accept() below so the daemon can exit.
                stopping.store(true);
                ::shutdown(listen_fd, SHUT_RDWR);
            }
            ::close(fd);
        });
    }
    ::close(listen_fd);
    ::unlink(socket_path.c_str());
    for (std::thread &t : workers)
        t.join();
    return 0;
}

} // namespace wasabi::serve
