/**
 * @file
 * Unix-domain-socket transport for the serve daemon: a SOCK_STREAM
 * listener speaking the line-oriented JSON protocol (protocol.h), one
 * handler thread per accepted connection. The transport owns no
 * request logic — every line goes through Server::handle, so socket
 * clients and `--request` driver runs observe identical behavior.
 */

#ifndef WASABI_SERVE_SOCKET_H
#define WASABI_SERVE_SOCKET_H

#include <string>

#include "serve/server.h"

namespace wasabi::serve {

/**
 * Bind @p socket_path (unlinking a stale socket first), accept
 * connections, and serve request lines until a client sends
 * {"op": "shutdown"}. Returns 0 on orderly shutdown.
 * @throws support::IoError ("io.socket") when the socket cannot be
 * created or bound. Per-connection I/O errors only drop that
 * connection; per-request errors are structured responses
 * (Server::handle never throws) — the daemon outlives both.
 */
int serveUnixSocket(Server &server, const std::string &socket_path);

} // namespace wasabi::serve

#endif // WASABI_SERVE_SOCKET_H
