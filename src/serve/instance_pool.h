/**
 * @file
 * Warmed-instance pool for the serve daemon (DESIGN.md §14). A cold
 * request instantiates (segments applied, start function run) and
 * immediately snapshots the post-start state; on release the snapshot
 * is restored, the intrinsic sink is parked (nulled), and the
 * instance is parked for reuse. A warm request therefore gets an
 * instance whose fast-engine translation cache — the expensive part —
 * is already populated: when its hook-kind set matches the previous
 * tenant's, attaching the new runtime is a sink-pointer swap and zero
 * re-translation (pinned by CompiledModule::translationsPerformed()).
 *
 * Leases are exclusive: an instance is either parked in the pool or
 * owned by exactly one request, so no instance state is ever shared
 * across threads. The pool itself is thread-safe.
 */

#ifndef WASABI_SERVE_INSTANCE_POOL_H
#define WASABI_SERVE_INSTANCE_POOL_H

#include <atomic>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "interp/instance.h"
#include "serve/module_cache.h"

namespace wasabi::serve {

class InstancePool;

/**
 * An exclusively leased instance. Move-only; hand it back with
 * InstancePool::release() (or let it drop — a destroyed lease
 * discards the instance rather than pooling it, the safe default for
 * instances in unknown state).
 */
struct InstanceLease {
    std::unique_ptr<interp::Instance> instance;
    /** Post-start state to restore on release. */
    interp::InstanceSnapshot snapshot;
    uint64_t moduleHash = 0;
    /** True when the instance came warm from the pool. */
    bool warm = false;
};

class InstancePool {
  public:
    /**
     * Lease an instance of @p entry's module: a parked warm one when
     * available, otherwise freshly instantiated (imports resolved
     * against an empty linker; start function runs) and snapshotted.
     * @throws interp::LinkError / interp::Trap as instantiation does.
     */
    InstanceLease acquire(const CachedModule &entry);

    /**
     * Restore @p lease's snapshot (memory shrunk back, globals and
     * table rewound, fuel and quotas cleared), park the intrinsic
     * sink, and return the instance to the pool. The caller's runtime
     * may be destroyed immediately afterwards — the parked instance
     * holds no live reference to it.
     */
    void release(InstanceLease lease);

    uint64_t hits() const { return hits_.load(); }
    uint64_t misses() const { return misses_.load(); }

    /** Parked instances for @p module_hash (tests/metrics). */
    size_t parkedCount(uint64_t module_hash) const;

  private:
    struct Parked {
        std::unique_ptr<interp::Instance> instance;
        interp::InstanceSnapshot snapshot;
    };

    mutable std::mutex mutex_;
    std::unordered_map<uint64_t, std::vector<Parked>> parked_;
    std::atomic<uint64_t> hits_{0};
    std::atomic<uint64_t> misses_{0};
};

} // namespace wasabi::serve

#endif // WASABI_SERVE_INSTANCE_POOL_H
