/**
 * @file
 * The serve daemon's content-hash module cache (DESIGN.md §14): one
 * decoded, validated, immutably shared `wasm::Module` per distinct
 * byte string, plus the lazily built per-hook-set static facts
 * (`core::StaticInfo`) intrinsic-mode requests need. A second request
 * for the same bytes skips decode, validation, and static-info
 * construction entirely — pinned by the hit/miss counters surfaced in
 * the serve metrics.
 *
 * Keying is by content (FNV-1a over the raw bytes), not by path: two
 * tenants uploading the same module share one entry, and a file
 * changing under a stable path misses cleanly. Entries are retained
 * for the daemon's lifetime (modules are small relative to the
 * translation state they unlock; an eviction policy can be added
 * without changing the interface).
 */

#ifndef WASABI_SERVE_MODULE_CACHE_H
#define WASABI_SERVE_MODULE_CACHE_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/hook_kind.h"
#include "core/static_info.h"
#include "wasm/module.h"

namespace wasabi::serve {

/** FNV-1a over @p bytes — the cache key. */
uint64_t contentHash(const std::vector<uint8_t> &bytes);

/**
 * One cached module: the shared immutable AST plus its per-hook-set
 * static facts. Thread-safe; handed out as a shared_ptr so in-flight
 * requests keep their entry alive independent of the cache.
 */
class CachedModule {
  public:
    CachedModule(uint64_t hash, std::shared_ptr<const wasm::Module> module)
        : hash_(hash), module_(std::move(module))
    {
    }

    uint64_t hash() const { return hash_; }

    const std::shared_ptr<const wasm::Module> &module() const
    {
        return module_;
    }

    /**
     * Static facts for an intrinsic-mode run with @p kinds: built on
     * first use, shared by every later request with the same hook set
     * (analyses with equal hook requirements — e.g. repeated `run
     * --analysis=mix` — hit this cache even across tenants).
     */
    std::shared_ptr<const core::StaticInfo> intrinsicInfo(core::HookSet kinds);

    /** Distinct hook sets whose static facts have been built. */
    size_t infoCount() const;

  private:
    const uint64_t hash_;
    const std::shared_ptr<const wasm::Module> module_;

    mutable std::mutex mutex_;
    /** Linear by HookSet equality — the live set is tiny (one entry
     * per distinct analysis hook requirement). */
    std::vector<std::pair<core::HookSet,
                          std::shared_ptr<const core::StaticInfo>>>
        infos_;
};

/** Content-hash cache of decoded + validated modules. Thread-safe. */
class ModuleCache {
  public:
    /**
     * Entry for @p bytes: decoded (binary or WAT, with the same
     * precise truncation diagnostics as the CLI), validated, and
     * name-section-applied on miss; returned as-is on hit. @p origin
     * labels diagnostics (a path or "<request>"). @p hit, when
     * non-null, reports whether the entry was served from cache.
     * @throws support::IoError ("io.module") on undecodable or
     * invalid bytes.
     */
    std::shared_ptr<CachedModule> acquire(const std::vector<uint8_t> &bytes,
                                          const std::string &origin,
                                          bool *hit = nullptr);

    uint64_t hits() const { return hits_.load(); }
    uint64_t misses() const { return misses_.load(); }
    size_t size() const;

  private:
    mutable std::mutex mutex_;
    std::unordered_map<uint64_t, std::shared_ptr<CachedModule>> entries_;
    std::atomic<uint64_t> hits_{0};
    std::atomic<uint64_t> misses_{0};
};

} // namespace wasabi::serve

#endif // WASABI_SERVE_MODULE_CACHE_H
