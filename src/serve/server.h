/**
 * @file
 * The serve daemon's request handler (DESIGN.md §14): one Server
 * instance owns the content-hash ModuleCache, the warmed
 * InstancePool, and per-endpoint metrics, and turns one request line
 * into one response line. Transport-independent — the Unix-socket
 * loop, the `--request` driver, tests, and benches all call the same
 * handle().
 *
 * Failure isolation: handle() never throws and never terminates the
 * process. Malformed requests, unloadable modules, guest traps, and
 * quota trips each map to a structured error response
 * (serve.bad-request / serve.module-error / serve.trap /
 * serve.quota-exceeded / serve.io-error / serve.internal); the daemon
 * and its caches stay up, and a leased instance is always restored
 * and re-parked (or, on unexpected errors, discarded — never pooled
 * dirty).
 *
 * Concurrency: handle() is safe to call from many threads at once.
 * The cache and pool synchronize internally; guest execution runs on
 * an exclusively leased instance with a per-request runtime, so no
 * guest-visible state is shared across in-flight requests.
 */

#ifndef WASABI_SERVE_SERVER_H
#define WASABI_SERVE_SERVER_H

#include <array>
#include <atomic>
#include <string>

#include "serve/instance_pool.h"
#include "serve/module_cache.h"
#include "serve/protocol.h"

namespace wasabi::serve {

class Server {
  public:
    /** One handled request. */
    struct Handled {
        std::string response; ///< one JSON line (no trailing newline)
        std::string op;       ///< parsed op; empty if unparsable
        bool shutdown = false; ///< the client asked the loop to stop
    };

    /** Handle one request line. Never throws. */
    Handled handle(const std::string &line);

    /**
     * The serve metrics as a "wasabi-profile" v1 JSON document
     * (deterministic timings, optional "serve" section with cache /
     * pool / translation / quota counters and per-endpoint request
     * totals). Validates against obs::validateProfileJson.
     */
    std::string metricsJson() const;

    ModuleCache &cache() { return cache_; }
    InstancePool &pool() { return pool_; }

    /** Function-body translations performed by request execution so
     * far (sum of per-instance deltas): the warm-request pin — a
     * pooled re-run of a cached module must not move it. */
    uint64_t translations() const { return translations_.load(); }

    /** Requests denied (fuel or memory) by a per-request quota. */
    uint64_t quotaTrips() const { return quotaTrips_.load(); }

  private:
    struct EndpointStats {
        std::atomic<uint64_t> requests{0};
        std::atomic<uint64_t> errors{0};
    };

    /** Fixed endpoint order keeps the metrics document deterministic. */
    static constexpr std::array<const char *, 6> kEndpoints = {
        "run", "profile", "instrument", "analyze", "metrics", "shutdown"};

    EndpointStats *statsFor(const std::string &op);

    std::string opRun(const Request &r, bool with_profile);
    std::string opInstrument(const Request &r);
    std::string opAnalyze(const Request &r);
    std::string opMetrics(const Request &r);

    ModuleCache cache_;
    InstancePool pool_;
    std::array<EndpointStats, kEndpoints.size()> stats_{};
    std::atomic<uint64_t> translations_{0};
    std::atomic<uint64_t> quotaTrips_{0};
    std::atomic<uint64_t> badRequests_{0};
};

} // namespace wasabi::serve

#endif // WASABI_SERVE_SERVER_H
