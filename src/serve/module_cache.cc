#include "serve/module_cache.h"

#include "core/intrinsic_info.h"
#include "support/module_io.h"
#include "wasm/validator.h"

namespace wasabi::serve {

uint64_t
contentHash(const std::vector<uint8_t> &bytes)
{
    uint64_t h = 0xcbf29ce484222325ull;
    for (uint8_t b : bytes) {
        h ^= b;
        h *= 0x100000001b3ull;
    }
    return h;
}

std::shared_ptr<const core::StaticInfo>
CachedModule::intrinsicInfo(core::HookSet kinds)
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &[set, info] : infos_) {
        if (set == kinds)
            return info;
    }
    std::shared_ptr<const core::StaticInfo> info =
        core::buildIntrinsicInfo(*module_, kinds);
    infos_.emplace_back(kinds, info);
    return info;
}

size_t
CachedModule::infoCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return infos_.size();
}

std::shared_ptr<CachedModule>
ModuleCache::acquire(const std::vector<uint8_t> &bytes,
                     const std::string &origin, bool *hit)
{
    uint64_t hash = contentHash(bytes);
    if (hit)
        *hit = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = entries_.find(hash);
        if (it != entries_.end()) {
            ++hits_;
            if (hit)
                *hit = true;
            return it->second;
        }
    }
    // Decode + validate outside the lock: a slow module upload must
    // not stall unrelated tenants' cache hits. A racing identical
    // request may decode twice; the second insert loses gracefully.
    wasm::Module m;
    try {
        m = support::loadModuleFromBytes(bytes, origin);
    } catch (const support::IoError &) {
        throw;
    } catch (const std::exception &e) {
        // Decode/WAT-parse failures become the same structured module
        // error family as truncation diagnostics.
        throw support::IoError("io.module", origin, e.what());
    }
    if (auto err = wasm::validationError(m))
        throw support::IoError("io.module", origin,
                               "invalid module: " + *err);
    auto entry = std::make_shared<CachedModule>(
        hash, std::make_shared<const wasm::Module>(std::move(m)));
    std::lock_guard<std::mutex> lock(mutex_);
    auto [it, inserted] = entries_.emplace(hash, entry);
    if (!inserted) {
        ++hits_; // the racing decoder won; share its entry
        if (hit)
            *hit = true;
        return it->second;
    }
    ++misses_;
    return entry;
}

size_t
ModuleCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

} // namespace wasabi::serve
