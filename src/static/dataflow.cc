#include "static/dataflow.h"

#include <bit>

namespace wasabi::static_analysis {

BitSet::BitSet(uint32_t size, bool all_ones)
    : size_(size), words_((size + 63) / 64, all_ones ? ~0ull : 0ull)
{
    // Clear the unused high bits so operator== stays exact.
    if (all_ones && (size & 63) != 0)
        words_.back() = (1ull << (size & 63)) - 1;
}

bool
BitSet::intersectWith(const BitSet &other)
{
    bool changed = false;
    for (size_t w = 0; w < words_.size(); ++w) {
        uint64_t next = words_[w] & other.words_[w];
        changed |= next != words_[w];
        words_[w] = next;
    }
    return changed;
}

bool
BitSet::unionWith(const BitSet &other)
{
    bool changed = false;
    for (size_t w = 0; w < words_.size(); ++w) {
        uint64_t next = words_[w] | other.words_[w];
        changed |= next != words_[w];
        words_[w] = next;
    }
    return changed;
}

uint32_t
BitSet::count() const
{
    uint32_t n = 0;
    for (uint64_t w : words_)
        n += static_cast<uint32_t>(std::popcount(w));
    return n;
}

namespace {

/** Reachability: value true = "block can execute". */
struct ReachabilityProblem {
    using Value = bool;
    Value boundary() { return true; }
    Value initial() { return false; }
    Value
    transfer(const Cfg &, uint32_t, const Value &in)
    {
        return in;
    }
    bool
    merge(Value &into, const Value &from)
    {
        if (!into && from) {
            into = true;
            return true;
        }
        return false;
    }
};

/** Dominators: in[b] = blocks dominating all paths to b's entry. */
struct DominatorProblem {
    uint32_t numBlocks;
    using Value = BitSet;
    Value boundary() { return BitSet(numBlocks, false); }
    Value initial() { return BitSet(numBlocks, true); }
    Value
    transfer(const Cfg &, uint32_t block, const Value &in)
    {
        Value out = in;
        out.set(block);
        return out;
    }
    bool
    merge(Value &into, const Value &from)
    {
        return into.intersectWith(from);
    }
};

} // namespace

std::vector<bool>
reachableBlocks(const Cfg &cfg)
{
    ReachabilityProblem p;
    return solveForward(cfg, p);
}

std::vector<BitSet>
dominatorSets(const Cfg &cfg)
{
    DominatorProblem p{cfg.numBlocks()};
    // solveForward returns in-values; a block's dominator set is its
    // out-value (the block always dominates itself).
    std::vector<BitSet> doms = solveForward(cfg, p);
    for (uint32_t b = 0; b < cfg.numBlocks(); ++b)
        doms[b].set(b);
    return doms;
}

std::vector<uint32_t>
immediateDominators(const Cfg &cfg)
{
    std::vector<BitSet> doms = dominatorSets(cfg);
    std::vector<bool> reach = reachableBlocks(cfg);
    std::vector<uint32_t> idom(cfg.numBlocks(), kNoIdom);
    for (uint32_t b = 0; b < cfg.numBlocks(); ++b) {
        if (!reach[b] || b == cfg.entry())
            continue;
        // The immediate dominator is the strict dominator with the
        // largest dominator set of its own.
        uint32_t best = kNoIdom;
        uint32_t best_count = 0;
        for (uint32_t d = 0; d < cfg.numBlocks(); ++d) {
            if (d == b || !doms[b].test(d))
                continue;
            uint32_t c = doms[d].count();
            if (best == kNoIdom || c > best_count) {
                best = d;
                best_count = c;
            }
        }
        idom[b] = best;
    }
    return idom;
}

std::vector<std::pair<uint32_t, uint32_t>>
backEdges(const Cfg &cfg)
{
    std::vector<BitSet> doms = dominatorSets(cfg);
    std::vector<bool> reach = reachableBlocks(cfg);
    std::vector<std::pair<uint32_t, uint32_t>> edges;
    for (uint32_t b = 0; b < cfg.numBlocks(); ++b) {
        if (!reach[b])
            continue;
        for (uint32_t s : cfg.blocks()[b].succs) {
            if (doms[b].test(s))
                edges.push_back({b, s});
        }
    }
    return edges;
}

} // namespace wasabi::static_analysis
