#include "static/passes/constprop.h"

#include <optional>
#include <vector>

#include "core/static_info.h"
#include "static/dataflow.h"

namespace wasabi::static_analysis::passes {

using wasm::Instr;
using wasm::Module;
using wasm::OpClass;
using wasm::Opcode;
using wasm::ValType;

namespace {

/** One abstract value: a known i32 constant or unknown (⊤). Values of
 * other types are always unknown; that is sound, just imprecise. */
using AbsConst = std::optional<uint32_t>;

/** Fold an i32-producing unary op over a known input. */
AbsConst
foldUnary(Opcode op, uint32_t a)
{
    switch (op) {
      case Opcode::I32Eqz:
        return a == 0 ? 1u : 0u;
      case Opcode::I32Clz: {
        uint32_t n = 0;
        for (uint32_t bit = 31;; --bit) {
            if (a & (1u << bit))
                break;
            ++n;
            if (bit == 0)
                break;
        }
        return n;
      }
      case Opcode::I32Ctz: {
        uint32_t n = 0;
        for (uint32_t bit = 0; bit < 32 && !(a & (1u << bit)); ++bit)
            ++n;
        return n;
      }
      case Opcode::I32Popcnt: {
        uint32_t n = 0;
        for (uint32_t bit = 0; bit < 32; ++bit)
            n += (a >> bit) & 1;
        return n;
      }
      default:
        return std::nullopt;
    }
}

/** Fold an i32-producing binary op over known inputs. Trapping inputs
 * (division by zero, INT_MIN / -1) stay unknown — the instruction
 * never completes, so no constant reaches the branch anyway. */
AbsConst
foldBinary(Opcode op, uint32_t a, uint32_t b)
{
    const int32_t sa = static_cast<int32_t>(a);
    const int32_t sb = static_cast<int32_t>(b);
    const int64_t wa = sa, wb = sb;
    switch (op) {
      case Opcode::I32Add:
        return a + b;
      case Opcode::I32Sub:
        return a - b;
      case Opcode::I32Mul:
        return a * b;
      case Opcode::I32DivS:
        if (b == 0 || (a == 0x80000000u && b == 0xFFFFFFFFu))
            return std::nullopt;
        return static_cast<uint32_t>(wa / wb);
      case Opcode::I32DivU:
        return b == 0 ? AbsConst{} : AbsConst{a / b};
      case Opcode::I32RemS:
        if (b == 0)
            return std::nullopt;
        if (a == 0x80000000u && b == 0xFFFFFFFFu)
            return 0u;
        return static_cast<uint32_t>(wa % wb);
      case Opcode::I32RemU:
        return b == 0 ? AbsConst{} : AbsConst{a % b};
      case Opcode::I32And:
        return a & b;
      case Opcode::I32Or:
        return a | b;
      case Opcode::I32Xor:
        return a ^ b;
      case Opcode::I32Shl:
        return a << (b & 31);
      case Opcode::I32ShrS:
        return static_cast<uint32_t>(sa >> (b & 31));
      case Opcode::I32ShrU:
        return a >> (b & 31);
      case Opcode::I32Rotl:
        return (b & 31) == 0 ? a
                             : (a << (b & 31)) | (a >> (32 - (b & 31)));
      case Opcode::I32Rotr:
        return (b & 31) == 0 ? a
                             : (a >> (b & 31)) | (a << (32 - (b & 31)));
      case Opcode::I32Eq:
        return a == b ? 1u : 0u;
      case Opcode::I32Ne:
        return a != b ? 1u : 0u;
      case Opcode::I32LtS:
        return sa < sb ? 1u : 0u;
      case Opcode::I32LtU:
        return a < b ? 1u : 0u;
      case Opcode::I32GtS:
        return sa > sb ? 1u : 0u;
      case Opcode::I32GtU:
        return a > b ? 1u : 0u;
      case Opcode::I32LeS:
        return sa <= sb ? 1u : 0u;
      case Opcode::I32LeU:
        return a <= b ? 1u : 0u;
      case Opcode::I32GeS:
        return sa >= sb ? 1u : 0u;
      case Opcode::I32GeU:
        return a >= b ? 1u : 0u;
      default:
        return std::nullopt;
    }
}

/** Records constant branch controls during a block simulation. */
struct FactSink {
    uint32_t funcIdx = 0;
    ConstFacts *facts = nullptr;

    void
    record(OpClass cls, uint32_t i, const AbsConst &v) const
    {
        if (!facts || !v)
            return;
        uint64_t key = core::packLoc({funcIdx, i});
        if (cls == OpClass::BrIf)
            facts->brIfCond[key] = *v;
        else if (cls == OpClass::If)
            facts->ifCond[key] = *v;
        else if (cls == OpClass::BrTable)
            facts->brTableIndex[key] = *v;
        else if (cls == OpClass::CallIndirect)
            facts->callIndirectIndex[key] = *v;
    }
};

/** The dataflow lattice element: reached flag (⊥ when false) plus one
 * abstract constant per local. */
struct LocalsValue {
    bool reached = false;
    std::vector<AbsConst> locals;
};

class ConstPropProblem {
  public:
    using Value = LocalsValue;

    ConstPropProblem(const Module &m, uint32_t func_idx)
        : m_(m), funcIdx_(func_idx),
          body_(m.functions.at(func_idx).body)
    {
        const std::vector<ValType> &params =
            m.funcType(func_idx).params;
        localTypes_ = params;
        const std::vector<ValType> &locals =
            m.functions.at(func_idx).locals;
        localTypes_.insert(localTypes_.end(), locals.begin(),
                           locals.end());
        numParams_ = static_cast<uint32_t>(params.size());
    }

    Value
    boundary() const
    {
        Value v;
        v.reached = true;
        v.locals.resize(localTypes_.size());
        // Parameters are unknown; declared locals are zero-initialized
        // by the Wasm semantics (tracked for i32 only).
        for (size_t k = numParams_; k < localTypes_.size(); ++k) {
            if (localTypes_[k] == ValType::I32)
                v.locals[k] = 0;
        }
        return v;
    }

    Value initial() const { return Value{}; }

    bool
    merge(Value &into, const Value &from) const
    {
        if (!from.reached)
            return false;
        if (!into.reached) {
            into = from;
            return true;
        }
        bool changed = false;
        for (size_t k = 0; k < into.locals.size(); ++k) {
            if (into.locals[k] &&
                (!from.locals[k] ||
                 *from.locals[k] != *into.locals[k])) {
                into.locals[k] = std::nullopt;
                changed = true;
            }
        }
        return changed;
    }

    Value
    transfer(const Cfg &cfg, uint32_t b, const Value &in) const
    {
        if (!in.reached)
            return in;
        Value out = in;
        simulate(cfg.blocks()[b], out.locals, nullptr);
        return out;
    }

    /**
     * Symbolically execute one basic block over @p locals, tracking a
     * block-local operand stack. Values flowing in on the operand
     * stack from outside the block are unknown (pop on empty yields
     * ⊤), as is anything crossing a structural boundary — sound and
     * cheap, and enough for the `const; br_if` / folded-expression
     * shapes real producers emit.
     */
    void
    simulate(const BasicBlock &blk, std::vector<AbsConst> &locals,
             const FactSink *sink) const
    {
        if (blk.empty())
            return;
        std::vector<AbsConst> stack;
        auto pop = [&stack]() -> AbsConst {
            if (stack.empty())
                return std::nullopt;
            AbsConst v = stack.back();
            stack.pop_back();
            return v;
        };
        auto popN = [&pop](size_t n) {
            for (size_t k = 0; k < n; ++k)
                pop();
        };
        auto pushUnknown = [&stack](size_t n) {
            stack.insert(stack.end(), n, std::nullopt);
        };

        for (uint32_t i = blk.first; i <= blk.last; ++i) {
            const Instr &in = body_[i];
            const wasm::OpInfo &info = wasm::opInfo(in.op);
            switch (info.cls) {
              case OpClass::Const:
                if (in.op == Opcode::I32Const)
                    stack.push_back(in.imm.i32v);
                else
                    pushUnknown(1);
                break;
              case OpClass::LocalGet:
                stack.push_back(localTypes_[in.imm.idx] == ValType::I32
                                    ? locals[in.imm.idx]
                                    : std::nullopt);
                break;
              case OpClass::LocalSet: {
                AbsConst v = pop();
                locals[in.imm.idx] =
                    localTypes_[in.imm.idx] == ValType::I32
                        ? v
                        : AbsConst{};
                break;
              }
              case OpClass::LocalTee:
                if (localTypes_[in.imm.idx] == ValType::I32 &&
                    !stack.empty())
                    locals[in.imm.idx] = stack.back();
                else
                    locals[in.imm.idx] = std::nullopt;
                break;
              case OpClass::GlobalGet:
                stack.push_back(
                    immutableI32GlobalInit(m_, in.imm.idx));
                break;
              case OpClass::GlobalSet:
                pop();
                break;
              case OpClass::Unary: {
                AbsConst v = pop();
                stack.push_back(v ? foldUnary(in.op, *v)
                                  : std::nullopt);
                break;
              }
              case OpClass::Binary: {
                AbsConst b2 = pop();
                AbsConst a = pop();
                stack.push_back(a && b2 ? foldBinary(in.op, *a, *b2)
                                        : std::nullopt);
                break;
              }
              case OpClass::Drop:
                pop();
                break;
              case OpClass::Select: {
                AbsConst c = pop();
                AbsConst onFalse = pop();
                AbsConst onTrue = pop();
                stack.push_back(c ? (*c ? onTrue : onFalse)
                                  : std::nullopt);
                break;
              }
              case OpClass::Load:
                pop();
                pushUnknown(1);
                break;
              case OpClass::Store:
                popN(2);
                break;
              case OpClass::MemorySize:
                pushUnknown(1);
                break;
              case OpClass::MemoryGrow:
                pop();
                pushUnknown(1);
                break;
              case OpClass::Call: {
                const wasm::FuncType &t = m_.funcType(in.imm.idx);
                popN(t.params.size());
                pushUnknown(t.results.size());
                break;
              }
              case OpClass::CallIndirect: {
                const wasm::FuncType &t = m_.types.at(in.imm.idx);
                AbsConst idx = pop(); // table index
                if (sink)
                    sink->record(OpClass::CallIndirect, i, idx);
                popN(t.params.size());
                pushUnknown(t.results.size());
                break;
              }
              case OpClass::Nop:
                break;
              case OpClass::If: {
                AbsConst c = pop();
                if (sink)
                    sink->record(OpClass::If, i, c);
                stack.clear();
                break;
              }
              case OpClass::BrIf: {
                AbsConst c = pop();
                if (sink)
                    sink->record(OpClass::BrIf, i, c);
                break;
              }
              case OpClass::BrTable: {
                AbsConst idx = pop();
                if (sink)
                    sink->record(OpClass::BrTable, i, idx);
                stack.clear();
                break;
              }
              default:
                // block/loop/else/end/br/return/unreachable: operand
                // values do not flow across structural boundaries in
                // this abstraction.
                stack.clear();
                break;
            }
        }
    }

  private:
    const Module &m_;
    uint32_t funcIdx_;
    const std::vector<Instr> &body_;
    std::vector<ValType> localTypes_;
    uint32_t numParams_ = 0;
};

} // namespace

ConstFacts
constantFacts(const Module &m, uint32_t func_idx)
{
    ConstFacts facts;
    const wasm::Function &func = m.functions.at(func_idx);
    if (func.imported() || func.body.empty())
        return facts;

    Cfg cfg(m, func_idx);
    ConstPropProblem problem(m, func_idx);
    std::vector<LocalsValue> in = solveForward(cfg, problem);

    FactSink sink{func_idx, &facts};
    for (uint32_t b = 0; b < cfg.numBlocks(); ++b) {
        if (!in[b].reached)
            continue; // unreachable: no facts (reported elsewhere)
        std::vector<AbsConst> locals = in[b].locals;
        problem.simulate(cfg.blocks()[b], locals, &sink);
    }
    return facts;
}

std::optional<uint32_t>
foldI32Unary(Opcode op, uint32_t a)
{
    return foldUnary(op, a);
}

std::optional<uint32_t>
foldI32Binary(Opcode op, uint32_t a, uint32_t b)
{
    return foldBinary(op, a, b);
}

std::optional<uint32_t>
immutableI32GlobalInit(const Module &m, uint32_t global_idx)
{
    if (global_idx >= m.globals.size())
        return std::nullopt;
    const wasm::Global &g = m.globals[global_idx];
    if (g.mut || g.imported() || g.type != ValType::I32)
        return std::nullopt;
    // Initializer is `i32.const v; end` (a global.get initializer
    // would reference an import, whose value is unknown here).
    if (g.init.size() != 2 || g.init[0].op != Opcode::I32Const ||
        g.init[1].op != Opcode::End)
        return std::nullopt;
    return g.init[0].imm.i32v;
}

} // namespace wasabi::static_analysis::passes
