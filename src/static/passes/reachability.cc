#include "static/passes/reachability.h"

#include "static/call_graph.h"
#include "static/dataflow.h"

namespace wasabi::static_analysis::passes {

ReachabilityFacts
reachabilityFacts(const wasm::Module &m)
{
    ReachabilityFacts facts;
    for (uint32_t f = 0; f < m.numFunctions(); ++f) {
        const wasm::Function &func = m.functions[f];
        if (func.imported() || func.body.empty())
            continue;
        Cfg cfg(m, f);
        std::vector<bool> reachable = reachableBlocks(cfg);
        for (uint32_t b = 0; b < cfg.numBlocks(); ++b) {
            const BasicBlock &blk = cfg.blocks()[b];
            if (reachable[b] || blk.empty())
                continue;
            // Merge adjacent unreachable blocks into maximal ranges.
            if (!facts.unreachableBlocks.empty()) {
                UnreachableRange &prev = facts.unreachableBlocks.back();
                if (prev.func == f && prev.last + 1 == blk.first) {
                    prev.last = blk.last;
                    continue;
                }
            }
            facts.unreachableBlocks.push_back(
                UnreachableRange{f, blk.first, blk.last});
        }
    }

    StaticCallGraph cg(m);
    for (uint32_t f : cg.deadFunctions()) {
        if (!m.functions[f].imported())
            facts.deadFunctions.push_back(f);
    }
    return facts;
}

} // namespace wasabi::static_analysis::passes
