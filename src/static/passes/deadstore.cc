#include "static/passes/deadstore.h"

#include "static/dataflow.h"

namespace wasabi::static_analysis::passes {

using wasm::Instr;
using wasm::OpClass;

namespace {

/** Backward liveness of locals: gen at local.get, kill at
 * local.set/tee. local.tee reads the operand stack, not the local, so
 * it kills without generating. */
class LivenessProblem {
  public:
    using Value = BitSet;

    LivenessProblem(const std::vector<Instr> &body, uint32_t num_locals)
        : body_(body), numLocals_(num_locals)
    {
    }

    Value boundary() const { return BitSet(numLocals_); }
    Value initial() const { return BitSet(numLocals_); }

    bool
    merge(Value &into, const Value &from) const
    {
        return into.unionWith(from);
    }

    Value
    transfer(const Cfg &cfg, uint32_t b, const Value &out) const
    {
        BitSet live = out;
        const BasicBlock &blk = cfg.blocks()[b];
        if (blk.empty())
            return live;
        for (uint32_t i = blk.last + 1; i-- > blk.first;) {
            OpClass cls = wasm::opInfo(body_[i].op).cls;
            if (cls == OpClass::LocalGet)
                live.set(body_[i].imm.idx);
            else if (cls == OpClass::LocalSet ||
                     cls == OpClass::LocalTee)
                live.reset(body_[i].imm.idx);
        }
        return live;
    }

  private:
    const std::vector<Instr> &body_;
    uint32_t numLocals_;
};

} // namespace

std::vector<DeadStore>
deadStores(const wasm::Module &m, uint32_t func_idx)
{
    std::vector<DeadStore> found;
    const wasm::Function &func = m.functions.at(func_idx);
    if (func.imported() || func.body.empty())
        return found;

    const uint32_t num_locals = static_cast<uint32_t>(
        m.funcType(func_idx).params.size() + func.locals.size());
    Cfg cfg(m, func_idx);
    LivenessProblem problem(func.body, num_locals);
    std::vector<BitSet> out = solveBackward(cfg, problem);
    std::vector<bool> reachable = reachableBlocks(cfg);

    for (uint32_t b = 0; b < cfg.numBlocks(); ++b) {
        const BasicBlock &blk = cfg.blocks()[b];
        if (!reachable[b] || blk.empty())
            continue;
        BitSet live = out[b];
        for (uint32_t i = blk.last + 1; i-- > blk.first;) {
            const Instr &in = func.body[i];
            OpClass cls = wasm::opInfo(in.op).cls;
            if (cls == OpClass::LocalGet) {
                live.set(in.imm.idx);
            } else if (cls == OpClass::LocalSet ||
                       cls == OpClass::LocalTee) {
                if (cls == OpClass::LocalSet &&
                    !live.test(in.imm.idx)) {
                    found.push_back(
                        DeadStore{func_idx, i, in.imm.idx});
                }
                live.reset(in.imm.idx);
            }
        }
    }
    std::sort(found.begin(), found.end(),
              [](const DeadStore &a, const DeadStore &b) {
                  return a.instr < b.instr;
              });
    return found;
}

} // namespace wasabi::static_analysis::passes
