#include "static/passes/branch_refine.h"

#include <algorithm>

#include "core/control_stack.h"
#include "core/static_info.h"

namespace wasabi::static_analysis::passes {

using wasm::Instr;
using wasm::OpClass;

BranchRefinements
refineBranches(const wasm::Module &m, uint32_t func_idx,
               const ConstFacts &facts)
{
    BranchRefinements out;
    const wasm::Function &func = m.functions.at(func_idx);
    if (func.imported() || facts.empty())
        return out;

    // One forward walk with the abstract control stack resolves the
    // labels of every refined site (paper §2.4.4).
    core::AbstractState state(m, func_idx);
    for (uint32_t i = 0; i < func.body.size(); ++i) {
        const Instr &in = func.body[i];
        uint64_t key = core::packLoc({func_idx, i});
        OpClass cls = wasm::opInfo(in.op).cls;

        if (cls == OpClass::BrIf) {
            auto it = facts.brIfCond.find(key);
            if (it != facts.brIfCond.end())
                out.constConditions.push_back(
                    ConstCondition{func_idx, i, it->second, false});
        } else if (cls == OpClass::If) {
            auto it = facts.ifCond.find(key);
            if (it != facts.ifCond.end())
                out.constConditions.push_back(
                    ConstCondition{func_idx, i, it->second, true});
        } else if (cls == OpClass::BrTable) {
            auto it = facts.brTableIndex.find(key);
            if (it != facts.brTableIndex.end()) {
                uint32_t index = it->second;
                size_t sel = std::min<size_t>(index,
                                              in.table.size() - 1);
                ConstBrTable entry;
                entry.func = func_idx;
                entry.instr = i;
                entry.index = index;
                entry.label = in.table[sel];
                entry.target = state.resolveLabel(entry.label);
                entry.isDefault = sel + 1 == in.table.size();
                out.constBrTables.push_back(entry);
            }
        }
        state.apply(in, i);
    }
    return out;
}

} // namespace wasabi::static_analysis::passes
