/**
 * @file
 * The static pass pipeline driver behind `wasabi lint` and
 * `wasabi instrument --optimize-hooks`:
 *
 *  - lintModule() runs every pass (constant propagation,
 *    reachability, dead stores, branch refinement) and renders the
 *    facts as structured diagnostics with stable lint.* codes;
 *  - computePlan() turns the subset of facts that licenses hook
 *    optimizations into a core::HookOptimizationPlan for the
 *    instrumenter;
 *  - planToManifest()/planFromManifest() round-trip the plan through
 *    the JSON optimization manifest that `wasabi instrument
 *    --optimize-hooks` emits and `wasabi check --manifest=` consumes,
 *    so the completeness/exclusivity invariant stays verifiable on
 *    optimized output.
 */

#ifndef WASABI_STATIC_PASSES_PIPELINE_H
#define WASABI_STATIC_PASSES_PIPELINE_H

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/opt_plan.h"
#include "static/diagnostics.h"
#include "wasm/module.h"

namespace wasabi::static_analysis::passes {

/** Stable lint diagnostic codes. @{ */
inline constexpr const char *kLintUnreachableCode =
    "lint.unreachable.code";
inline constexpr const char *kLintDeadFunction =
    "lint.deadcode.function";
inline constexpr const char *kLintDeadStore = "lint.deadstore.local";
inline constexpr const char *kLintConstCondition =
    "lint.branch.const-condition";
inline constexpr const char *kLintConstIndex =
    "lint.branch.const-index";
inline constexpr const char *kLintEmptyBlock = "lint.block.empty";
/** Interprocedural codes (refined call graph + effect summaries). */
inline constexpr const char *kLintInterprocDeadFunction =
    "lint.interproc.dead-function";
inline constexpr const char *kLintInterprocNoTargets =
    "lint.interproc.no-targets";
inline constexpr const char *kLintInterprocUnresolvable =
    "lint.interproc.unresolvable-indirect";
inline constexpr const char *kLintInterprocEffectFree =
    "lint.interproc.effect-free-function";
inline constexpr const char *kLintInterprocConstReturn =
    "lint.interproc.const-return";
inline constexpr const char *kLintInterprocDeadParam =
    "lint.interproc.dead-param";
/** Value-range codes (interval abstract interpretation). */
inline constexpr const char *kLintRangeOob = "lint.range.oob-access";
inline constexpr const char *kLintRangeGrowDependent =
    "lint.range.grow-dependent-access";
inline constexpr const char *kLintRangeDivByZero =
    "lint.range.div-by-zero";
inline constexpr const char *kLintRangeDeadGuard =
    "lint.range.dead-guard";
/** @} */

/**
 * Run the full pass suite over a validated module and report every
 * finding. Findings are warnings/notes about the *original* program;
 * an empty result means the linter proved nothing suspicious.
 */
Diagnostics lintModule(const wasm::Module &m);

/**
 * Compute the hook-optimization plan for a validated module: skips
 * for CFG-unreachable sites (never at an `else`, whose begin hook
 * guards the — possibly live — else region), dead functions (under
 * the *refined* call graph, a superset of the whole-table
 * approximation), constant-index br_table narrowings, constant-index
 * call_indirect -> direct-call narrowings, and empty-block begin/end
 * elisions. Claims subsumed by a stronger one (sites inside dead
 * functions, elisions of skipped blocks) are omitted.
 */
core::HookOptimizationPlan computePlan(const wasm::Module &m);

/** (begin, end) instruction pairs of statically-empty blocks/loops of
 * defined function @p func_idx (end == begin + 1). */
std::vector<std::pair<uint32_t, uint32_t>>
emptyBlockPairs(const wasm::Module &m, uint32_t func_idx);

/** Serialize a plan as the JSON optimization manifest. */
std::string planToManifest(const core::HookOptimizationPlan &plan);

/**
 * Parse an optimization manifest. Returns std::nullopt and sets
 * @p error on malformed input; the *claims* themselves are verified
 * later by the checker, not here.
 */
std::optional<core::HookOptimizationPlan>
planFromManifest(const std::string &text, std::string *error);

} // namespace wasabi::static_analysis::passes

#endif // WASABI_STATIC_PASSES_PIPELINE_H
