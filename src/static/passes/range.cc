#include "static/passes/range.h"

#include <algorithm>
#include <cctype>
#include <condition_variable>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <thread>

#include "static/cfg.h"
#include "static/dataflow.h"
#include "static/interproc/refined_call_graph.h"
#include "static/interproc/scc.h"
#include "static/passes/constprop.h"

namespace wasabi::static_analysis::passes {

using wasm::Instr;
using wasm::Module;
using wasm::OpClass;
using wasm::Opcode;
using wasm::ValType;

namespace {

constexpr uint32_t kU32Max = 0xFFFFFFFFu;
constexpr uint32_t kI32Max = 0x7FFFFFFFu;
constexpr uint64_t kPageBytes = 65536;

/** 0 = default formula; see setRangeSolverBudgetForTest(). */
uint64_t g_solverBudgetOverride = 0;

Interval
meet(const Interval &a, const Interval &b, bool &feasible)
{
    Interval r{std::max(a.lo, b.lo), std::min(a.hi, b.hi)};
    if (r.lo > r.hi) {
        feasible = false;
        return Interval::top();
    }
    return r;
}

/** Smallest all-ones mask (2^k - 1) covering @p x. */
uint32_t
maskUp(uint32_t x)
{
    uint32_t m = 0;
    while (m < x)
        m = (m << 1) | 1u;
    return m;
}

bool
nonNegative(const Interval &a)
{
    return a.hi <= kI32Max;
}

// ----- interval transfer -------------------------------------------------

Interval
addIv(const Interval &a, const Interval &b)
{
    uint64_t lo = static_cast<uint64_t>(a.lo) + b.lo;
    uint64_t hi = static_cast<uint64_t>(a.hi) + b.hi;
    if (hi <= kU32Max)
        return Interval{static_cast<uint32_t>(lo),
                        static_cast<uint32_t>(hi)};
    if (lo > kU32Max) // both bounds wrap identically
        return Interval{static_cast<uint32_t>(lo - (1ull << 32)),
                        static_cast<uint32_t>(hi - (1ull << 32))};
    return Interval::top();
}

Interval
subIv(const Interval &a, const Interval &b)
{
    int64_t lo = static_cast<int64_t>(a.lo) - b.hi;
    int64_t hi = static_cast<int64_t>(a.hi) - b.lo;
    if (lo >= 0)
        return Interval{static_cast<uint32_t>(lo),
                        static_cast<uint32_t>(hi)};
    if (hi < 0) // both bounds wrap identically
        return Interval{static_cast<uint32_t>(lo + (1ll << 32)),
                        static_cast<uint32_t>(hi + (1ll << 32))};
    return Interval::top();
}

Interval
mulIv(const Interval &a, const Interval &b)
{
    uint64_t hi = static_cast<uint64_t>(a.hi) * b.hi;
    if (hi <= kU32Max)
        return Interval{a.lo * b.lo, static_cast<uint32_t>(hi)};
    return Interval::top();
}

/** Comparison result interval; decides always-true/always-false where
 * the operand intervals allow it. Signed forms decide only when both
 * operands are provably non-negative (signed order == unsigned). */
Interval
cmpIv(Opcode op, const Interval &a, const Interval &b)
{
    switch (op) {
      case Opcode::I32LtS:
      case Opcode::I32GtS:
      case Opcode::I32LeS:
      case Opcode::I32GeS:
        if (!nonNegative(a) || !nonNegative(b))
            return Interval{0, 1};
        break;
      default:
        break;
    }
    switch (op) {
      case Opcode::I32Eq:
        if (a.isConst() && b.isConst())
            return Interval::exact(a.lo == b.lo ? 1 : 0);
        if (a.hi < b.lo || b.hi < a.lo)
            return Interval::exact(0);
        return Interval{0, 1};
      case Opcode::I32Ne:
        if (a.isConst() && b.isConst())
            return Interval::exact(a.lo != b.lo ? 1 : 0);
        if (a.hi < b.lo || b.hi < a.lo)
            return Interval::exact(1);
        return Interval{0, 1};
      case Opcode::I32LtU:
      case Opcode::I32LtS:
        if (a.hi < b.lo)
            return Interval::exact(1);
        if (a.lo >= b.hi)
            return Interval::exact(0);
        return Interval{0, 1};
      case Opcode::I32GtU:
      case Opcode::I32GtS:
        return cmpIv(Opcode::I32LtU, b, a);
      case Opcode::I32LeU:
      case Opcode::I32LeS:
        if (a.hi <= b.lo)
            return Interval::exact(1);
        if (a.lo > b.hi)
            return Interval::exact(0);
        return Interval{0, 1};
      case Opcode::I32GeU:
      case Opcode::I32GeS:
        return cmpIv(Opcode::I32LeU, b, a);
      default:
        return Interval{0, 1};
    }
}

// ----- branch-condition refinement ---------------------------------------

/** Constrain a < b (unsigned). Returns false if infeasible. */
bool
enforceLt(Interval &a, Interval &b)
{
    if (b.hi == 0 || a.lo == kU32Max)
        return false;
    a.hi = std::min(a.hi, b.hi - 1);
    b.lo = std::max(b.lo, a.lo + 1);
    return a.lo <= a.hi && b.lo <= b.hi;
}

/** Constrain a <= b (unsigned). */
bool
enforceLe(Interval &a, Interval &b)
{
    a.hi = std::min(a.hi, b.hi);
    b.lo = std::max(b.lo, a.lo);
    return a.lo <= a.hi && b.lo <= b.hi;
}

bool
enforceEq(Interval &a, Interval &b)
{
    bool feasible = true;
    Interval r = meet(a, b, feasible);
    a = b = r;
    return feasible;
}

/** Constrain a != b: only trims when one side is a constant equal to
 * the other's bound (intervals cannot encode interior holes). */
bool
enforceNe(Interval &a, Interval &b)
{
    auto trim = [](Interval &x, const Interval &c) {
        if (!c.isConst())
            return true;
        if (x.isConst())
            return x.lo != c.lo;
        if (x.lo == c.lo)
            ++x.lo;
        else if (x.hi == c.lo)
            --x.hi;
        return true;
    };
    return trim(a, b) && trim(b, a);
}

/**
 * Constrain (a OP b) == taken, narrowing both intervals in place.
 * Signed comparisons refine only when both operands are provably
 * non-negative. Returns false when the edge is infeasible.
 */
bool
refineCmp(Opcode op, bool taken, Interval &a, Interval &b)
{
    switch (op) {
      case Opcode::I32LtS:
      case Opcode::I32GtS:
      case Opcode::I32LeS:
      case Opcode::I32GeS:
        if (!nonNegative(a) || !nonNegative(b))
            return true;
        break;
      default:
        break;
    }
    switch (op) {
      case Opcode::I32LtU:
      case Opcode::I32LtS:
        return taken ? enforceLt(a, b) : enforceLe(b, a);
      case Opcode::I32LeU:
      case Opcode::I32LeS:
        return taken ? enforceLe(a, b) : enforceLt(b, a);
      case Opcode::I32GtU:
      case Opcode::I32GtS:
        return taken ? enforceLt(b, a) : enforceLe(a, b);
      case Opcode::I32GeU:
      case Opcode::I32GeS:
        return taken ? enforceLe(b, a) : enforceLt(a, b);
      case Opcode::I32Eq:
        return taken ? enforceEq(a, b) : enforceNe(a, b);
      case Opcode::I32Ne:
        return taken ? enforceNe(a, b) : enforceEq(a, b);
      default:
        return true;
    }
}

/** The comparison testing the complement outcome, e.g. lt_u <-> ge_u.
 * Nop means "not invertible". */
Opcode
negateCmp(Opcode op)
{
    switch (op) {
      case Opcode::I32Eq:
        return Opcode::I32Ne;
      case Opcode::I32Ne:
        return Opcode::I32Eq;
      case Opcode::I32LtU:
        return Opcode::I32GeU;
      case Opcode::I32GeU:
        return Opcode::I32LtU;
      case Opcode::I32LeU:
        return Opcode::I32GtU;
      case Opcode::I32GtU:
        return Opcode::I32LeU;
      case Opcode::I32LtS:
        return Opcode::I32GeS;
      case Opcode::I32GeS:
        return Opcode::I32LtS;
      case Opcode::I32LeS:
        return Opcode::I32GtS;
      case Opcode::I32GtS:
        return Opcode::I32LeS;
      default:
        return Opcode::Nop;
    }
}

bool
isI32Comparison(Opcode op)
{
    return negateCmp(op) != Opcode::Nop;
}

// ----- per-function analysis ---------------------------------------------

/**
 * A branch predicate: "lhs CMP rhs" held when the condition was
 * computed. A side refines a local only if that local was not
 * reassigned between the compare and the branch (generation check).
 */
struct Pred {
    Opcode cmp = Opcode::Nop;
    int lhsLocal = -1;
    int rhsLocal = -1;
    uint32_t lhsGen = 0;
    uint32_t rhsGen = 0;
    Interval lhs;
    Interval rhs;
};

/** One symbolic operand-stack slot: interval plus the provenance
 * needed for edge refinement (which pristine local it reads, which
 * comparison produced it). */
struct StackVal {
    Interval iv;
    int src = -1;     ///< local index the value was read from
    uint32_t gen = 0; ///< that local's generation at read time
    int predId = -1;  ///< index into the block's predicate pool
};

/** Result of simulating one basic block. */
struct BlockOut {
    std::vector<Interval> locals;
    std::vector<uint32_t> gens;
    bool hasCond = false; ///< block ends in br_if/if with a condition
    Interval cond;
    std::optional<Pred> condPred;
};

/** Observer for the fact-collection pass (null while solving). */
struct RangeSink {
    FunctionRanges *fr = nullptr;
    /** Direct-call argument intervals (callee, per-param interval). */
    std::map<uint32_t, std::vector<Interval>> *callArgs = nullptr;
    /** Hull of values live at normal exits (single-i32-result
     * functions only); null when return flow is not wanted. */
    Interval *ret = nullptr;
    bool *retSeen = nullptr;
};

class FunctionRangeAnalyzer {
  public:
    FunctionRangeAnalyzer(
        const Module &m, uint32_t func_idx, std::vector<Interval> args,
        const std::vector<std::optional<Interval>> *callee_rets =
            nullptr)
        : m_(m), funcIdx_(func_idx),
          body_(m.functions.at(func_idx).body), cfg_(m, func_idx),
          args_(std::move(args)), calleeRets_(callee_rets)
    {
        const wasm::FuncType &type = m.funcType(func_idx);
        const std::vector<ValType> &params = type.params;
        localTypes_ = params;
        const std::vector<ValType> &locals =
            m.functions.at(func_idx).locals;
        localTypes_.insert(localTypes_.end(), locals.begin(),
                           locals.end());
        numParams_ = static_cast<uint32_t>(params.size());
        resultIsI32_ = type.results.size() == 1 &&
                       type.results[0] == ValType::I32;
        // Control nesting depth before each instruction: a branch
        // whose label equals the depth at its site exits the function.
        depthAt_.resize(body_.size(), 0);
        uint32_t depth = 0;
        for (uint32_t i = 0; i < body_.size(); ++i) {
            const OpClass cls = wasm::opInfo(body_[i].op).cls;
            if (cls == OpClass::End && depth > 0)
                --depth;
            depthAt_[i] = depth;
            if (cls == OpClass::Block || cls == OpClass::Loop ||
                cls == OpClass::If)
                ++depth;
        }
        collectThresholds();
        for (auto [tail, head] : backEdges(cfg_)) {
            (void)tail;
            loopHeads_.insert(head);
        }
    }

    /** Solve to a fixpoint; false if the iteration cap was hit (the
     * caller must discard all facts for this function). */
    bool
    solve()
    {
        const uint32_t n = cfg_.numBlocks();
        in_.assign(n, {});
        reached_.assign(n, false);
        in_[cfg_.entry()] = boundary();
        reached_[cfg_.entry()] = true;

        std::vector<uint32_t> rpoPos(n, 0);
        std::vector<uint32_t> order = cfg_.reversePostOrder();
        for (uint32_t i = 0; i < order.size(); ++i)
            rpoPos[order[i]] = i;

        // Worklist keyed by RPO position: deterministic and converges
        // in few passes on the reducible CFGs structured Wasm yields.
        std::set<std::pair<uint32_t, uint32_t>> work;
        work.insert({rpoPos[cfg_.entry()], cfg_.entry()});

        // Threshold widening bounds head-block changes; the cap is a
        // pure backstop (facts are discarded if it ever fires).
        uint64_t budget = g_solverBudgetOverride != 0
                              ? g_solverBudgetOverride
                              : 64ull * n + 4096;
        while (!work.empty()) {
            if (budget-- == 0)
                return false;
            uint32_t b = work.begin()->second;
            work.erase(work.begin());
            propagate(b, [&](uint32_t s) {
                work.insert({rpoPos[s], s});
            });
        }
        return true;
    }

    /** Re-simulate every reached block, recording facts. */
    void
    collect(const RangeSink &sink)
    {
        for (uint32_t b = 0; b < cfg_.numBlocks(); ++b) {
            if (!reached_[b])
                continue;
            simulate(b, in_[b], &sink);
        }
        if (sink.fr) {
            sink.fr->blockIn.resize(cfg_.numBlocks());
            sink.fr->blockReached.assign(reached_.begin(),
                                         reached_.end());
            for (uint32_t b = 0; b < cfg_.numBlocks(); ++b) {
                if (reached_[b])
                    sink.fr->blockIn[b] = in_[b];
            }
        }
    }

  private:
    std::vector<Interval>
    boundary() const
    {
        std::vector<Interval> v(localTypes_.size(), Interval::top());
        for (uint32_t k = 0; k < numParams_; ++k) {
            if (localTypes_[k] == ValType::I32 && k < args_.size())
                v[k] = args_[k];
        }
        // Declared locals are zero-initialized by Wasm semantics.
        for (size_t k = numParams_; k < localTypes_.size(); ++k) {
            if (localTypes_[k] == ValType::I32)
                v[k] = Interval::exact(0);
        }
        return v;
    }

    /** Widening thresholds: every i32 constant in the body (loop
     * bounds, array extents) plus 0 / INT32_MAX / UINT32_MAX. Joined
     * bounds at loop heads snap outward to the nearest threshold, so
     * the canonical counted loop converges in one widening step and
     * each head bound changes at most |thresholds| times. */
    void
    collectThresholds()
    {
        thresholds_ = {0, kI32Max, kU32Max};
        for (const Instr &ins : body_) {
            if (ins.op == Opcode::I32Const)
                thresholds_.push_back(ins.imm.i32v);
        }
        std::sort(thresholds_.begin(), thresholds_.end());
        thresholds_.erase(
            std::unique(thresholds_.begin(), thresholds_.end()),
            thresholds_.end());
        // A head bound changes at most |thresholds| times and every
        // change re-propagates a wave, so const-heavy bodies (e.g.
        // fully instrumented ones, where every hook call site carries
        // literal location arguments) must not inflate the set. Keep
        // the smallest constants: loop bounds and array extents are
        // small, and anything beyond the cap just widens faster.
        constexpr size_t kMaxThresholds = 64;
        if (thresholds_.size() > kMaxThresholds) {
            thresholds_.resize(kMaxThresholds - 2);
            thresholds_.push_back(kI32Max);
            thresholds_.push_back(kU32Max);
            // The kept prefix can already contain values above the
            // sentinels (i32 constants live as u32, so negative
            // constants sort large); thresholdUp/Down binary-search
            // this vector, which must stay sorted and unique.
            std::sort(thresholds_.begin(), thresholds_.end());
            thresholds_.erase(
                std::unique(thresholds_.begin(), thresholds_.end()),
                thresholds_.end());
        }
    }

    uint32_t
    thresholdUp(uint32_t x) const
    {
        auto it = std::lower_bound(thresholds_.begin(),
                                   thresholds_.end(), x);
        return it == thresholds_.end() ? kU32Max : *it;
    }

    uint32_t
    thresholdDown(uint32_t x) const
    {
        auto it = std::upper_bound(thresholds_.begin(),
                                   thresholds_.end(), x);
        return it == thresholds_.begin() ? 0 : *(it - 1);
    }

    /** Merge @p from into block @p s's in-state; widen at loop heads. */
    bool
    mergeInto(uint32_t s, const std::vector<Interval> &from)
    {
        if (!reached_[s]) {
            in_[s] = from;
            reached_[s] = true;
            return true;
        }
        const bool widen = loopHeads_.count(s) != 0;
        bool changed = false;
        std::vector<Interval> &into = in_[s];
        for (size_t k = 0; k < into.size(); ++k) {
            Interval j = hull(into[k], from[k]);
            if (j == into[k])
                continue;
            if (widen) {
                if (j.hi > into[k].hi)
                    j.hi = thresholdUp(j.hi);
                if (j.lo < into[k].lo)
                    j.lo = thresholdDown(j.lo);
            }
            into[k] = j;
            changed = true;
        }
        return changed;
    }

    /** Transfer block @p b and merge into its successors, applying
     * branch-condition refinement per edge. */
    template <typename Enqueue>
    void
    propagate(uint32_t b, const Enqueue &enqueue)
    {
        BlockOut out = simulate(b, in_[b], nullptr);
        const BasicBlock &blk = cfg_.blocks()[b];

        // Identify the fall-through successor of a two-way branch to
        // assign condition outcomes to edges (succs are sorted, so
        // positional identity is lost).
        uint32_t fallthrough = kU32Max;
        bool fallthroughIsTaken = false; // `if`: next instr = then-arm
        if (out.hasCond && blk.succs.size() == 2 && !blk.empty() &&
            blk.last + 1 < body_.size()) {
            fallthrough = cfg_.blockOf(blk.last + 1);
            fallthroughIsTaken = body_[blk.last].op == Opcode::If;
        }

        for (uint32_t s : blk.succs) {
            std::vector<Interval> locals = out.locals;
            if (out.condPred && fallthrough != kU32Max) {
                bool taken = (s == fallthrough) == fallthroughIsTaken;
                if (!applyPred(*out.condPred, taken, locals, out.gens))
                    continue; // provably infeasible edge
            }
            if (mergeInto(s, locals))
                enqueue(s);
        }
    }

    bool
    applyPred(const Pred &p, bool taken, std::vector<Interval> &locals,
              const std::vector<uint32_t> &gens) const
    {
        Interval a = p.lhs;
        Interval b = p.rhs;
        if (!refineCmp(p.cmp, taken, a, b))
            return false;
        bool feasible = true;
        if (p.lhsLocal >= 0 && gens[p.lhsLocal] == p.lhsGen)
            locals[p.lhsLocal] = meet(locals[p.lhsLocal], a, feasible);
        if (p.rhsLocal >= 0 && gens[p.rhsLocal] == p.rhsGen)
            locals[p.rhsLocal] = meet(locals[p.rhsLocal], b, feasible);
        return feasible;
    }

    /**
     * Symbolically execute block @p b. Within one basic block the
     * physical operand stack evolves exactly: block/loop/end are
     * runtime no-ops on values, so tracking them as no-ops keeps the
     * address chains real producers emit (const-fold into load) intact
     * across structural markers. Values entering on the stack from a
     * predecessor read as top (pop on empty).
     */
    BlockOut
    simulate(uint32_t b, const std::vector<Interval> &inLocals,
             const RangeSink *sink) const
    {
        BlockOut out;
        out.locals = inLocals;
        out.gens.assign(localTypes_.size(), 0);
        const BasicBlock &blk = cfg_.blocks()[b];
        if (blk.empty())
            return out;

        std::vector<StackVal> stack;
        std::vector<Pred> preds;
        // Comparison results spilled to a local and reloaded later in
        // the same block keep their predicate (instrumented code does
        // this around every hook call: cmp, local.set, call hook,
        // local.get, br_if). Keyed by the local's generation at set
        // time, so any reassignment invalidates the entry.
        std::map<uint32_t, std::pair<uint32_t, int>> localPreds;

        auto pop = [&stack]() -> StackVal {
            if (stack.empty())
                return StackVal{};
            StackVal v = stack.back();
            stack.pop_back();
            return v;
        };
        auto popN = [&pop](size_t n) {
            for (size_t k = 0; k < n; ++k)
                pop();
        };
        auto pushIv = [&stack](Interval iv) {
            stack.push_back(StackVal{iv, -1, 0, -1});
        };
        auto pushTop = [&pushIv](size_t n) {
            for (size_t k = 0; k < n; ++k)
                pushIv(Interval::top());
        };
        auto setLocal = [&out](uint32_t k, Interval iv) {
            out.locals[k] = iv;
            ++out.gens[k];
        };
        /** The branch predicate carried by a popped condition value:
         * an explicit comparison, or "local != 0" truthiness. */
        auto condPredOf =
            [&](const StackVal &c) -> std::optional<Pred> {
            if (c.predId >= 0)
                return preds[c.predId];
            if (c.src >= 0 && out.gens[c.src] == c.gen) {
                Pred p;
                p.cmp = Opcode::I32Ne;
                p.lhsLocal = c.src;
                p.lhsGen = c.gen;
                p.lhs = c.iv;
                p.rhs = Interval::exact(0);
                return p;
            }
            return std::nullopt;
        };

        for (uint32_t i = blk.first; i <= blk.last; ++i) {
            const Instr &ins = body_[i];
            const wasm::OpInfo &info = wasm::opInfo(ins.op);
            switch (info.cls) {
              case OpClass::Const:
                if (ins.op == Opcode::I32Const)
                    pushIv(Interval::exact(ins.imm.i32v));
                else
                    pushTop(1);
                break;
              case OpClass::LocalGet: {
                StackVal v;
                v.iv = localTypes_[ins.imm.idx] == ValType::I32
                           ? out.locals[ins.imm.idx]
                           : Interval::top();
                v.src = static_cast<int>(ins.imm.idx);
                v.gen = out.gens[ins.imm.idx];
                auto it = localPreds.find(ins.imm.idx);
                if (it != localPreds.end() &&
                    it->second.first == v.gen)
                    v.predId = it->second.second;
                stack.push_back(v);
                break;
              }
              case OpClass::LocalSet: {
                StackVal v = pop();
                setLocal(ins.imm.idx,
                         localTypes_[ins.imm.idx] == ValType::I32
                             ? v.iv
                             : Interval::top());
                if (v.predId >= 0)
                    localPreds[ins.imm.idx] = {out.gens[ins.imm.idx],
                                               v.predId};
                else
                    localPreds.erase(ins.imm.idx);
                break;
              }
              case OpClass::LocalTee: {
                Interval iv = Interval::top();
                if (localTypes_[ins.imm.idx] == ValType::I32 &&
                    !stack.empty())
                    iv = stack.back().iv;
                setLocal(ins.imm.idx, iv);
                if (!stack.empty()) {
                    // The stack value now also reads the fresh local;
                    // its predicate (if any) is unchanged by the tee.
                    stack.back().src = static_cast<int>(ins.imm.idx);
                    stack.back().gen = out.gens[ins.imm.idx];
                    if (stack.back().predId >= 0)
                        localPreds[ins.imm.idx] = {
                            out.gens[ins.imm.idx],
                            stack.back().predId};
                    else
                        localPreds.erase(ins.imm.idx);
                }
                break;
              }
              case OpClass::GlobalGet: {
                std::optional<uint32_t> v =
                    immutableI32GlobalInit(m_, ins.imm.idx);
                pushIv(v ? Interval::exact(*v) : Interval::top());
                break;
              }
              case OpClass::GlobalSet:
                pop();
                break;
              case OpClass::Unary: {
                StackVal v = pop();
                stack.push_back(transferUnary(ins.op, v, preds));
                break;
              }
              case OpClass::Binary: {
                StackVal b2 = pop();
                StackVal a = pop();
                if (sink && sink->fr &&
                    v32DivisorZero(ins.op, b2.iv))
                    sink->fr->divByZero.push_back(i);
                stack.push_back(transferBinary(ins.op, a, b2, preds));
                break;
              }
              case OpClass::Drop:
                pop();
                break;
              case OpClass::Select: {
                StackVal c = pop();
                StackVal onFalse = pop();
                StackVal onTrue = pop();
                if (c.iv.isConst())
                    stack.push_back(c.iv.lo ? onTrue : onFalse);
                else
                    pushIv(hull(onTrue.iv, onFalse.iv));
                break;
              }
              case OpClass::Load: {
                StackVal addr = pop();
                uint32_t width = static_cast<uint32_t>(
                    wasm::memAccessBytes(ins.op));
                if (sink)
                    recordAccess(*sink, i, addr.iv, width, false);
                pushIv(loadResultIv(ins.op));
                break;
              }
              case OpClass::Store: {
                pop(); // value
                StackVal addr = pop();
                if (sink)
                    recordAccess(*sink, i, addr.iv,
                                 static_cast<uint32_t>(
                                     wasm::memAccessBytes(ins.op)),
                                 true);
                break;
              }
              case OpClass::MemorySize: {
                Interval pages{0, 65536};
                if (!m_.memories.empty()) {
                    const wasm::Limits &lim = m_.memories[0].limits;
                    pages.lo = lim.min;
                    if (lim.max)
                        pages.hi = *lim.max;
                }
                pushIv(pages);
                break;
              }
              case OpClass::MemoryGrow:
                pop();
                pushTop(1);
                break;
              case OpClass::Call: {
                const wasm::FuncType &t = m_.funcType(ins.imm.idx);
                if (sink && sink->callArgs &&
                    !m_.functions[ins.imm.idx].imported())
                    recordCallArgs(*sink, ins.imm.idx, t, stack);
                popN(t.params.size());
                if (calleeRets_ && t.results.size() == 1 &&
                    t.results[0] == ValType::I32 &&
                    (*calleeRets_)[ins.imm.idx])
                    pushIv(*(*calleeRets_)[ins.imm.idx]);
                else
                    pushTop(t.results.size());
                break;
              }
              case OpClass::CallIndirect: {
                const wasm::FuncType &t = m_.types.at(ins.imm.idx);
                pop(); // table index
                popN(t.params.size());
                pushTop(t.results.size());
                break;
              }
              case OpClass::If: {
                StackVal c = pop();
                if (sink && sink->fr && c.iv.isConst())
                    sink->fr->deadGuards.push_back(
                        DeadGuard{i, c.iv.lo});
                out.hasCond = true;
                out.cond = c.iv;
                out.condPred = condPredOf(c);
                stack.clear();
                break;
              }
              case OpClass::BrIf: {
                StackVal c = pop();
                if (sink && sink->fr && c.iv.isConst())
                    sink->fr->deadGuards.push_back(
                        DeadGuard{i, c.iv.lo});
                // A taken function-level br_if is a return carrying
                // the value now on top of the (post-condition) stack.
                if (sink && ins.imm.idx == depthAt_[i])
                    recordReturn(*sink, stack);
                out.hasCond = true;
                out.cond = c.iv;
                out.condPred = condPredOf(c);
                break;
              }
              case OpClass::BrTable: {
                pop();
                if (sink) {
                    for (uint32_t label : ins.table) {
                        if (label == depthAt_[i]) {
                            recordReturn(*sink, stack);
                            break;
                        }
                    }
                }
                stack.clear();
                break;
              }
              case OpClass::Return:
                if (sink)
                    recordReturn(*sink, stack);
                stack.clear();
                break;
              case OpClass::Br:
                if (sink && ins.imm.idx == depthAt_[i])
                    recordReturn(*sink, stack);
                stack.clear();
                break;
              case OpClass::End:
                // Falling through the final end is a normal exit.
                if (sink && i + 1 == body_.size())
                    recordReturn(*sink, stack);
                break;
              // Structural markers are runtime no-ops on the operand
              // stack: values flow across them untouched.
              case OpClass::Nop:
              case OpClass::Block:
              case OpClass::Loop:
                break;
              default:
                // else / unreachable: terminators; no value flows
                // past them within this block.
                stack.clear();
                break;
            }
        }
        return out;
    }

    StackVal
    transferUnary(Opcode op, const StackVal &v,
                  std::vector<Pred> &preds) const
    {
        StackVal r;
        if (v.iv.isConst()) {
            std::optional<uint32_t> folded = foldI32Unary(op, v.iv.lo);
            if (folded) {
                r.iv = Interval::exact(*folded);
                return r;
            }
        }
        switch (op) {
          case Opcode::I32Eqz: {
            if (v.iv.lo > 0) {
                r.iv = Interval::exact(0);
                return r;
            }
            r.iv = Interval{0, 1};
            // eqz(x) inverts x's predicate; a bare local becomes
            // "local == 0" on the taken side.
            if (v.predId >= 0) {
                Pred p = preds[v.predId];
                Opcode inv = negateCmp(p.cmp);
                if (inv != Opcode::Nop) {
                    p.cmp = inv;
                    preds.push_back(p);
                    r.predId = static_cast<int>(preds.size()) - 1;
                }
            } else if (v.src >= 0) {
                Pred p;
                p.cmp = Opcode::I32Eq;
                p.lhsLocal = v.src;
                p.lhsGen = v.gen;
                p.lhs = v.iv;
                p.rhs = Interval::exact(0);
                preds.push_back(p);
                r.predId = static_cast<int>(preds.size()) - 1;
            }
            return r;
          }
          case Opcode::I32Clz:
          case Opcode::I32Ctz:
          case Opcode::I32Popcnt:
            r.iv = Interval{0, 32};
            return r;
          default:
            r.iv = Interval::top();
            return r;
        }
    }

    StackVal
    transferBinary(Opcode op, const StackVal &a, const StackVal &b,
                   std::vector<Pred> &preds) const
    {
        StackVal r;
        if (a.iv.isConst() && b.iv.isConst()) {
            std::optional<uint32_t> folded =
                foldI32Binary(op, a.iv.lo, b.iv.lo);
            if (folded) {
                r.iv = Interval::exact(*folded);
                if (isI32Comparison(op))
                    r.predId = pushCmpPred(op, a, b, preds);
                return r;
            }
        }
        if (isI32Comparison(op)) {
            r.iv = cmpIv(op, a.iv, b.iv);
            r.predId = pushCmpPred(op, a, b, preds);
            return r;
        }
        r.iv = binaryIv(op, a.iv, b.iv);
        return r;
    }

    int
    pushCmpPred(Opcode op, const StackVal &a, const StackVal &b,
                std::vector<Pred> &preds) const
    {
        if (a.src < 0 && b.src < 0)
            return -1;
        Pred p;
        p.cmp = op;
        p.lhsLocal = a.src;
        p.lhsGen = a.gen;
        p.lhs = a.iv;
        p.rhsLocal = b.src;
        p.rhsGen = b.gen;
        p.rhs = b.iv;
        preds.push_back(p);
        return static_cast<int>(preds.size()) - 1;
    }

    Interval
    binaryIv(Opcode op, const Interval &a, const Interval &b) const
    {
        switch (op) {
          case Opcode::I32Add:
            return addIv(a, b);
          case Opcode::I32Sub:
            return subIv(a, b);
          case Opcode::I32Mul:
            return mulIv(a, b);
          case Opcode::I32DivU: {
            // A zero divisor traps: executions that reach the result
            // had divisor >= 1.
            uint32_t dlo = std::max(b.lo, 1u);
            uint32_t dhi = std::max(b.hi, 1u);
            return Interval{a.lo / dhi, a.hi / dlo};
          }
          case Opcode::I32RemU: {
            if (b.hi == 0)
                return Interval::top(); // always traps
            return Interval{0, std::min(a.hi, b.hi - 1)};
          }
          case Opcode::I32DivS:
            if (nonNegative(a) && nonNegative(b))
                return binaryIv(Opcode::I32DivU, a, b);
            return Interval::top();
          case Opcode::I32RemS:
            if (nonNegative(a) && nonNegative(b))
                return binaryIv(Opcode::I32RemU, a, b);
            return Interval::top();
          case Opcode::I32And:
            return Interval{0, std::min(a.hi, b.hi)};
          case Opcode::I32Or:
            return Interval{std::max(a.lo, b.lo),
                            maskUp(std::max(a.hi, b.hi))};
          case Opcode::I32Xor:
            return Interval{0, maskUp(std::max(a.hi, b.hi))};
          case Opcode::I32Shl:
            if (b.isConst()) {
                uint32_t s = b.lo & 31;
                if ((static_cast<uint64_t>(a.hi) << s) <= kU32Max)
                    return Interval{a.lo << s, a.hi << s};
            }
            return Interval::top();
          case Opcode::I32ShrU:
            if (b.isConst()) {
                uint32_t s = b.lo & 31;
                return Interval{a.lo >> s, a.hi >> s};
            }
            return Interval{0, a.hi};
          case Opcode::I32ShrS:
            if (nonNegative(a))
                return binaryIv(Opcode::I32ShrU, a, b);
            return Interval::top();
          default:
            return Interval::top();
        }
    }

    static bool
    v32DivisorZero(Opcode op, const Interval &divisor)
    {
        switch (op) {
          case Opcode::I32DivU:
          case Opcode::I32DivS:
          case Opcode::I32RemU:
          case Opcode::I32RemS:
            return divisor == Interval::exact(0);
          default:
            return false;
        }
    }

    static Interval
    loadResultIv(Opcode op)
    {
        switch (op) {
          case Opcode::I32Load8U:
            return Interval{0, 0xFF};
          case Opcode::I32Load16U:
            return Interval{0, 0xFFFF};
          default:
            return Interval::top();
        }
    }

    void
    recordAccess(const RangeSink &sink, uint32_t instr,
                 const Interval &addr, uint32_t width,
                 bool is_store) const
    {
        if (!sink.fr)
            return;
        MemAccess a;
        a.instr = instr;
        a.offset = body_[instr].imm.mem.offset;
        a.width = width;
        a.addr = addr;
        a.isStore = is_store;
        sink.fr->accesses.push_back(a);
    }

    /** Join the value on top of the stack (the function result at a
     * normal exit) into the sink's return hull. Values produced in an
     * earlier block read as top (empty symbolic stack). */
    void
    recordReturn(const RangeSink &sink,
                 const std::vector<StackVal> &stack) const
    {
        if (!sink.ret || !resultIsI32_)
            return;
        Interval v =
            stack.empty() ? Interval::top() : stack.back().iv;
        *sink.ret = *sink.retSeen ? hull(*sink.ret, v) : v;
        *sink.retSeen = true;
    }

    void
    recordCallArgs(const RangeSink &sink, uint32_t callee,
                   const wasm::FuncType &type,
                   const std::vector<StackVal> &stack) const
    {
        const size_t np = type.params.size();
        std::vector<Interval> args(np, Interval::top());
        // Stack top holds the last parameter; missing depths (values
        // produced before this block) stay top.
        for (size_t k = 0; k < np; ++k) {
            size_t depth = np - 1 - k; // 0 = stack top = last param
            if (depth < stack.size() &&
                type.params[k] == ValType::I32)
                args[k] = stack[stack.size() - 1 - depth].iv;
        }
        auto [it, inserted] = sink.callArgs->try_emplace(callee, args);
        if (!inserted) {
            for (size_t k = 0; k < np; ++k)
                it->second[k] = hull(it->second[k], args[k]);
        }
    }

    const Module &m_;
    uint32_t funcIdx_;
    const std::vector<Instr> &body_;
    Cfg cfg_;
    std::vector<Interval> args_;
    const std::vector<std::optional<Interval>> *calleeRets_ = nullptr;
    std::vector<ValType> localTypes_;
    uint32_t numParams_ = 0;
    bool resultIsI32_ = false;
    std::vector<uint32_t> depthAt_;
    std::vector<uint32_t> thresholds_;
    std::set<uint32_t> loopHeads_;
    std::vector<std::vector<Interval>> in_;
    std::vector<char> reached_;
};

} // namespace

Interval
hull(const Interval &a, const Interval &b)
{
    return Interval{std::min(a.lo, b.lo), std::max(a.hi, b.hi)};
}

FunctionValueFlow
functionValueFlow(const Module &m, uint32_t func_idx,
                  const std::vector<Interval> &args,
                  const std::vector<std::optional<Interval>>
                      *callee_rets)
{
    FunctionValueFlow vf;
    const wasm::Function &func = m.functions.at(func_idx);
    if (func.imported() || func.body.empty())
        return vf;
    FunctionRangeAnalyzer fa(m, func_idx, args, callee_rets);
    if (!fa.solve())
        return vf;
    vf.analyzed = true;
    RangeSink sink;
    sink.callArgs = &vf.callArgs;
    sink.ret = &vf.ret;
    sink.retSeen = &vf.returnSeen;
    fa.collect(sink);
    return vf;
}

// ----- module driver -----------------------------------------------------

namespace {

/** Functions whose arguments must be treated as unconstrained:
 * host-reachable roots, targets of any indirect call site, and
 * members of recursive SCCs (incl. self loops). */
std::vector<char>
topSeededFunctions(const Module &m,
                   const interproc::RefinedCallGraph &cg,
                   const interproc::SccGraph &scc)
{
    std::vector<char> top(m.numFunctions(), 0);
    for (uint32_t f : cg.roots())
        top[f] = 1;
    for (const interproc::CallSite &site : cg.sites()) {
        if (site.kind == interproc::SiteKind::Direct) {
            // Direct self calls make a singleton SCC recursive.
            if (!site.targets.empty() &&
                site.targets[0] == site.func)
                top[site.func] = 1;
            continue;
        }
        for (uint32_t t : site.targets)
            top[t] = 1;
    }
    for (uint32_t sid = 0; sid < scc.numSccs(); ++sid) {
        if (scc.members[sid].size() > 1) {
            for (uint32_t f : scc.members[sid])
                top[f] = 1;
        }
    }
    return top;
}

} // namespace

void
setRangeSolverBudgetForTest(uint64_t budget)
{
    g_solverBudgetOverride = budget;
}

ModuleRanges
moduleRanges(const Module &m, unsigned num_threads)
{
    ModuleRanges mr;
    mr.hasMemory = !m.memories.empty();
    mr.minPages = mr.hasMemory ? m.memories[0].limits.min : 0;
    const uint32_t n = m.numFunctions();
    mr.functions.resize(n);
    if (n == 0)
        return mr;

    const uint64_t minBytes = static_cast<uint64_t>(mr.minPages) *
                              kPageBytes;

    interproc::RefinedCallGraph cg(m);
    interproc::SccGraph scc = interproc::condense(
        n, [&cg](uint32_t f) -> const std::vector<uint32_t> & {
            return cg.callees(f);
        });
    const uint32_t num_sccs = scc.numSccs();
    std::vector<char> top = topSeededFunctions(m, cg, scc);

    // Joined argument intervals contributed by finalized callers.
    // Joins are commutative and associative, and a function's seed is
    // read only after every caller SCC finished, so the result is
    // identical at any thread count.
    std::vector<std::vector<Interval>> argSeed(n);
    std::mutex seedMu;

    auto solveScc = [&](uint32_t sid) {
        std::map<uint32_t, std::vector<Interval>> contrib;
        for (uint32_t f : scc.members[sid]) {
            FunctionRanges &fr = mr.functions[f];
            const wasm::Function &func = m.functions[f];
            const size_t np = m.funcType(f).params.size();
            if (func.imported() || func.body.empty()) {
                fr.args.assign(np, Interval::top());
                continue;
            }
            std::vector<Interval> args(np, Interval::top());
            if (!top[f]) {
                std::lock_guard<std::mutex> lock(seedMu);
                if (!argSeed[f].empty())
                    args = argSeed[f];
                // No recorded caller: the function is never invoked;
                // top keeps its (vacuous) facts sound.
            }
            fr.args = args;

            FunctionRangeAnalyzer fa(m, f, args);
            if (!fa.solve()) {
                // Iteration cap: discard this function's facts, but
                // still account for its calls. Skipping them would
                // leave a callee that also has successfully-analyzed
                // callers seeded from only those callers' (narrower)
                // joins — an unsound under-approximation. Degrade
                // every callee's seed to top instead.
                for (uint32_t c : cg.callees(f)) {
                    std::vector<Interval> targs(
                        m.funcType(c).params.size(),
                        Interval::top());
                    auto [it, inserted] =
                        contrib.try_emplace(c, std::move(targs));
                    if (!inserted)
                        it->second.assign(it->second.size(),
                                          Interval::top());
                }
                continue;
            }
            fr.analyzed = true;
            RangeSink sink;
            sink.fr = &fr;
            sink.callArgs = &contrib;
            fa.collect(sink);
            for (MemAccess &a : fr.accesses) {
                uint64_t end = static_cast<uint64_t>(a.addr.hi) +
                               a.offset + a.width;
                a.proven = mr.hasMemory && end <= minBytes;
            }
        }
        if (!contrib.empty()) {
            std::lock_guard<std::mutex> lock(seedMu);
            for (auto &[callee, args] : contrib) {
                std::vector<Interval> &seed = argSeed[callee];
                if (seed.empty()) {
                    seed = args;
                } else {
                    for (size_t k = 0; k < seed.size(); ++k)
                        seed[k] = hull(seed[k], args[k]);
                }
            }
        }
    };

    unsigned workers = num_threads == 0
                           ? std::max(1u,
                                      std::thread::hardware_concurrency())
                           : num_threads;
    if (workers == 1 || num_sccs == 1) {
        // Tarjan ids are reverse-topological: descending is top-down
        // (callers strictly before their callees).
        for (uint32_t sid = num_sccs; sid-- > 0;)
            solveScc(sid);
        return mr;
    }

    // Parallel top-down walk of the condensation DAG (the mirror
    // image of the bottom-up summary solver): an SCC becomes ready
    // once every caller SCC has published its argument joins.
    std::mutex mu;
    std::condition_variable cv;
    std::deque<uint32_t> ready;
    std::vector<uint32_t> pending(num_sccs);
    uint32_t solved = 0;
    for (uint32_t sid = 0; sid < num_sccs; ++sid) {
        pending[sid] = static_cast<uint32_t>(scc.preds[sid].size());
        if (pending[sid] == 0)
            ready.push_back(sid);
    }

    auto worker = [&] {
        std::unique_lock<std::mutex> lock(mu);
        while (solved < num_sccs) {
            if (ready.empty()) {
                cv.wait(lock, [&] {
                    return !ready.empty() || solved == num_sccs;
                });
                continue;
            }
            uint32_t sid = ready.front();
            ready.pop_front();
            lock.unlock();
            solveScc(sid);
            lock.lock();
            ++solved;
            for (uint32_t s : scc.succs[sid]) {
                if (--pending[s] == 0)
                    ready.push_back(s);
            }
            cv.notify_all();
        }
    };

    std::vector<std::thread> pool;
    unsigned count = std::min<unsigned>(workers, num_sccs);
    pool.reserve(count);
    for (unsigned t = 0; t < count; ++t)
        pool.emplace_back(worker);
    for (std::thread &t : pool)
        t.join();
    return mr;
}

// ----- claims + manifest -------------------------------------------------

RangeClaims
provableRangeClaims(const ModuleRanges &mr)
{
    RangeClaims c;
    c.minPages = mr.minPages;
    for (uint32_t f = 0; f < mr.functions.size(); ++f) {
        for (const MemAccess &a : mr.functions[f].accesses) {
            if (a.proven)
                c.claims.push_back(RangeClaim{f, a.instr});
        }
    }
    std::sort(c.claims.begin(), c.claims.end(),
              [](const RangeClaim &a, const RangeClaim &b) {
                  return a.func != b.func ? a.func < b.func
                                          : a.instr < b.instr;
              });
    c.claims.erase(std::unique(c.claims.begin(), c.claims.end()),
                   c.claims.end());
    return c;
}

std::string
rangeClaimsToManifest(const RangeClaims &c)
{
    std::string out = "{\n  \"schema\": \"wasabi-range-manifest\",\n"
                      "  \"version\": 1,\n";
    out += "  \"minPages\": " + std::to_string(c.minPages) + ",\n";
    out += "  \"claims\": [";
    for (size_t i = 0; i < c.claims.size(); ++i) {
        out += i ? ",\n    " : "\n    ";
        out += "[" + std::to_string(c.claims[i].func) + ", " +
               std::to_string(c.claims[i].instr) + "]";
    }
    out += c.claims.empty() ? "]\n" : "\n  ]\n";
    out += "}\n";
    return out;
}

bool
isRangeManifest(const std::string &text)
{
    // Route on the top-level "schema" field, not a substring sniff:
    // another manifest kind (or any file) that merely mentions the
    // schema string somewhere in a nested value must not land here.
    // The scan is lenient about field contents — full validation is
    // the parser's job — but strict about object structure.
    size_t pos = 0;
    auto skipWs = [&] {
        while (pos < text.size() &&
               std::isspace(static_cast<unsigned char>(text[pos])))
            ++pos;
    };
    auto parseString = [&](std::string *out) -> bool {
        if (pos >= text.size() || text[pos] != '"')
            return false;
        ++pos;
        const size_t start = pos;
        while (pos < text.size() && text[pos] != '"') {
            if (text[pos] == '\\')
                return false; // manifest subset has no escapes
            ++pos;
        }
        if (pos >= text.size())
            return false;
        if (out)
            out->assign(text, start, pos - start);
        ++pos;
        return true;
    };
    // Consume one value (scalar, array, or object) without
    // validating it, stopping before the delimiter that follows.
    auto skipValue = [&]() -> bool {
        int depth = 0;
        skipWs();
        const size_t start = pos;
        while (pos < text.size()) {
            const char c = text[pos];
            if (c == '"') {
                if (!parseString(nullptr))
                    return false;
            } else if (c == '[' || c == '{') {
                ++depth;
                ++pos;
            } else if (c == ']' || c == '}') {
                if (depth == 0)
                    return pos > start;
                --depth;
                ++pos;
            } else if (c == ',' && depth == 0) {
                return pos > start;
            } else {
                ++pos;
            }
        }
        return false;
    };
    skipWs();
    if (pos >= text.size() || text[pos] != '{')
        return false;
    ++pos;
    bool first = true;
    while (true) {
        skipWs();
        if (pos >= text.size())
            return false;
        if (text[pos] == '}')
            return false; // object ended without a schema field
        if (!first) {
            if (text[pos] != ',')
                return false;
            ++pos;
            skipWs();
        }
        first = false;
        std::string key;
        if (!parseString(&key))
            return false;
        skipWs();
        if (pos >= text.size() || text[pos] != ':')
            return false;
        ++pos;
        if (key == "schema") {
            skipWs();
            std::string v;
            return parseString(&v) && v == "wasabi-range-manifest";
        }
        if (!skipValue())
            return false;
    }
}

namespace {

/** Minimal parser for the manifest's JSON subset, mirroring the
 * instrumentation-manifest parser (objects, arrays, non-negative
 * integers; no escapes, no floats). */
class RangeManifestParser {
  public:
    explicit RangeManifestParser(const std::string &text)
        : text_(text)
    {
    }

    bool
    parse(RangeClaims &out, std::string &error)
    {
        skipWs();
        if (!expect('{')) {
            error = err_;
            return false;
        }
        bool first = true;
        while (true) {
            skipWs();
            if (peek() == '}') {
                ++pos_;
                break;
            }
            if (!first && !expect(',')) {
                error = err_;
                return false;
            }
            first = false;
            skipWs();
            std::string key;
            if (!parseString(key)) {
                error = err_;
                return false;
            }
            skipWs();
            if (!expect(':')) {
                error = err_;
                return false;
            }
            skipWs();
            if (!parseField(key, out)) {
                error = err_;
                return false;
            }
        }
        skipWs();
        if (pos_ != text_.size()) {
            error = "trailing characters after manifest object";
            return false;
        }
        if (!sawVersion_) {
            error = "manifest lacks a \"version\" field";
            return false;
        }
        if (schema_ != "wasabi-range-manifest") {
            error = "not a wasabi-range-manifest";
            return false;
        }
        return true;
    }

  private:
    char
    peek() const
    {
        return pos_ < text_.size() ? text_[pos_] : '\0';
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool
    expect(char c)
    {
        if (peek() != c) {
            err_ = std::string("expected '") + c + "' at offset " +
                   std::to_string(pos_);
            return false;
        }
        ++pos_;
        return true;
    }

    bool
    parseString(std::string &out)
    {
        if (!expect('"'))
            return false;
        out.clear();
        while (pos_ < text_.size() && text_[pos_] != '"') {
            if (text_[pos_] == '\\') {
                err_ = "escape sequences not supported in manifest";
                return false;
            }
            out += text_[pos_++];
        }
        return expect('"');
    }

    bool
    parseUint(uint64_t &out)
    {
        if (!std::isdigit(static_cast<unsigned char>(peek()))) {
            err_ = "expected a number at offset " +
                   std::to_string(pos_);
            return false;
        }
        out = 0;
        while (std::isdigit(static_cast<unsigned char>(peek()))) {
            out = out * 10 + static_cast<uint64_t>(peek() - '0');
            if (out > 0xFFFFFFFFull) {
                err_ = "number out of range at offset " +
                       std::to_string(pos_);
                return false;
            }
            ++pos_;
        }
        return true;
    }

    bool
    parseField(const std::string &key, RangeClaims &out)
    {
        if (key == "schema")
            return parseString(schema_);
        if (key == "version") {
            uint64_t v = 0;
            if (!parseUint(v))
                return false;
            if (v != 1) {
                err_ = "unsupported manifest version " +
                       std::to_string(v);
                return false;
            }
            sawVersion_ = true;
            return true;
        }
        if (key == "minPages") {
            uint64_t v = 0;
            if (!parseUint(v))
                return false;
            out.minPages = static_cast<uint32_t>(v);
            return true;
        }
        if (key == "claims") {
            if (!expect('['))
                return false;
            skipWs();
            if (peek() == ']') {
                ++pos_;
                return true;
            }
            while (true) {
                skipWs();
                if (!expect('['))
                    return false;
                uint64_t f = 0, i = 0;
                skipWs();
                if (!parseUint(f))
                    return false;
                skipWs();
                if (!expect(','))
                    return false;
                skipWs();
                if (!parseUint(i))
                    return false;
                skipWs();
                if (!expect(']'))
                    return false;
                out.claims.push_back(
                    RangeClaim{static_cast<uint32_t>(f),
                               static_cast<uint32_t>(i)});
                skipWs();
                if (peek() == ',') {
                    ++pos_;
                    continue;
                }
                return expect(']');
            }
        }
        err_ = "unknown manifest key \"" + key + "\"";
        return false;
    }

    const std::string &text_;
    size_t pos_ = 0;
    std::string err_;
    std::string schema_;
    bool sawVersion_ = false;
};

} // namespace

bool
rangeClaimsFromManifest(const std::string &text, RangeClaims *out,
                        std::string *error)
{
    RangeClaims c;
    std::string err;
    RangeManifestParser parser(text);
    if (!parser.parse(c, err)) {
        if (error)
            *error = err;
        return false;
    }
    *out = std::move(c);
    return true;
}

Diagnostics
checkRangeClaims(const Module &m, const RangeClaims &c,
                 unsigned num_threads)
{
    Diagnostics ds;
    if (m.memories.empty()) {
        ds.error("check.range.bad-memory",
                 "manifest claims in-bounds accesses but the module "
                 "declares no memory");
        return ds;
    }
    if (m.memories[0].limits.min != c.minPages) {
        ds.error("check.range.bad-memory",
                 "manifest was proved against min memory of " +
                     std::to_string(c.minPages) +
                     " pages but the module declares " +
                     std::to_string(m.memories[0].limits.min));
        return ds;
    }

    // Re-derive what is provable and require claimed ⊆ provable.
    ModuleRanges mr = moduleRanges(m, num_threads);
    RangeClaims provable = provableRangeClaims(mr);
    std::set<std::pair<uint32_t, uint32_t>> proven;
    for (const RangeClaim &p : provable.claims)
        proven.insert({p.func, p.instr});

    for (const RangeClaim &claim : c.claims) {
        if (claim.func >= m.numFunctions() ||
            m.functions[claim.func].imported() ||
            claim.instr >= m.functions[claim.func].body.size()) {
            ds.error("check.range.bad-location",
                     "claim names no instruction of a defined "
                     "function",
                     claim.func, claim.instr);
            continue;
        }
        OpClass cls =
            wasm::opInfo(m.functions[claim.func].body[claim.instr].op)
                .cls;
        if (cls != OpClass::Load && cls != OpClass::Store) {
            ds.error("check.range.bad-location",
                     "claimed instruction is not a load or store",
                     claim.func, claim.instr);
            continue;
        }
        if (!proven.count({claim.func, claim.instr})) {
            ds.error("check.range.unprovable",
                     "claimed in-bounds access is not re-provable by "
                     "the range analysis",
                     claim.func, claim.instr);
        }
    }
    return ds;
}

// ----- views -------------------------------------------------------------

namespace {

std::string
ivJson(const Interval &iv)
{
    return "[" + std::to_string(iv.lo) + "," + std::to_string(iv.hi) +
           "]";
}

std::string
ivLabel(const Interval &iv)
{
    if (iv.isTop())
        return "T";
    if (iv.isConst())
        return std::to_string(iv.lo);
    return "[" + std::to_string(iv.lo) + "," + std::to_string(iv.hi) +
           "]";
}

} // namespace

std::string
rangesToJson(const Module &m, const ModuleRanges &mr)
{
    std::string out = "{\"schema\":\"wasabi-ranges\",\"version\":1";
    out += ",\"memory\":{\"present\":";
    out += mr.hasMemory ? "true" : "false";
    out += ",\"minPages\":" + std::to_string(mr.minPages) + "}";
    out += ",\"functions\":[";
    for (uint32_t f = 0; f < mr.functions.size(); ++f) {
        const FunctionRanges &fr = mr.functions[f];
        if (f)
            out += ",";
        out += "{\"func\":" + std::to_string(f);
        out += ",\"imported\":";
        out += m.functions[f].imported() ? "true" : "false";
        out += ",\"analyzed\":";
        out += fr.analyzed ? "true" : "false";
        out += ",\"args\":[";
        for (size_t k = 0; k < fr.args.size(); ++k) {
            if (k)
                out += ",";
            out += ivJson(fr.args[k]);
        }
        out += "],\"accesses\":[";
        uint32_t proven = 0;
        for (size_t k = 0; k < fr.accesses.size(); ++k) {
            const MemAccess &a = fr.accesses[k];
            if (k)
                out += ",";
            out += "{\"instr\":" + std::to_string(a.instr);
            out += std::string(",\"kind\":\"") +
                   (a.isStore ? "store" : "load") + "\"";
            out += ",\"offset\":" + std::to_string(a.offset);
            out += ",\"width\":" + std::to_string(a.width);
            out += ",\"addr\":" + ivJson(a.addr);
            out += ",\"proven\":";
            out += a.proven ? "true" : "false";
            out += "}";
            proven += a.proven ? 1 : 0;
        }
        out += "],\"divByZero\":[";
        for (size_t k = 0; k < fr.divByZero.size(); ++k) {
            if (k)
                out += ",";
            out += std::to_string(fr.divByZero[k]);
        }
        out += "],\"deadGuards\":[";
        for (size_t k = 0; k < fr.deadGuards.size(); ++k) {
            if (k)
                out += ",";
            out += "{\"instr\":" +
                   std::to_string(fr.deadGuards[k].instr) +
                   ",\"value\":" +
                   std::to_string(fr.deadGuards[k].value) + "}";
        }
        out += "],\"provenAccesses\":" + std::to_string(proven);
        out += ",\"totalAccesses\":" +
               std::to_string(fr.accesses.size());
        out += "}";
    }
    out += "]}";
    return out;
}

std::string
rangesDot(const Module &m, const ModuleRanges &mr, uint32_t func_idx)
{
    std::string out = "digraph ranges {\n  node [shape=box, "
                      "fontname=\"monospace\"];\n";
    if (func_idx >= mr.functions.size()) {
        out += "}\n";
        return out;
    }
    const FunctionRanges &fr = mr.functions[func_idx];
    Cfg cfg(m, func_idx);
    for (uint32_t b = 0; b < cfg.numBlocks(); ++b) {
        const BasicBlock &blk = cfg.blocks()[b];
        std::string label = "b" + std::to_string(b);
        if (!blk.empty())
            label += " [" + std::to_string(blk.first) + "," +
                     std::to_string(blk.last) + "]";
        bool reached =
            b < fr.blockReached.size() && fr.blockReached[b];
        if (reached) {
            for (size_t k = 0; k < fr.blockIn[b].size(); ++k) {
                const Interval &iv = fr.blockIn[b][k];
                if (iv.isTop())
                    continue;
                label += "\\nl" + std::to_string(k) + "=" +
                         ivLabel(iv);
            }
        } else {
            label += "\\n(unreached)";
        }
        out += "  n" + std::to_string(b) + " [label=\"" + label +
               "\"";
        if (!reached)
            out += ", style=dashed";
        out += "];\n";
    }
    for (uint32_t b = 0; b < cfg.numBlocks(); ++b) {
        for (uint32_t s : cfg.blocks()[b].succs)
            out += "  n" + std::to_string(b) + " -> n" +
                   std::to_string(s) + ";\n";
    }
    out += "}\n";
    return out;
}

} // namespace wasabi::static_analysis::passes
