/**
 * @file
 * Constant/stack-value propagation (pass 1 of the lint/optimizer
 * pipeline): a forward dataflow instance over the PR-1 solver whose
 * lattice element maps every i32 local to ⊥ / a known constant / ⊤,
 * combined with a per-block symbolic operand-stack evaluation that
 * folds i32 arithmetic over known values.
 *
 * The extracted facts are the constant-controlled branch points:
 * `br_if`/`if` conditions and `br_table` indices whose value is the
 * same compile-time constant on every execution. They feed
 *  - `wasabi lint` (lint.branch.const-condition / const-index), and
 *  - the `--optimize-hooks` plan (br_table -> br hook narrowing),
 * and are recomputed by `wasabi check --manifest=` to verify every
 * narrowing the manifest claims.
 */

#ifndef WASABI_STATIC_PASSES_CONSTPROP_H
#define WASABI_STATIC_PASSES_CONSTPROP_H

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "wasm/module.h"

namespace wasabi::static_analysis::passes {

/** Constant-valued branch controls of one defined function, keyed by
 * core::packLoc-packed (function, instruction) location. */
struct ConstFacts {
    /** br_if locations whose condition is always this constant. */
    std::unordered_map<uint64_t, uint32_t> brIfCond;

    /** if locations whose condition is always this constant. */
    std::unordered_map<uint64_t, uint32_t> ifCond;

    /** br_table locations whose index is always this constant. */
    std::unordered_map<uint64_t, uint32_t> brTableIndex;

    /** call_indirect locations whose table index is always this
     * constant (feeds the interprocedural call_indirect refinement
     * and the call-hook narrowing plan). */
    std::unordered_map<uint64_t, uint32_t> callIndirectIndex;

    bool
    empty() const
    {
        return brIfCond.empty() && ifCond.empty() &&
               brTableIndex.empty() && callIndirectIndex.empty();
    }
};

/**
 * Run constant propagation over defined function @p func_idx of the
 * validated module @p m. Only facts in CFG-reachable blocks are
 * reported. Deterministic: the checker re-runs this to verify
 * manifest claims.
 */
ConstFacts constantFacts(const wasm::Module &m, uint32_t func_idx);

/**
 * Fold an i32-producing unary operator over a known operand; nullopt
 * when the operator is not a foldable i32 op. Shared by the symbolic
 * stack evaluation above, the `wasabi opt` const-fold pass, and the
 * manifest checker that re-proves its claims.
 */
std::optional<uint32_t> foldI32Unary(wasm::Opcode op, uint32_t a);

/** Binary counterpart of foldI32Unary. Trapping operand combinations
 * (division by zero, INT_MIN / -1) return nullopt — the instruction
 * never completes, so replacing it with a constant would be unsound. */
std::optional<uint32_t> foldI32Binary(wasm::Opcode op, uint32_t a,
                                      uint32_t b);

/**
 * The compile-time value of global @p global_idx if it is immutable,
 * defined (not imported — an import's value is only known at link
 * time), of type i32, and initialized by an `i32.const` expression.
 * Every `global.get` of such a global yields this constant on every
 * execution; constant propagation and the range analysis both use it.
 */
std::optional<uint32_t>
immutableI32GlobalInit(const wasm::Module &m, uint32_t global_idx);

} // namespace wasabi::static_analysis::passes

#endif // WASABI_STATIC_PASSES_CONSTPROP_H
