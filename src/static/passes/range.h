/**
 * @file
 * Value-range abstract interpretation (interval domain) over locals,
 * the operand stack and immutable globals. A forward worklist solver
 * with threshold widening at loop heads and branch-condition edge
 * refinement computes, for every reachable load/store, a sound
 * interval of its dynamic base address; comparison and division facts
 * ride along. Argument intervals are seeded interprocedurally over the
 * PR-3 Tarjan-SCC condensation (top-down, callers before callees) with
 * byte-identical results at any thread count.
 *
 * The facts feed three consumers:
 *  - `wasabi lint` (lint.range.* diagnostics: provably out-of-bounds
 *    accesses, constant division by zero, dead guard branches),
 *  - `wasabi analyze --ranges` (JSON and per-function DOT views), and
 *  - RangeClaims ("this access is in bounds for every execution given
 *    the declared minimum memory"), exported as a claim manifest that
 *    `wasabi check --manifest=` re-proves (check.range.* codes) and
 *    the pre-decoded engine consumes to elide bounds checks.
 */

#ifndef WASABI_STATIC_PASSES_RANGE_H
#define WASABI_STATIC_PASSES_RANGE_H

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "static/diagnostics.h"
#include "wasm/module.h"

namespace wasabi::static_analysis::passes {

/**
 * An unsigned 32-bit interval [lo, hi], lo <= hi. Top is
 * [0, UINT32_MAX]; the empty interval is not representable — an
 * infeasible state is expressed by dropping the CFG edge instead.
 * Values of non-i32 type are always top (sound, just imprecise).
 */
struct Interval {
    uint32_t lo = 0;
    uint32_t hi = 0xFFFFFFFFu;

    static Interval top() { return Interval{}; }
    static Interval exact(uint32_t v) { return Interval{v, v}; }

    bool isTop() const { return lo == 0 && hi == 0xFFFFFFFFu; }
    bool isConst() const { return lo == hi; }

    bool operator==(const Interval &other) const = default;
};

/** Smallest interval containing both. */
Interval hull(const Interval &a, const Interval &b);

/** One memory access with its statically inferred address range. */
struct MemAccess {
    uint32_t instr = 0;  ///< instruction index within the function
    uint32_t offset = 0; ///< static offset immediate
    uint32_t width = 0;  ///< access size in bytes (1, 2, 4 or 8)
    Interval addr;       ///< interval of the dynamic base address
    bool isStore = false;
    /** addr.hi + offset + width <= declared-min-memory bytes: in
     * bounds on every execution (linear memory never shrinks). */
    bool proven = false;
};

/** A br_if/if whose condition the interval domain proves constant. */
struct DeadGuard {
    uint32_t instr = 0;
    uint32_t value = 0; ///< the provably constant condition
};

/** Range facts of one function. */
struct FunctionRanges {
    /** False for imports and for bodies whose solver hit the
     * iteration cap (facts discarded — sound, just silent). */
    bool analyzed = false;

    /** Seeded parameter intervals (top unless every caller was
     * provable; always top for exports/start/indirect targets and
     * recursive functions). */
    std::vector<Interval> args;

    std::vector<MemAccess> accesses;

    /** Div/rem instructions whose divisor is provably zero. */
    std::vector<uint32_t> divByZero;

    std::vector<DeadGuard> deadGuards;

    /** Locals interval at each basic-block entry (per CFG block;
     * meaningless for unreached blocks). Drives the DOT view. */
    std::vector<std::vector<Interval>> blockIn;

    /** Whether each CFG block is reached by the analysis. */
    std::vector<char> blockReached;
};

/** Module-wide range facts. */
struct ModuleRanges {
    bool hasMemory = false;
    uint32_t minPages = 0; ///< declared minimum of memory 0
    std::vector<FunctionRanges> functions; ///< by function index
};

/**
 * Run the interprocedural range analysis. @p num_threads = 0 picks a
 * hardware default; the result is byte-identical for any thread count
 * (argument seeds are commutative joins gated on the SCC condensation,
 * callers strictly before callees).
 */
ModuleRanges moduleRanges(const wasm::Module &m, unsigned num_threads = 0);

/**
 * Per-function value-flow facts for the interprocedural constant
 * propagation solver (interproc/ipcp): one run of the intraprocedural
 * interval analysis under externally chosen argument seeds, reporting
 * how values leave the function (returns) and flow onward (direct-call
 * arguments).
 */
struct FunctionValueFlow {
    /** False when the solver hit its iteration cap; all other fields
     * are then meaningless and must be treated as top/unknown. */
    bool analyzed = false;

    /** A normal exit (return, function-level br, fall-through past the
     * final end) was reached by the analysis. Only tracked for
     * functions with exactly one i32 result. */
    bool returnSeen = false;

    /** Hull of the values live at every recorded exit. */
    Interval ret;

    /** Per direct callee: hull-joined argument intervals over every
     * reached call site. */
    std::map<uint32_t, std::vector<Interval>> callArgs;
};

/**
 * Analyze one defined function under argument seeds @p args (missing
 * or non-i32 entries read as top). When @p callee_rets is non-null,
 * `call` results of a callee whose entry holds an interval are pushed
 * as that interval instead of top — the hook the ipcp solver uses to
 * propagate return values bottom-up. Deterministic for fixed inputs.
 */
FunctionValueFlow
functionValueFlow(const wasm::Module &m, uint32_t func_idx,
                  const std::vector<Interval> &args,
                  const std::vector<std::optional<Interval>> *callee_rets);

/**
 * Test-only: override the per-function solver pop budget (0 restores
 * the default 64·blocks+4096 formula). Forces the iteration cap
 * deterministically so tests can cover the discard path; never set in
 * production — the claim checker must run the same budget as the
 * producer.
 */
void setRangeSolverBudgetForTest(uint64_t budget);

// ----- claims + manifest -------------------------------------------------

/** One claim: the load/store at (func, instr) is in bounds for every
 * execution given the module's declared minimum memory size. */
struct RangeClaim {
    uint32_t func = 0;
    uint32_t instr = 0;

    bool operator==(const RangeClaim &other) const = default;
};

struct RangeClaims {
    uint32_t minPages = 0;
    std::vector<RangeClaim> claims; ///< sorted by (func, instr)
};

/** All proven accesses of @p mr as a deterministic claim set. */
RangeClaims provableRangeClaims(const ModuleRanges &mr);

/** Serialize to the "wasabi-range-manifest" v1 JSON format. */
std::string rangeClaimsToManifest(const RangeClaims &c);

/** Does @p text declare `"schema": "wasabi-range-manifest"` at the
 * top level? Parses the object structurally (a substring sniff would
 * misroute files that merely mention the schema string in a value). */
bool isRangeManifest(const std::string &text);

/** Parse a manifest; on failure returns false and sets @p error. */
bool rangeClaimsFromManifest(const std::string &text, RangeClaims *out,
                             std::string *error);

/**
 * Re-prove every claim against @p m from scratch (check.range.*
 * codes): the declared memory must match (check.range.bad-memory),
 * every location must be a load/store of a defined function
 * (check.range.bad-location), and every claim must be re-derivable by
 * the analysis — claimed ⊆ provable (check.range.unprovable). An
 * empty result licenses bounds-check elision for the claimed set.
 */
Diagnostics checkRangeClaims(const wasm::Module &m, const RangeClaims &c,
                             unsigned num_threads = 0);

// ----- views -------------------------------------------------------------

/** Deterministic JSON rendering of the module's range facts. */
std::string rangesToJson(const wasm::Module &m, const ModuleRanges &mr);

/** CFG DOT of one function with per-block locals intervals. */
std::string rangesDot(const wasm::Module &m, const ModuleRanges &mr,
                      uint32_t func_idx);

} // namespace wasabi::static_analysis::passes

#endif // WASABI_STATIC_PASSES_RANGE_H
