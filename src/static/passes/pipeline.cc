#include "static/passes/pipeline.h"

#include <algorithm>
#include <cctype>
#include <set>

#include "core/control_stack.h"
#include "core/static_info.h"
#include "static/interproc/ipcp.h"
#include "static/interproc/refined_call_graph.h"
#include "static/interproc/summaries.h"
#include "static/passes/branch_refine.h"
#include "static/passes/constprop.h"
#include "static/passes/deadstore.h"
#include "static/passes/range.h"
#include "static/passes/reachability.h"

namespace wasabi::static_analysis::passes {

using wasm::Instr;
using wasm::Module;
using wasm::OpClass;

std::vector<std::pair<uint32_t, uint32_t>>
emptyBlockPairs(const Module &m, uint32_t func_idx)
{
    std::vector<std::pair<uint32_t, uint32_t>> pairs;
    const wasm::Function &func = m.functions.at(func_idx);
    if (func.imported() || func.body.empty())
        return pairs;
    std::vector<core::BlockMatch> matches =
        core::matchBlocks(func.body);
    for (uint32_t i = 0; i < func.body.size(); ++i) {
        OpClass cls = wasm::opInfo(func.body[i].op).cls;
        if ((cls == OpClass::Block || cls == OpClass::Loop) &&
            matches[i].endIdx == i + 1)
            pairs.emplace_back(i, i + 1);
    }
    return pairs;
}

namespace {

/** The lint.interproc.* findings: refined-graph-only dead functions,
 * always-trapping or unresolvable indirect call sites, reachable
 * effect-free functions (from the summary solver), never-read
 * parameters, and private functions the ipcp lattice proves return a
 * single constant. */
void
lintInterproc(const Module &m, const std::vector<bool> &base_dead,
              Diagnostics &diags)
{
    interproc::RefinedCallGraph rcg(m);
    diags.merge(rcg.table().diags);

    for (uint32_t f : rcg.deadFunctions()) {
        if (base_dead[f] || m.functions[f].imported())
            continue; // already reported as lint.deadcode.function
        diags.warning(kLintInterprocDeadFunction,
                      "function is only reachable through indirect "
                      "call sites the refinement proves it cannot "
                      "take: dead under the refined call graph",
                      f);
    }

    for (const interproc::CallSite &s : rcg.sites()) {
        if (s.kind == interproc::SiteKind::IndirectNone) {
            std::string why =
                s.constIndex
                    ? "its constant table index " +
                          std::to_string(*s.constIndex) +
                          " resolves to no callable function of the "
                          "expected signature"
                    : "no table entry matches the expected signature";
            diags.warning(kLintInterprocNoTargets,
                          "call_indirect has zero possible targets (" +
                              why + "); it always traps",
                          s.func, s.instr);
        } else if (s.kind == interproc::SiteKind::IndirectUnknown) {
            diags.add(Severity::Note, kLintInterprocUnresolvable,
                      "call_indirect cannot be refined: the table is "
                      "host-visible or its element layout is not "
                      "statically known",
                      s.func, s.instr);
        }
    }

    std::vector<interproc::EffectSummary> summaries =
        interproc::functionSummaries(m, rcg);
    for (uint32_t f = 0; f < m.numFunctions(); ++f) {
        if (m.functions[f].imported() || !rcg.reachable(f))
            continue;
        if (!m.funcType(f).results.empty())
            continue; // computes a value; calls are not removable
        if (summaries[f].effectFree()) {
            diags.add(Severity::Note, kLintInterprocEffectFree,
                      "reachable function has no observable effect "
                      "(no writes, traps, or host calls) and no "
                      "result: calls to it can be removed",
                      f);
        }
    }

    // Parameters no instruction ever reads: callers still compute and
    // pass the argument for nothing. Dead functions are skipped (the
    // whole function was already reported above).
    for (uint32_t f = 0; f < m.numFunctions(); ++f) {
        const wasm::Function &func = m.functions[f];
        if (func.imported() || func.body.empty() || !rcg.reachable(f))
            continue;
        const size_t n_params = m.funcType(f).params.size();
        std::vector<char> read(n_params, 0);
        for (const Instr &ins : func.body) {
            if (wasm::opInfo(ins.op).cls == OpClass::LocalGet &&
                ins.imm.idx < n_params)
                read[ins.imm.idx] = 1;
        }
        for (uint32_t p = 0; p < n_params; ++p) {
            if (!read[p])
                diags.add(Severity::Note, kLintInterprocDeadParam,
                          "parameter " + std::to_string(p) +
                              " is never read: every caller computes "
                              "and passes a value the function "
                              "ignores",
                          f);
        }
    }

    // Private functions the interprocedural constant/range lattice
    // proves always return the same constant. Effect-free functions
    // have no result, so this never double-reports with the
    // effect-free finding above.
    interproc::ModuleIpcp ipcp = interproc::ipcpSolve(m, 1);
    for (uint32_t f = 0; f < m.numFunctions(); ++f) {
        const interproc::FunctionIpcp &fi = ipcp.functions[f];
        if (!fi.defined || !rcg.reachable(f) ||
            !m.functions[f].exportNames.empty())
            continue;
        if (fi.retKnown && fi.ret.isConst())
            diags.add(Severity::Note, kLintInterprocConstReturn,
                      "private function always returns the constant " +
                          std::to_string(fi.ret.lo) +
                          ": callers could use the value directly",
                      f);
    }
}

/** The lint.range.* findings: accesses the interval domain proves out
 * of bounds, divisions by a provably zero divisor, and guard branches
 * whose condition is a range-derived constant. Guards the constant
 * pass already reported (lint.branch.const-condition) are skipped. */
void
lintRanges(const Module &m, const std::set<uint64_t> &const_cond_locs,
           Diagnostics &diags)
{
    ModuleRanges mr = moduleRanges(m, 1);
    const uint64_t minBytes = static_cast<uint64_t>(mr.minPages) *
                              65536;
    std::optional<uint64_t> maxBytes;
    if (mr.hasMemory && m.memories[0].limits.max)
        maxBytes = static_cast<uint64_t>(*m.memories[0].limits.max) *
                   65536;

    for (uint32_t f = 0; f < mr.functions.size(); ++f) {
        const FunctionRanges &fr = mr.functions[f];
        if (!fr.analyzed)
            continue;
        for (const MemAccess &a : fr.accesses) {
            uint64_t first = static_cast<uint64_t>(a.addr.lo) +
                             a.offset;
            const char *what = a.isStore ? "store" : "load";
            if (maxBytes && first + a.width > *maxBytes) {
                diags.warning(
                    kLintRangeOob,
                    std::string(what) + " of " +
                        std::to_string(a.width) + " bytes at address" +
                        " >= " + std::to_string(first) +
                        " always traps: memory can never exceed " +
                        std::to_string(*maxBytes) + " bytes",
                    f, a.instr);
            } else if (mr.hasMemory && first + a.width > minBytes) {
                diags.add(Severity::Note, kLintRangeGrowDependent,
                          std::string(what) + " of " +
                              std::to_string(a.width) +
                              " bytes at address >= " +
                              std::to_string(first) +
                              " traps unless memory is grown beyond "
                              "its declared minimum of " +
                              std::to_string(minBytes) + " bytes",
                          f, a.instr);
            }
        }
        for (uint32_t instr : fr.divByZero) {
            diags.warning(kLintRangeDivByZero,
                          "divisor is always zero: this instruction "
                          "always traps",
                          f, instr);
        }
        for (const DeadGuard &g : fr.deadGuards) {
            if (const_cond_locs.count(core::packLoc({f, g.instr})))
                continue;
            OpClass cls =
                wasm::opInfo(m.functions[f].body[g.instr].op).cls;
            diags.warning(
                kLintRangeDeadGuard,
                std::string(cls == OpClass::If ? "if" : "br_if") +
                    " condition is always " + std::to_string(g.value) +
                    " by value-range analysis",
                f, g.instr);
        }
    }
}

} // namespace

Diagnostics
lintModule(const Module &m)
{
    Diagnostics diags;
    ReachabilityFacts reach = reachabilityFacts(m);
    std::set<uint64_t> constCondLocs;

    std::vector<bool> dead(m.numFunctions(), false);
    for (uint32_t f : reach.deadFunctions)
        dead[f] = true;

    size_t range_pos = 0;
    for (uint32_t f = 0; f < m.numFunctions(); ++f) {
        const wasm::Function &func = m.functions[f];
        if (func.imported())
            continue;

        if (dead[f]) {
            diags.warning(kLintDeadFunction,
                          "function is never called: unreachable from "
                          "any export, the start function, or a "
                          "host-visible table",
                          f);
        }

        for (; range_pos < reach.unreachableBlocks.size() &&
               reach.unreachableBlocks[range_pos].func == f;
             ++range_pos) {
            const UnreachableRange &r =
                reach.unreachableBlocks[range_pos];
            diags.warning(kLintUnreachableCode,
                          "instructions " + std::to_string(r.first) +
                              ".." + std::to_string(r.last) +
                              " can never execute",
                          f, r.first);
        }

        ConstFacts facts = constantFacts(m, f);
        BranchRefinements refs = refineBranches(m, f, facts);
        for (const ConstCondition &c : refs.constConditions) {
            constCondLocs.insert(core::packLoc({c.func, c.instr}));
            std::string what = c.isIf ? "if" : "br_if";
            std::string effect =
                c.isIf ? (c.cond ? "the then-branch is always taken"
                                 : "the else-branch is always taken")
                       : (c.cond ? "the branch is always taken"
                                 : "the branch is never taken");
            diags.warning(kLintConstCondition,
                          what + " condition is always " +
                              std::to_string(c.cond) + ": " + effect,
                          c.func, c.instr);
        }
        for (const ConstBrTable &t : refs.constBrTables) {
            std::string which =
                t.isDefault ? "the default case"
                            : "case " + std::to_string(t.index);
            diags.warning(kLintConstIndex,
                          "br_table index is always " +
                              std::to_string(t.index) +
                              ": always takes " + which + " (label " +
                              std::to_string(t.label) + " -> instr " +
                              std::to_string(t.target) + ")",
                          t.func, t.instr);
        }

        for (const DeadStore &s : deadStores(m, f)) {
            diags.warning(kLintDeadStore,
                          "value stored to local " +
                              std::to_string(s.local) +
                              " is never read",
                          s.func, s.instr);
        }

        for (auto [begin, end] : emptyBlockPairs(m, f)) {
            OpClass cls = wasm::opInfo(func.body[begin].op).cls;
            diags.add(Severity::Note, kLintEmptyBlock,
                      std::string(cls == OpClass::Loop ? "loop"
                                                       : "block") +
                          " is empty (end at instr " +
                          std::to_string(end) + ")",
                      f, begin);
        }
    }
    lintInterproc(m, dead, diags);
    lintRanges(m, constCondLocs, diags);
    return diags;
}

core::HookOptimizationPlan
computePlan(const Module &m)
{
    core::HookOptimizationPlan plan;
    ReachabilityFacts reach = reachabilityFacts(m);

    // Dead-function elision is widened to the refined call graph —
    // a strict superset of reach.deadFunctions whenever constant-index
    // call_indirect sites prune whole-table edges. The checker
    // re-proves each claim against the same refined graph.
    interproc::RefinedCallGraph rcg(m);
    for (uint32_t f : rcg.deadFunctions()) {
        if (!m.functions[f].imported())
            plan.deadFunctions.insert(f);
    }

    for (const UnreachableRange &r : reach.unreachableBlocks) {
        if (plan.deadFunctions.count(r.func))
            continue; // subsumed: no hooks in the whole function
        const wasm::Function &func = m.functions[r.func];
        for (uint32_t i = r.first; i <= r.last; ++i) {
            // Never skip an `else`: its begin hook is emitted at the
            // top of the else *region*, which can be live even when
            // the `else` instruction itself is CFG-unreachable
            // (then-region ends in br).
            if (wasm::opInfo(func.body[i].op).cls == OpClass::Else)
                continue;
            plan.skips.insert(core::packLoc({r.func, i}));
        }
    }

    for (uint32_t f = 0; f < m.numFunctions(); ++f) {
        if (m.functions[f].imported() || plan.deadFunctions.count(f))
            continue;
        ConstFacts facts = constantFacts(m, f);
        for (const auto &[key, index] : facts.brTableIndex) {
            if (!plan.skips.count(key))
                plan.constBrTableIndex[key] = index;
        }
        for (auto [begin, end] : emptyBlockPairs(m, f)) {
            uint64_t bkey = core::packLoc({f, begin});
            uint64_t ekey = core::packLoc({f, end});
            if (plan.skips.count(bkey) || plan.skips.count(ekey))
                continue; // subsumed by unreachability
            plan.elidedBegins.insert(bkey);
            plan.elidedEnds.insert(ekey);
        }
    }

    // Constant-index call_indirect sites with a unique proven target:
    // narrow the indirect call_pre hook to the direct variant. The
    // site kind already encodes every soundness gate (exact element
    // layout, non-host-visible table, in-range slot, signature match).
    for (const interproc::CallSite &s : rcg.sites()) {
        if (s.kind != interproc::SiteKind::IndirectConst)
            continue;
        uint64_t key = core::packLoc({s.func, s.instr});
        if (plan.deadFunctions.count(s.func) || plan.skips.count(key))
            continue; // subsumed: no hooks at this site anyway
        plan.constCallTargets[key] =
            core::HookOptimizationPlan::CallTargetClaim{
                *s.constIndex, s.targets[0]};
    }
    return plan;
}

// ----- manifest serialization ----------------------------------------

namespace {

core::Location
unpackLoc(uint64_t key)
{
    return core::Location{static_cast<uint32_t>(key >> 32),
                          static_cast<uint32_t>(key)};
}

/** Sorted copy, for deterministic manifests. */
template <typename Set>
std::vector<uint64_t>
sorted(const Set &s)
{
    std::vector<uint64_t> v(s.begin(), s.end());
    std::sort(v.begin(), v.end());
    return v;
}

} // namespace

std::string
planToManifest(const core::HookOptimizationPlan &plan)
{
    std::string out = "{\n  \"version\": 1,\n  \"skips\": [";
    bool first = true;
    for (uint64_t key : sorted(plan.skips)) {
        core::Location loc = unpackLoc(key);
        out += std::string(first ? "" : ", ") + "[" +
               std::to_string(loc.func) + ", " +
               std::to_string(loc.instr) + "]";
        first = false;
    }
    out += "],\n  \"deadFunctions\": [";
    first = true;
    for (uint64_t f : sorted(plan.deadFunctions)) {
        out += std::string(first ? "" : ", ") + std::to_string(f);
        first = false;
    }
    out += "],\n  \"brTableToBr\": [";
    first = true;
    {
        std::vector<uint64_t> keys;
        for (const auto &[key, _] : plan.constBrTableIndex)
            keys.push_back(key);
        std::sort(keys.begin(), keys.end());
        for (uint64_t key : keys) {
            core::Location loc = unpackLoc(key);
            out += std::string(first ? "" : ", ") + "[" +
                   std::to_string(loc.func) + ", " +
                   std::to_string(loc.instr) + ", " +
                   std::to_string(plan.constBrTableIndex.at(key)) +
                   "]";
            first = false;
        }
    }
    out += "],\n  \"elidedBlocks\": [";
    first = true;
    for (uint64_t key : sorted(plan.elidedBegins)) {
        core::Location loc = unpackLoc(key);
        out += std::string(first ? "" : ", ") + "[" +
               std::to_string(loc.func) + ", " +
               std::to_string(loc.instr) + ", " +
               std::to_string(loc.instr + 1) + "]";
        first = false;
    }
    out += "],\n  \"callIndirectToCall\": [";
    first = true;
    {
        std::vector<uint64_t> keys;
        for (const auto &[key, _] : plan.constCallTargets)
            keys.push_back(key);
        std::sort(keys.begin(), keys.end());
        for (uint64_t key : keys) {
            core::Location loc = unpackLoc(key);
            const auto &claim = plan.constCallTargets.at(key);
            out += std::string(first ? "" : ", ") + "[" +
                   std::to_string(loc.func) + ", " +
                   std::to_string(loc.instr) + ", " +
                   std::to_string(claim.tableIndex) + ", " +
                   std::to_string(claim.target) + "]";
            first = false;
        }
    }
    out += "]\n}\n";
    return out;
}

// ----- manifest parsing ----------------------------------------------

namespace {

/** A minimal parser for the manifest's JSON subset: objects with
 * string keys, arrays, and non-negative integers. No external JSON
 * dependency is available (or needed). */
class ManifestParser {
  public:
    explicit ManifestParser(const std::string &text) : text_(text) {}

    bool
    parse(core::HookOptimizationPlan &plan, std::string &error)
    {
        skipWs();
        if (!expect('{')) {
            error = err_;
            return false;
        }
        bool first = true;
        while (true) {
            skipWs();
            if (peek() == '}') {
                ++pos_;
                break;
            }
            if (!first && !expect(',')) {
                error = err_;
                return false;
            }
            first = false;
            skipWs();
            std::string key;
            if (!parseString(key)) {
                error = err_;
                return false;
            }
            skipWs();
            if (!expect(':')) {
                error = err_;
                return false;
            }
            skipWs();
            if (!parseField(key, plan)) {
                error = err_;
                return false;
            }
        }
        skipWs();
        if (pos_ != text_.size()) {
            error = "trailing characters after manifest object";
            return false;
        }
        if (!sawVersion_) {
            error = "manifest lacks a \"version\" field";
            return false;
        }
        return true;
    }

  private:
    char
    peek() const
    {
        return pos_ < text_.size() ? text_[pos_] : '\0';
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool
    expect(char c)
    {
        if (peek() != c) {
            err_ = std::string("expected '") + c + "' at offset " +
                   std::to_string(pos_);
            return false;
        }
        ++pos_;
        return true;
    }

    bool
    parseString(std::string &out)
    {
        if (!expect('"'))
            return false;
        out.clear();
        while (pos_ < text_.size() && text_[pos_] != '"') {
            if (text_[pos_] == '\\') {
                err_ = "escape sequences not supported in manifest "
                       "keys";
                return false;
            }
            out += text_[pos_++];
        }
        return expect('"');
    }

    bool
    parseUint(uint64_t &out)
    {
        if (!std::isdigit(static_cast<unsigned char>(peek()))) {
            err_ = "expected a number at offset " +
                   std::to_string(pos_);
            return false;
        }
        out = 0;
        while (std::isdigit(static_cast<unsigned char>(peek()))) {
            out = out * 10 + static_cast<uint64_t>(peek() - '0');
            if (out > 0xFFFFFFFFull) {
                err_ = "number out of range at offset " +
                       std::to_string(pos_);
                return false;
            }
            ++pos_;
        }
        return true;
    }

    /** Parse "[n, n, ...]" rows of fixed width into @p rows. */
    bool
    parseRows(size_t width, std::vector<std::vector<uint64_t>> &rows)
    {
        if (!expect('['))
            return false;
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            std::vector<uint64_t> row;
            if (width == 1) {
                uint64_t v;
                if (!parseUint(v))
                    return false;
                row.push_back(v);
            } else {
                if (!expect('['))
                    return false;
                for (size_t k = 0; k < width; ++k) {
                    skipWs();
                    if (k && !expect(','))
                        return false;
                    skipWs();
                    uint64_t v;
                    if (!parseUint(v))
                        return false;
                    row.push_back(v);
                }
                skipWs();
                if (!expect(']'))
                    return false;
            }
            rows.push_back(std::move(row));
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            return expect(']');
        }
    }

    bool
    parseField(const std::string &key,
               core::HookOptimizationPlan &plan)
    {
        if (key == "version") {
            uint64_t v;
            if (!parseUint(v))
                return false;
            if (v != 1) {
                err_ = "unsupported manifest version " +
                       std::to_string(v);
                return false;
            }
            sawVersion_ = true;
            return true;
        }
        std::vector<std::vector<uint64_t>> rows;
        if (key == "skips") {
            if (!parseRows(2, rows))
                return false;
            for (const auto &r : rows)
                plan.skips.insert(core::packLoc(
                    {static_cast<uint32_t>(r[0]),
                     static_cast<uint32_t>(r[1])}));
            return true;
        }
        if (key == "deadFunctions") {
            if (!parseRows(1, rows))
                return false;
            for (const auto &r : rows)
                plan.deadFunctions.insert(
                    static_cast<uint32_t>(r[0]));
            return true;
        }
        if (key == "brTableToBr") {
            if (!parseRows(3, rows))
                return false;
            for (const auto &r : rows)
                plan.constBrTableIndex[core::packLoc(
                    {static_cast<uint32_t>(r[0]),
                     static_cast<uint32_t>(r[1])})] =
                    static_cast<uint32_t>(r[2]);
            return true;
        }
        if (key == "callIndirectToCall") {
            if (!parseRows(4, rows))
                return false;
            for (const auto &r : rows)
                plan.constCallTargets[core::packLoc(
                    {static_cast<uint32_t>(r[0]),
                     static_cast<uint32_t>(r[1])})] =
                    core::HookOptimizationPlan::CallTargetClaim{
                        static_cast<uint32_t>(r[2]),
                        static_cast<uint32_t>(r[3])};
            return true;
        }
        if (key == "elidedBlocks") {
            if (!parseRows(3, rows))
                return false;
            for (const auto &r : rows) {
                if (r[2] != r[1] + 1) {
                    err_ = "elided block end must be begin + 1";
                    return false;
                }
                plan.elidedBegins.insert(core::packLoc(
                    {static_cast<uint32_t>(r[0]),
                     static_cast<uint32_t>(r[1])}));
                plan.elidedEnds.insert(core::packLoc(
                    {static_cast<uint32_t>(r[0]),
                     static_cast<uint32_t>(r[2])}));
            }
            return true;
        }
        err_ = "unknown manifest field \"" + key + "\"";
        return false;
    }

    const std::string &text_;
    size_t pos_ = 0;
    bool sawVersion_ = false;
    std::string err_;
};

} // namespace

std::optional<core::HookOptimizationPlan>
planFromManifest(const std::string &text, std::string *error)
{
    core::HookOptimizationPlan plan;
    std::string err;
    if (!ManifestParser(text).parse(plan, err)) {
        if (error)
            *error = err;
        return std::nullopt;
    }
    return plan;
}

} // namespace wasabi::static_analysis::passes
