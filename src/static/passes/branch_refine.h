/**
 * @file
 * Branch-target refinement (pass 4): consumes the constant facts of
 * pass 1 and resolves what they mean for control flow — a constant
 * `br_if`/`if` condition pins the taken edge, and a constant
 * `br_table` index collapses the whole jump table to one statically
 * known label (resolved to an absolute target location through the
 * abstract control stack, paper §2.4.4). Feeds `wasabi lint`
 * (lint.branch.*) and the `--optimize-hooks` plan (br_table -> br
 * hook narrowing).
 */

#ifndef WASABI_STATIC_PASSES_BRANCH_REFINE_H
#define WASABI_STATIC_PASSES_BRANCH_REFINE_H

#include <cstdint>
#include <vector>

#include "static/passes/constprop.h"
#include "wasm/module.h"

namespace wasabi::static_analysis::passes {

/** A br_if / if whose condition is the same constant on every run. */
struct ConstCondition {
    uint32_t func = 0;
    uint32_t instr = 0;
    uint32_t cond = 0;   ///< the constant condition value
    bool isIf = false;   ///< `if` rather than `br_if`
};

/** A br_table whose index is constant: always the same case. */
struct ConstBrTable {
    uint32_t func = 0;
    uint32_t instr = 0;
    uint32_t index = 0;     ///< the constant index value
    uint32_t label = 0;     ///< relative label the table selects
    uint32_t target = 0;    ///< absolute target instruction index
    bool isDefault = false; ///< index falls into the default case
};

struct BranchRefinements {
    std::vector<ConstCondition> constConditions;
    std::vector<ConstBrTable> constBrTables;
};

/** Refine the branches of defined function @p func_idx using the
 * constant facts computed for the same function. */
BranchRefinements refineBranches(const wasm::Module &m,
                                 uint32_t func_idx,
                                 const ConstFacts &facts);

} // namespace wasabi::static_analysis::passes

#endif // WASABI_STATIC_PASSES_BRANCH_REFINE_H
