/**
 * @file
 * Dead-store-to-local detection (pass 3): a backward liveness
 * analysis over the function's locals (BitSet lattice, union merge,
 * solved with the solveBackward worklist solver). A `local.set` whose
 * local is not live-out at the store is a dead store — its value can
 * never be observed by a `local.get`. Feeds `wasabi lint`
 * (lint.deadstore.local) and the `wasabi opt` dead-store pass, which
 * rewrites each reported `local.set` to a `drop` and whose manifest
 * checker re-runs this analysis to re-prove every elision.
 */

#ifndef WASABI_STATIC_PASSES_DEADSTORE_H
#define WASABI_STATIC_PASSES_DEADSTORE_H

#include <cstdint>
#include <vector>

#include "wasm/module.h"

namespace wasabi::static_analysis::passes {

/** One dead `local.set`: the stored value is never read. */
struct DeadStore {
    uint32_t func = 0;
    uint32_t instr = 0;
    uint32_t local = 0;
};

/** Find dead stores in defined function @p func_idx. Stores in
 * CFG-unreachable code are not reported (reachability already flags
 * the whole range). */
std::vector<DeadStore> deadStores(const wasm::Module &m,
                                  uint32_t func_idx);

} // namespace wasabi::static_analysis::passes

#endif // WASABI_STATIC_PASSES_DEADSTORE_H
