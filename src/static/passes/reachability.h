/**
 * @file
 * Reachability (pass 2): intra-procedural unreachable basic blocks
 * (from the CFG entry, via the PR-1 reachableBlocks dataflow instance)
 * plus call-graph dead functions (unreachable from any export, the
 * start function, or a host-visible table). Feeds
 *  - `wasabi lint` (lint.unreachable.code / lint.deadcode.function),
 *  - the `--optimize-hooks` plan (hook-emission skips), and
 *  - `wasabi check --manifest=` (re-verification of every skip claim).
 */

#ifndef WASABI_STATIC_PASSES_REACHABILITY_H
#define WASABI_STATIC_PASSES_REACHABILITY_H

#include <cstdint>
#include <vector>

#include "wasm/module.h"

namespace wasabi::static_analysis::passes {

/** One maximal CFG-unreachable instruction range of a function. */
struct UnreachableRange {
    uint32_t func = 0;
    uint32_t first = 0; ///< inclusive
    uint32_t last = 0;  ///< inclusive
};

struct ReachabilityFacts {
    /** Unreachable basic blocks, in (func, first) order. */
    std::vector<UnreachableRange> unreachableBlocks;

    /** Defined functions unreachable from the call-graph roots. */
    std::vector<uint32_t> deadFunctions;
};

/** Compute reachability facts for the whole validated module. */
ReachabilityFacts reachabilityFacts(const wasm::Module &m);

} // namespace wasabi::static_analysis::passes

#endif // WASABI_STATIC_PASSES_REACHABILITY_H
