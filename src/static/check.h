/**
 * @file
 * The instrumentation-invariant checker behind `wasabi check`: given
 * an original module and its Wasabi-instrumented counterpart, it
 * statically verifies the properties the paper's RQ2 faithfulness
 * argument rests on:
 *
 *  - every low-level hook import is monomorphic and well-typed
 *    (§2.4.3): its name parses back to a unique HookSpec whose
 *    lowLevelType matches the import's declared function type;
 *  - selective instrumentation (§2.4.2): every reachable instruction
 *    of an enabled hook class carries a hook call at its exact
 *    (function, instruction) location, and no instruction of a
 *    disabled class is instrumented;
 *  - hook-call locations are constant and consistent: the two leading
 *    i32 arguments are literal constants naming an original-module
 *    location whose instruction class matches the hook's kind;
 *  - i64 splitting (§2.4.6): at every hook call site, each i64
 *    operand travels as a (low, high) pair of i32s derived from the
 *    same value;
 *  - br_table side tables (§2.4.5) cover every target, with branch
 *    targets and traversed-block lists matching an independent
 *    re-resolution via the abstract control stack;
 *  - module structure is preserved: function/global/memory/table
 *    signatures, exports, element segments and the start function
 *    survive instrumentation modulo the hook-import index shift.
 *
 * Hook calls are recovered from the instrumented binary with a small
 * symbolic evaluator over each function body (a degenerate forward
 * dataflow on straight-line regions), so the checker is independent
 * of the instrumenter's traversal order and works on binaries from
 * parallel instrumentation runs, where hook ids are nondeterministic.
 */

#ifndef WASABI_STATIC_CHECK_H
#define WASABI_STATIC_CHECK_H

#include <optional>
#include <string>

#include "core/static_info.h"
#include "static/diagnostics.h"

namespace wasabi::static_analysis {

struct CheckOptions {
    /** Import-module name of the hook imports. */
    std::string importModule = "wasabi";

    /** The hook kinds that were requested at instrumentation time.
     * When unset, the set is inferred from the hook imports actually
     * present (an enabled-but-unused kind leaves no trace, so
     * inference is exact for coverage purposes but cannot flag
     * imports of kinds the user never enabled). */
    std::optional<core::HookSet> hooks;

    /** Whether the i64-split ABI was used; auto-detected from the
     * hook import types when unset. */
    std::optional<bool> splitI64;

    /**
     * Verify branch-target/side-table metadata. Without a StaticInfo
     * (the two-binary CLI path) the metadata is not part of the
     * artifact, so the checker re-runs the instrumenter on the
     * original and checks the freshly produced metadata instead —
     * this also cross-checks that the artifact's hook-import set
     * matches what the instrumenter produces today.
     */
    bool checkSideTables = true;

    /**
     * Hook-optimization plan the instrumented module was produced
     * with (`wasabi check --manifest=`). Every per-site deviation the
     * plan licenses is *re-verified* against the original module
     * (skips must be CFG-unreachable, dead functions call-graph dead,
     * narrowed br_tables provably constant-index, elided blocks
     * empty; check.manifest.* codes otherwise), and the licensed
     * sites are then exempted from the completeness requirements.
     * When checking against a StaticInfo that carries its own plan,
     * the info's plan wins.
     */
    std::optional<core::HookOptimizationPlan> plan;
};

/**
 * Check @p instrumented against @p original. Returns all findings;
 * an empty list means every invariant holds.
 */
Diagnostics checkInstrumentation(const wasm::Module &original,
                                 const wasm::Module &instrumented,
                                 const CheckOptions &opts = {});

/**
 * Check with full instrumentation metadata (the in-process path used
 * by tests and the fuzz harness): hook identities, the enabled hook
 * set, the split flag and the side tables come from @p info instead
 * of being recovered from the binary.
 */
Diagnostics checkInstrumentation(const core::StaticInfo &info,
                                 const wasm::Module &instrumented);

/**
 * Re-prove a range-claim manifest (`wasabi check --manifest=` with a
 * "wasabi-range-manifest"): parse @p manifest_text and re-derive every
 * claimed in-bounds access from @p original with the value-range
 * analysis. Parse failures surface as check.range.bad-manifest;
 * semantic failures as check.range.* codes from the range pass. An
 * empty result licenses engine bounds-check elision for the claims.
 */
Diagnostics checkRangeManifest(const wasm::Module &original,
                               const std::string &manifest_text,
                               unsigned num_threads = 1);

} // namespace wasabi::static_analysis

#endif // WASABI_STATIC_CHECK_H
