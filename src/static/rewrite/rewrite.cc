#include "static/rewrite/rewrite.h"

#include <algorithm>

namespace wasabi::static_analysis::rewrite {

using wasm::Function;
using wasm::FuncType;
using wasm::Global;
using wasm::IndexRemap;
using wasm::Instr;
using wasm::kDeletedIndex;
using wasm::Module;
using wasm::Opcode;
using wasm::ValType;

namespace {

void
checkFuncIndex(const Module &m, uint32_t idx, const char *what)
{
    if (idx >= m.functions.size())
        throw RewriteError("rewrite.bad-index",
                           std::string(what) + ": function index " +
                               std::to_string(idx) + " out of range");
}

} // namespace

void
ModuleRewriter::deleteFunction(uint32_t idx)
{
    checkFuncIndex(m_, idx, "deleteFunction");
    deletions_.insert(idx);
}

uint32_t
ModuleRewriter::addFunction(Function f)
{
    if (f.imported())
        throw RewriteError("rewrite.add-imported",
                           "addFunction only accepts defined functions");
    uint32_t handle =
        kNewFuncHandle + static_cast<uint32_t>(newFunctions_.size());
    newFunctions_.push_back(std::move(f));
    return handle;
}

void
ModuleRewriter::replaceBody(uint32_t idx, std::vector<Instr> body,
                            std::optional<std::vector<ValType>> locals)
{
    checkFuncIndex(m_, idx, "replaceBody");
    if (m_.functions[idx].imported())
        throw RewriteError("rewrite.bad-index",
                           "replaceBody: function " + std::to_string(idx) +
                               " is imported and has no body");
    bodyReplacements_[idx] = {std::move(body), std::move(locals)};
}

uint32_t
ModuleRewriter::addType(const FuncType &type)
{
    for (uint32_t i = 0; i < m_.types.size(); ++i) {
        if (m_.types[i] == type)
            return i;
    }
    for (uint32_t i = 0; i < newTypes_.size(); ++i) {
        if (newTypes_[i] == type)
            return static_cast<uint32_t>(m_.types.size()) + i;
    }
    newTypes_.push_back(type);
    return static_cast<uint32_t>(m_.types.size() + newTypes_.size() - 1);
}

uint32_t
ModuleRewriter::addGlobal(Global g)
{
    if (g.imported())
        throw RewriteError("rewrite.add-imported",
                           "addGlobal only accepts defined globals");
    newGlobals_.push_back(std::move(g));
    return static_cast<uint32_t>(m_.globals.size() + newGlobals_.size() -
                                 1);
}

void
ModuleRewriter::setGlobalInit(uint32_t idx, std::vector<Instr> init)
{
    if (idx >= m_.globals.size() + newGlobals_.size())
        throw RewriteError("rewrite.bad-index",
                           "setGlobalInit: global index " +
                               std::to_string(idx) + " out of range");
    if (idx < m_.globals.size() && m_.globals[idx].imported())
        throw RewriteError("rewrite.bad-index",
                           "setGlobalInit: global " + std::to_string(idx) +
                               " is imported and has no initializer");
    globalInits_[idx] = std::move(init);
}

void
ModuleRewriter::setElementFuncs(uint32_t seg, std::vector<uint32_t> funcs)
{
    if (seg >= m_.elements.size())
        throw RewriteError("rewrite.bad-index",
                           "setElementFuncs: segment " +
                               std::to_string(seg) + " out of range");
    elementFuncs_[seg] = std::move(funcs);
}

void
ModuleRewriter::setStart(std::optional<uint32_t> func)
{
    start_ = func;
}

bool
ModuleRewriter::hasEdits() const
{
    return !deletions_.empty() || !newFunctions_.empty() ||
           !bodyReplacements_.empty() || !newTypes_.empty() ||
           !newGlobals_.empty() || !globalInits_.empty() ||
           !elementFuncs_.empty() || start_.has_value();
}

RewriteResult
ModuleRewriter::apply() const
{
    RewriteResult result;
    Module &out = result.module;
    out = m_;

    if (!hasEdits())
        return result; // byte-identity: untouched copy, identity remap

    // In-place edits, still in the original index space.
    for (const auto &[idx, repl] : bodyReplacements_) {
        out.functions[idx].body = repl.first;
        if (repl.second)
            out.functions[idx].locals = *repl.second;
    }
    out.types.insert(out.types.end(), newTypes_.begin(), newTypes_.end());
    out.globals.insert(out.globals.end(), newGlobals_.begin(),
                       newGlobals_.end());
    for (const auto &[idx, init] : globalInits_)
        out.globals[idx].init = init;
    for (const auto &[seg, funcs] : elementFuncs_)
        out.elements[seg].funcIdxs = funcs;
    if (start_)
        out.start = *start_;

    // Compact the function vector and build the old->new map.
    const uint32_t orig_count = m_.numFunctions();
    uint32_t kept = 0;
    IndexRemap &remap = result.remap;
    if (!deletions_.empty()) {
        remap.funcMap.assign(orig_count, kDeletedIndex);
        std::vector<Function> compacted;
        compacted.reserve(orig_count - deletions_.size() +
                          newFunctions_.size());
        for (uint32_t i = 0; i < orig_count; ++i) {
            if (deletions_.count(i)) {
                if (!out.functions[i].exportNames.empty())
                    throw RewriteError(
                        "rewrite.delete-exported",
                        "function " + std::to_string(i) +
                            " is exported as \"" +
                            out.functions[i].exportNames.front() +
                            "\" and cannot be deleted");
                continue;
            }
            remap.funcMap[i] = kept++;
            compacted.push_back(std::move(out.functions[i]));
        }
        out.functions = std::move(compacted);
    } else {
        kept = orig_count;
    }

    // Append new functions and resolve their final indices.
    for (uint32_t n = 0; n < newFunctions_.size(); ++n) {
        result.newFunctionIndices.push_back(kept + n);
        out.functions.push_back(newFunctions_[n]);
    }

    // Fix every index reference through the shared fixup layer. New
    // function handles (>= kNewFuncHandle) pass through untouched —
    // they are outside the original index space.
    remapModule(out, remap);

    // Resolve handles to the final appended indices.
    auto resolve = [&](uint32_t idx, const char *context) {
        if (idx < kNewFuncHandle)
            return idx;
        uint32_t n = idx - kNewFuncHandle;
        if (n >= newFunctions_.size())
            throw RewriteError("rewrite.bad-handle",
                               std::string(context) +
                                   ": unknown new-function handle " +
                                   std::to_string(idx));
        return kept + n;
    };
    for (Function &f : out.functions) {
        for (Instr &instr : f.body) {
            if (instr.op == Opcode::Call)
                instr.imm.idx = resolve(instr.imm.idx, "call");
        }
    }
    for (wasm::ElementSegment &seg : out.elements) {
        for (uint32_t &f : seg.funcIdxs)
            f = resolve(f, "element segment");
    }
    if (out.start)
        out.start = resolve(*out.start, "start section");

    return result;
}

} // namespace wasabi::static_analysis::rewrite
