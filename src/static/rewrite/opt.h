/**
 * @file
 * The applied-pass layer on top of the rewriting API: turns the
 * static facts of PRs 1–3 into actual binary transforms, each with a
 * machine-checkable claim trail.
 *
 * Passes (always applied in this fixed order):
 *  - "dead-functions": strip defined, non-exported, non-start
 *    functions that the refined interprocedural call graph proves
 *    unreachable and that no surviving code or element segment
 *    references.
 *  - "call-indirect": rewrite `call_indirect` sites the refined graph
 *    resolves to a unique target (constant index, exact non-host-
 *    visible table layout) into `drop` + direct `call`.
 *  - "ipo-const": consume the interprocedural constant-propagation
 *    lattices (interproc/ipcp): replace `local.get` of a provably
 *    constant parameter in a private callee with the constant, and
 *    fold calls to pure, terminating, constant-returning callees into
 *    argument drops + the constant.
 *  - "inline": splice trivial (≤ budget) callees into their direct
 *    call sites — arguments pop into fresh appended locals, declared
 *    callee locals are re-zeroed, the body grafts inside one wrapper
 *    block so function-level branches retarget to it and `return`
 *    becomes `br`; callees left without any reference are stripped.
 *  - "table-compact": when every `call_indirect` consumes a literal
 *    constant index hitting an occupied slot of a private, exactly
 *    known table, rebuild the element section to just the referenced
 *    slots, patch the index constants, shrink the table, and strip
 *    element-pinned functions nothing references anymore.
 *  - "const-fold": peephole-fold adjacent provably-constant i32
 *    sequences ([const, unop], [const, const, binop],
 *    [const, const, const, select]) into a single `i32.const`,
 *    reusing the constprop lattice's fold semantics (trapping inputs
 *    are never folded).
 *  - "dead-stores": rewrite `local.set` instructions whose value the
 *    backward liveness pass proves unread into `drop`.
 *  - "empty-blocks": delete `block`/`loop` begin+end pairs with empty
 *    bodies (no label can target them, so deletion is depth-safe).
 *
 * Every transform is recorded as a claim in the coordinates of the
 * module *as it was at the start of that pass*; the claim set
 * serializes to a JSON manifest ("wasabi-opt-manifest"), and
 * checkOptimization() re-proves each claim by replaying the pass
 * pipeline on the original module — re-deriving the licensing fact,
 * verifying the claim against it, applying the claimed edit — and
 * finally requiring the replayed encoding to be byte-identical to the
 * shipped optimized binary. A manifest that claims anything the facts
 * do not prove, or a binary that differs from the claims, fails with
 * a stable check.opt.* diagnostic.
 */

#ifndef WASABI_STATIC_REWRITE_OPT_H
#define WASABI_STATIC_REWRITE_OPT_H

#include <cstdint>
#include <string>
#include <vector>

#include "static/diagnostics.h"
#include "wasm/module.h"

namespace wasabi::static_analysis::rewrite {

/** One call_indirect -> direct call rewrite. `func`/`instr` locate
 * the call_indirect in the pass-input module; `typeIdx` is its type
 * immediate (re-checked), `target` the proven unique callee. */
struct DirectCallClaim {
    uint32_t func = 0;
    uint32_t instr = 0;
    uint32_t typeIdx = 0;
    uint32_t target = 0;
};

/** One constant fold: body[first .. first+count) of `func` evaluates
 * to the single constant `value`. Claims within one function are
 * sequential — each one's coordinates refer to the body state after
 * the previous claims in that function were applied. */
struct ConstFoldClaim {
    uint32_t func = 0;
    uint32_t first = 0;
    uint32_t count = 0;
    uint32_t value = 0;
};

/** One dead `local.set` rewritten to `drop`. */
struct DeadStoreClaim {
    uint32_t func = 0;
    uint32_t instr = 0;
    uint32_t local = 0;
};

/** One empty block/loop begin+end pair deleted; `begin` indexes the
 * opening instruction in the pass-input body. */
struct EmptyBlockClaim {
    uint32_t func = 0;
    uint32_t begin = 0;
};

/** One `local.get` of a provably constant parameter replaced with
 * `i32.const value`; `func` is the callee being specialized. */
struct IpoConstArgClaim {
    uint32_t func = 0;
    uint32_t instr = 0;
    uint32_t local = 0;
    uint32_t value = 0;

    bool operator==(const IpoConstArgClaim &other) const = default;
};

/** One call to a pure, terminating, constant-returning callee folded:
 * the `call` at (func, instr) becomes one `drop` per callee parameter
 * plus `i32.const value`. */
struct IpoConstReturnClaim {
    uint32_t func = 0;
    uint32_t instr = 0;
    uint32_t callee = 0;
    uint32_t value = 0;

    bool operator==(const IpoConstReturnClaim &other) const = default;
};

/** One direct call spliced with its callee's body. */
struct InlineClaim {
    uint32_t func = 0;
    uint32_t instr = 0;
    uint32_t callee = 0;

    bool operator==(const InlineClaim &other) const = default;
};

/** One surviving table slot: `oldSlot` in the pass-input layout maps
 * to the claim's position in the claim list (the new slot), holding
 * function `funcIdx`. */
struct TableSlotClaim {
    uint32_t oldSlot = 0;
    uint32_t funcIdx = 0;

    bool operator==(const TableSlotClaim &other) const = default;
};

/** One patched `i32.const` table-index operand of a call_indirect. */
struct TableIndexRewriteClaim {
    uint32_t func = 0;
    uint32_t instr = 0;
    uint32_t oldIndex = 0;
    uint32_t newIndex = 0;

    bool operator==(const TableIndexRewriteClaim &other) const = default;
};

/** The full claim trail of one optimization run. */
struct OptClaims {
    /** Pass names in applied order (subset of allOptPasses()). */
    std::vector<std::string> passes;
    std::vector<uint32_t> strippedFunctions;
    std::vector<DirectCallClaim> directCalls;
    std::vector<IpoConstArgClaim> ipoConstArgs;
    std::vector<IpoConstReturnClaim> ipoConstReturns;
    std::vector<InlineClaim> inlinedCalls;
    /** Callees left referenceless after inlining and stripped. */
    std::vector<uint32_t> inlineStripped;
    std::vector<TableSlotClaim> tableSlots;
    std::vector<TableIndexRewriteClaim> tableIndexRewrites;
    /** Formerly element-pinned functions stripped by table-compact. */
    std::vector<uint32_t> tableStripped;
    std::vector<ConstFoldClaim> constFolds;
    std::vector<DeadStoreClaim> deadStores;
    std::vector<EmptyBlockClaim> emptyBlocks;

    size_t
    totalClaims() const
    {
        return strippedFunctions.size() + directCalls.size() +
               ipoConstArgs.size() + ipoConstReturns.size() +
               inlinedCalls.size() + inlineStripped.size() +
               tableSlots.size() + tableIndexRewrites.size() +
               tableStripped.size() + constFolds.size() +
               deadStores.size() + emptyBlocks.size();
    }
};

/** Result of optimize(). */
struct OptResult {
    wasm::Module module;
    OptClaims claims;
};

/** All pass names in canonical application order. */
const std::vector<std::string> &allOptPasses();

/** True if @p name is a known pass name. */
bool isOptPass(const std::string &name);

/**
 * Parse a `--passes=` style spec: "all" or "" selects every pass;
 * otherwise a comma-separated subset of allOptPasses(). Throws
 * RewriteError("opt.unknown-pass") naming the offending entry and
 * listing the valid pass names on any unknown or empty element.
 */
std::vector<std::string> parsePassSpec(const std::string &spec);

/**
 * Run the named passes (any subset of allOptPasses(), applied in
 * canonical order regardless of the order given) over validated
 * module @p m and return the optimized module plus its claim trail.
 * Throws RewriteError on unknown pass names.
 */
OptResult optimize(const wasm::Module &m,
                   const std::vector<std::string> &passes);

/** Serialize claims as a "wasabi-opt-manifest" JSON document. */
std::string claimsToManifest(const OptClaims &claims);

/**
 * Parse a manifest produced by claimsToManifest. Returns false and
 * sets @p error on malformed input.
 */
bool claimsFromManifest(const std::string &text, OptClaims &claims,
                        std::string *error);

/** Cheap sniff: does this text look like an opt manifest (vs a
 * hook-optimization plan manifest)? */
bool isOptManifest(const std::string &text);

/**
 * Re-prove every claim: replay the pass pipeline on @p original,
 * re-deriving each pass's licensing facts and verifying the claims
 * against them before applying, then require the replayed module to
 * encode byte-identically to @p optimized_bytes. Diagnostics use
 * stable codes:
 *  - check.opt.unknown-pass         (manifest lists an unknown pass)
 *  - check.opt.bad-dead-function    (strip not proved by reachability)
 *  - check.opt.bad-call-target      (site not proved IndirectConst)
 *  - check.opt.bad-ipo-const-arg    (parameter not provably constant)
 *  - check.opt.bad-ipo-const-return (call not provably foldable)
 *  - check.opt.bad-ipo-inline       (site/strip not provably inlinable)
 *  - check.opt.bad-table-compact    (claims differ from the derived
 *                                    compaction plan)
 *  - check.opt.bad-fold             (sequence does not fold to value)
 *  - check.opt.bad-dead-store       (store not proved dead)
 *  - check.opt.bad-empty-block      (not an empty block/loop pair)
 *  - check.opt.replay-failed        (claimed edit not applicable)
 *  - check.opt.invalid-output       (optimized binary fails validation)
 *  - check.opt.output-mismatch      (replayed bytes != optimized bytes)
 */
Diagnostics checkOptimization(const wasm::Module &original,
                              const std::vector<uint8_t> &optimized_bytes,
                              const OptClaims &claims);

} // namespace wasabi::static_analysis::rewrite

#endif // WASABI_STATIC_REWRITE_OPT_H
