#include "static/rewrite/opt.h"

#include <algorithm>
#include <cctype>

#include "core/control_stack.h"
#include "static/interproc/refined_call_graph.h"
#include "static/passes/constprop.h"
#include "static/passes/deadstore.h"
#include "static/rewrite/rewrite.h"
#include "wasm/decoder.h"
#include "wasm/encoder.h"
#include "wasm/leb128.h"
#include "wasm/validator.h"

namespace wasabi::static_analysis::rewrite {

using wasm::Instr;
using wasm::Module;
using wasm::Opcode;

namespace {

constexpr const char *kPassDeadFunctions = "dead-functions";
constexpr const char *kPassCallIndirect = "call-indirect";
constexpr const char *kPassConstFold = "const-fold";
constexpr const char *kPassDeadStores = "dead-stores";
constexpr const char *kPassEmptyBlocks = "empty-blocks";

// ----- dead-functions ------------------------------------------------

/**
 * Functions provably strippable: refined-unreachable, defined,
 * unexported, not the start function, not referenced by any element
 * segment, and — enforced to a fixpoint — not referenced by a `call`
 * in any surviving function. The last rule is belt-and-braces: a
 * refined-unreachable function can still be named by a call in
 * unreachable code of a live function, and deleting it would leave a
 * dangling immediate the remap layer (rightly) rejects.
 */
std::vector<uint32_t>
strippableFunctions(const Module &m)
{
    interproc::RefinedCallGraph rcg(m);
    std::vector<bool> strip(m.numFunctions(), false);
    for (uint32_t f : rcg.deadFunctions()) {
        const wasm::Function &fn = m.functions[f];
        if (!fn.imported() && fn.exportNames.empty())
            strip[f] = true;
    }
    if (m.start && *m.start < strip.size())
        strip[*m.start] = false;
    for (const wasm::ElementSegment &seg : m.elements) {
        for (uint32_t f : seg.funcIdxs) {
            if (f < strip.size())
                strip[f] = false;
        }
    }
    // Fixpoint: un-strip anything called from surviving code.
    bool changed = true;
    while (changed) {
        changed = false;
        for (uint32_t g = 0; g < m.numFunctions(); ++g) {
            if (strip[g])
                continue;
            for (const Instr &instr : m.functions[g].body) {
                if (instr.op == Opcode::Call &&
                    instr.imm.idx < strip.size() &&
                    strip[instr.imm.idx]) {
                    strip[instr.imm.idx] = false;
                    changed = true;
                }
            }
        }
    }
    std::vector<uint32_t> out;
    for (uint32_t f = 0; f < strip.size(); ++f) {
        if (strip[f])
            out.push_back(f);
    }
    return out;
}

Module
applyStrip(const Module &m, const std::vector<uint32_t> &funcs)
{
    if (funcs.empty())
        return m;
    ModuleRewriter rw(m);
    for (uint32_t f : funcs)
        rw.deleteFunction(f);
    return rw.apply().module;
}

// ----- call-indirect -------------------------------------------------

std::vector<DirectCallClaim>
findDirectCalls(const Module &m)
{
    interproc::RefinedCallGraph rcg(m);
    std::vector<DirectCallClaim> claims;
    for (const interproc::CallSite &site : rcg.sites()) {
        if (site.kind != interproc::SiteKind::IndirectConst ||
            site.targets.size() != 1)
            continue;
        const Instr &instr = m.functions[site.func].body[site.instr];
        if (instr.op != Opcode::CallIndirect)
            continue;
        claims.push_back(DirectCallClaim{site.func, site.instr,
                                         instr.imm.idx,
                                         site.targets.front()});
    }
    return claims;
}

/** Replace each claimed call_indirect with `drop` (pops the constant
 * table index) + a direct `call`. Applied high-to-low so earlier
 * claim coordinates stay valid while later ones are rewritten. */
void
applyDirectCalls(Module &m, const std::vector<DirectCallClaim> &claims)
{
    for (auto it = claims.rbegin(); it != claims.rend(); ++it) {
        std::vector<Instr> &body = m.functions[it->func].body;
        if (it->instr >= body.size())
            throw RewriteError("opt.bad-claim",
                               "direct-call claim out of range");
        body[it->instr] = Instr(Opcode::Drop);
        body.insert(body.begin() + it->instr + 1,
                    Instr::call(it->target));
    }
}

// ----- const-fold ----------------------------------------------------

/** Evaluate the fold window body[first .. first+count); nullopt when
 * the window is not a provably-constant foldable sequence. */
std::optional<uint32_t>
foldWindow(const std::vector<Instr> &body, uint32_t first, uint32_t count)
{
    if (static_cast<uint64_t>(first) + count > body.size() ||
        count < 2 || count > 4)
        return std::nullopt;
    for (uint32_t k = 0; k + 1 < count; ++k) {
        if (body[first + k].op != Opcode::I32Const)
            return std::nullopt;
    }
    const Instr &last = body[first + count - 1];
    switch (count) {
      case 2:
        return passes::foldI32Unary(last.op, body[first].imm.i32v);
      case 3:
        return passes::foldI32Binary(last.op, body[first].imm.i32v,
                                     body[first + 1].imm.i32v);
      case 4:
        if (last.op != Opcode::Select)
            return std::nullopt;
        return body[first + 2].imm.i32v != 0 ? body[first].imm.i32v
                                             : body[first + 1].imm.i32v;
      default:
        return std::nullopt;
    }
}

void
applyConstFold(std::vector<Instr> &body, const ConstFoldClaim &claim,
               uint32_t value)
{
    body[claim.first] = Instr::i32Const(value);
    body.erase(body.begin() + claim.first + 1,
               body.begin() + claim.first + claim.count);
}

/** Scan-and-fold until no window folds; records each application in
 * the coordinates of the body at the moment it is applied (claims in
 * one function are therefore sequential, which is exactly how the
 * checker replays them). */
std::vector<ConstFoldClaim>
findAndApplyConstFolds(Module &m)
{
    std::vector<ConstFoldClaim> claims;
    for (uint32_t f = 0; f < m.numFunctions(); ++f) {
        if (m.functions[f].imported())
            continue;
        std::vector<Instr> &body = m.functions[f].body;
        uint32_t i = 0;
        while (i < body.size()) {
            bool folded = false;
            for (uint32_t count : {2u, 3u, 4u}) {
                std::optional<uint32_t> v = foldWindow(body, i, count);
                if (!v)
                    continue;
                ConstFoldClaim claim{f, i, count, *v};
                applyConstFold(body, claim, *v);
                claims.push_back(claim);
                // The new constant may combine with what precedes it.
                i = i >= 3 ? i - 3 : 0;
                folded = true;
                break;
            }
            if (!folded)
                ++i;
        }
    }
    return claims;
}

// ----- dead-stores ---------------------------------------------------

std::vector<DeadStoreClaim>
findDeadStores(const Module &m)
{
    std::vector<DeadStoreClaim> claims;
    for (uint32_t f = 0; f < m.numFunctions(); ++f) {
        if (m.functions[f].imported())
            continue;
        for (const passes::DeadStore &ds : passes::deadStores(m, f))
            claims.push_back(DeadStoreClaim{ds.func, ds.instr, ds.local});
    }
    return claims;
}

void
applyDeadStores(Module &m, const std::vector<DeadStoreClaim> &claims)
{
    for (const DeadStoreClaim &c : claims) {
        std::vector<Instr> &body = m.functions[c.func].body;
        if (c.instr >= body.size())
            throw RewriteError("opt.bad-claim",
                               "dead-store claim out of range");
        body[c.instr] = Instr(Opcode::Drop);
    }
}

// ----- empty-blocks --------------------------------------------------

std::vector<EmptyBlockClaim>
findEmptyBlocks(const Module &m)
{
    std::vector<EmptyBlockClaim> claims;
    for (uint32_t f = 0; f < m.numFunctions(); ++f) {
        if (m.functions[f].imported())
            continue;
        const std::vector<Instr> &body = m.functions[f].body;
        std::vector<core::BlockMatch> match = core::matchBlocks(body);
        for (uint32_t i = 0; i < body.size(); ++i) {
            // `if` is excluded: deleting an empty if/end pair would
            // leave its popped condition on the stack.
            if ((body[i].op == Opcode::Block ||
                 body[i].op == Opcode::Loop) &&
                match[i].endIdx == i + 1)
                claims.push_back(EmptyBlockClaim{f, i});
        }
    }
    return claims;
}

void
applyEmptyBlocks(Module &m, const std::vector<EmptyBlockClaim> &claims)
{
    for (auto it = claims.rbegin(); it != claims.rend(); ++it) {
        std::vector<Instr> &body = m.functions[it->func].body;
        if (static_cast<uint64_t>(it->begin) + 2 > body.size())
            throw RewriteError("opt.bad-claim",
                               "empty-block claim out of range");
        body.erase(body.begin() + it->begin,
                   body.begin() + it->begin + 2);
    }
}

} // namespace

const std::vector<std::string> &
allOptPasses()
{
    static const std::vector<std::string> kPasses{
        kPassDeadFunctions, kPassCallIndirect, kPassConstFold,
        kPassDeadStores,    kPassEmptyBlocks,
    };
    return kPasses;
}

bool
isOptPass(const std::string &name)
{
    const std::vector<std::string> &all = allOptPasses();
    return std::find(all.begin(), all.end(), name) != all.end();
}

OptResult
optimize(const Module &m, const std::vector<std::string> &passes)
{
    for (const std::string &p : passes) {
        if (!isOptPass(p))
            throw RewriteError("opt.unknown-pass",
                               "unknown pass \"" + p + "\"");
    }
    auto requested = [&](const char *name) {
        return std::find(passes.begin(), passes.end(), name) !=
               passes.end();
    };

    OptResult result;
    result.module = m;
    Module &cur = result.module;
    OptClaims &claims = result.claims;

    // Canonical order, independent of the order requested.
    if (requested(kPassDeadFunctions)) {
        claims.passes.push_back(kPassDeadFunctions);
        claims.strippedFunctions = strippableFunctions(cur);
        cur = applyStrip(cur, claims.strippedFunctions);
    }
    if (requested(kPassCallIndirect)) {
        claims.passes.push_back(kPassCallIndirect);
        claims.directCalls = findDirectCalls(cur);
        applyDirectCalls(cur, claims.directCalls);
    }
    if (requested(kPassConstFold)) {
        claims.passes.push_back(kPassConstFold);
        claims.constFolds = findAndApplyConstFolds(cur);
    }
    if (requested(kPassDeadStores)) {
        claims.passes.push_back(kPassDeadStores);
        claims.deadStores = findDeadStores(cur);
        applyDeadStores(cur, claims.deadStores);
    }
    if (requested(kPassEmptyBlocks)) {
        claims.passes.push_back(kPassEmptyBlocks);
        claims.emptyBlocks = findEmptyBlocks(cur);
        applyEmptyBlocks(cur, claims.emptyBlocks);
    }
    return result;
}

// ----- manifest ------------------------------------------------------

std::string
claimsToManifest(const OptClaims &claims)
{
    std::string out = "{\n  \"schema\": \"wasabi-opt-manifest\",\n"
                      "  \"version\": 1,\n  \"passes\": [";
    bool first = true;
    for (const std::string &p : claims.passes) {
        out += std::string(first ? "" : ", ") + "\"" + p + "\"";
        first = false;
    }
    out += "],\n  \"strippedFunctions\": [";
    first = true;
    for (uint32_t f : claims.strippedFunctions) {
        out += std::string(first ? "" : ", ") + std::to_string(f);
        first = false;
    }
    out += "],\n  \"directCalls\": [";
    first = true;
    for (const DirectCallClaim &c : claims.directCalls) {
        out += std::string(first ? "" : ", ") + "[" +
               std::to_string(c.func) + ", " + std::to_string(c.instr) +
               ", " + std::to_string(c.typeIdx) + ", " +
               std::to_string(c.target) + "]";
        first = false;
    }
    out += "],\n  \"constFolds\": [";
    first = true;
    for (const ConstFoldClaim &c : claims.constFolds) {
        out += std::string(first ? "" : ", ") + "[" +
               std::to_string(c.func) + ", " + std::to_string(c.first) +
               ", " + std::to_string(c.count) + ", " +
               std::to_string(c.value) + "]";
        first = false;
    }
    out += "],\n  \"deadStores\": [";
    first = true;
    for (const DeadStoreClaim &c : claims.deadStores) {
        out += std::string(first ? "" : ", ") + "[" +
               std::to_string(c.func) + ", " + std::to_string(c.instr) +
               ", " + std::to_string(c.local) + "]";
        first = false;
    }
    out += "],\n  \"emptyBlocks\": [";
    first = true;
    for (const EmptyBlockClaim &c : claims.emptyBlocks) {
        out += std::string(first ? "" : ", ") + "[" +
               std::to_string(c.func) + ", " + std::to_string(c.begin) +
               "]";
        first = false;
    }
    out += "]\n}\n";
    return out;
}

namespace {

/** Minimal parser for the opt manifest's JSON subset: one object with
 * string keys, string values, and arrays of strings / non-negative
 * integers / fixed-width integer rows. No external JSON dependency is
 * available (or needed). */
class OptManifestParser {
  public:
    explicit OptManifestParser(const std::string &text) : text_(text) {}

    bool
    parse(OptClaims &claims, std::string &error)
    {
        skipWs();
        if (!expect('{')) {
            error = err_;
            return false;
        }
        bool first = true;
        while (true) {
            skipWs();
            if (peek() == '}') {
                ++pos_;
                break;
            }
            if (!first && !expect(',')) {
                error = err_;
                return false;
            }
            first = false;
            skipWs();
            std::string key;
            if (!parseString(key)) {
                error = err_;
                return false;
            }
            skipWs();
            if (!expect(':')) {
                error = err_;
                return false;
            }
            skipWs();
            if (!parseField(key, claims)) {
                error = err_;
                return false;
            }
        }
        skipWs();
        if (pos_ != text_.size()) {
            error = "trailing characters after manifest object";
            return false;
        }
        if (!sawSchema_) {
            error = "manifest lacks a \"schema\" field";
            return false;
        }
        if (!sawVersion_) {
            error = "manifest lacks a \"version\" field";
            return false;
        }
        return true;
    }

  private:
    char
    peek() const
    {
        return pos_ < text_.size() ? text_[pos_] : '\0';
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool
    expect(char c)
    {
        if (peek() != c) {
            err_ = std::string("expected '") + c + "' at offset " +
                   std::to_string(pos_);
            return false;
        }
        ++pos_;
        return true;
    }

    bool
    parseString(std::string &out)
    {
        if (!expect('"'))
            return false;
        out.clear();
        while (pos_ < text_.size() && text_[pos_] != '"') {
            if (text_[pos_] == '\\') {
                err_ = "escape sequences are not supported";
                return false;
            }
            out += text_[pos_++];
        }
        return expect('"');
    }

    bool
    parseUint(uint64_t &out)
    {
        if (!std::isdigit(static_cast<unsigned char>(peek()))) {
            err_ = "expected integer at offset " + std::to_string(pos_);
            return false;
        }
        out = 0;
        while (std::isdigit(static_cast<unsigned char>(peek()))) {
            out = out * 10 + static_cast<uint64_t>(text_[pos_] - '0');
            if (out > 0xFFFFFFFFull) {
                err_ = "integer out of range at offset " +
                       std::to_string(pos_);
                return false;
            }
            ++pos_;
        }
        return true;
    }

    /** Parse `[n, n, ...]` rows of exactly @p width into @p rows. */
    bool
    parseRows(size_t width, std::vector<std::vector<uint32_t>> &rows)
    {
        if (!expect('['))
            return false;
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            std::vector<uint32_t> row;
            if (width == 1) {
                uint64_t v;
                if (!parseUint(v))
                    return false;
                row.push_back(static_cast<uint32_t>(v));
            } else {
                if (!expect('['))
                    return false;
                for (size_t k = 0; k < width; ++k) {
                    skipWs();
                    if (k > 0 && !expect(','))
                        return false;
                    skipWs();
                    uint64_t v;
                    if (!parseUint(v))
                        return false;
                    row.push_back(static_cast<uint32_t>(v));
                }
                skipWs();
                if (!expect(']'))
                    return false;
            }
            rows.push_back(std::move(row));
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            return expect(']');
        }
    }

    bool
    parseField(const std::string &key, OptClaims &claims)
    {
        if (key == "schema") {
            std::string schema;
            if (!parseString(schema))
                return false;
            if (schema != "wasabi-opt-manifest") {
                err_ = "unexpected schema \"" + schema + "\"";
                return false;
            }
            sawSchema_ = true;
            return true;
        }
        if (key == "version") {
            uint64_t v;
            if (!parseUint(v))
                return false;
            if (v != 1) {
                err_ = "unsupported manifest version " +
                       std::to_string(v);
                return false;
            }
            sawVersion_ = true;
            return true;
        }
        if (key == "passes") {
            if (!expect('['))
                return false;
            skipWs();
            if (peek() == ']') {
                ++pos_;
                return true;
            }
            while (true) {
                skipWs();
                std::string p;
                if (!parseString(p))
                    return false;
                claims.passes.push_back(std::move(p));
                skipWs();
                if (peek() == ',') {
                    ++pos_;
                    continue;
                }
                return expect(']');
            }
        }
        std::vector<std::vector<uint32_t>> rows;
        if (key == "strippedFunctions") {
            if (!parseRows(1, rows))
                return false;
            for (const auto &r : rows)
                claims.strippedFunctions.push_back(r[0]);
            return true;
        }
        if (key == "directCalls") {
            if (!parseRows(4, rows))
                return false;
            for (const auto &r : rows)
                claims.directCalls.push_back(
                    DirectCallClaim{r[0], r[1], r[2], r[3]});
            return true;
        }
        if (key == "constFolds") {
            if (!parseRows(4, rows))
                return false;
            for (const auto &r : rows)
                claims.constFolds.push_back(
                    ConstFoldClaim{r[0], r[1], r[2], r[3]});
            return true;
        }
        if (key == "deadStores") {
            if (!parseRows(3, rows))
                return false;
            for (const auto &r : rows)
                claims.deadStores.push_back(
                    DeadStoreClaim{r[0], r[1], r[2]});
            return true;
        }
        if (key == "emptyBlocks") {
            if (!parseRows(2, rows))
                return false;
            for (const auto &r : rows)
                claims.emptyBlocks.push_back(EmptyBlockClaim{r[0], r[1]});
            return true;
        }
        err_ = "unknown manifest field \"" + key + "\"";
        return false;
    }

    const std::string &text_;
    size_t pos_ = 0;
    std::string err_;
    bool sawSchema_ = false;
    bool sawVersion_ = false;
};

} // namespace

bool
claimsFromManifest(const std::string &text, OptClaims &claims,
                   std::string *error)
{
    std::string err;
    if (!OptManifestParser(text).parse(claims, err)) {
        if (error)
            *error = err;
        return false;
    }
    return true;
}

bool
isOptManifest(const std::string &text)
{
    return text.find("\"wasabi-opt-manifest\"") != std::string::npos;
}

// ----- checker -------------------------------------------------------

namespace {

bool
listed(const OptClaims &claims, const char *pass)
{
    return std::find(claims.passes.begin(), claims.passes.end(), pass) !=
           claims.passes.end();
}

} // namespace

Diagnostics
checkOptimization(const Module &original,
                  const std::vector<uint8_t> &optimized_bytes,
                  const OptClaims &claims)
{
    Diagnostics ds;

    for (const std::string &p : claims.passes) {
        if (!isOptPass(p))
            ds.error("check.opt.unknown-pass",
                     "manifest lists unknown pass \"" + p + "\"");
    }
    // Claims for a pass the manifest does not list cannot have been
    // produced by that manifest's run — tamper evidence.
    if (!listed(claims, kPassDeadFunctions) &&
        !claims.strippedFunctions.empty())
        ds.error("check.opt.orphan-claims",
                 "strippedFunctions present but dead-functions not in "
                 "passes");
    if (!listed(claims, kPassCallIndirect) && !claims.directCalls.empty())
        ds.error("check.opt.orphan-claims",
                 "directCalls present but call-indirect not in passes");
    if (!listed(claims, kPassConstFold) && !claims.constFolds.empty())
        ds.error("check.opt.orphan-claims",
                 "constFolds present but const-fold not in passes");
    if (!listed(claims, kPassDeadStores) && !claims.deadStores.empty())
        ds.error("check.opt.orphan-claims",
                 "deadStores present but dead-stores not in passes");
    if (!listed(claims, kPassEmptyBlocks) && !claims.emptyBlocks.empty())
        ds.error("check.opt.orphan-claims",
                 "emptyBlocks present but empty-blocks not in passes");
    if (!ds.empty())
        return ds;

    Module replay = original;
    try {
        for (const std::string &pass : claims.passes) {
            if (pass == kPassDeadFunctions) {
                std::vector<uint32_t> provable =
                    strippableFunctions(replay);
                for (uint32_t f : claims.strippedFunctions) {
                    if (!std::binary_search(provable.begin(),
                                            provable.end(), f))
                        ds.error("check.opt.bad-dead-function",
                                 "function " + std::to_string(f) +
                                     " is not provably dead",
                                 f);
                }
                if (!ds.empty())
                    return ds;
                replay = applyStrip(replay, claims.strippedFunctions);
            } else if (pass == kPassCallIndirect) {
                interproc::RefinedCallGraph rcg(replay);
                for (const DirectCallClaim &c : claims.directCalls) {
                    const interproc::CallSite *site =
                        rcg.siteAt(c.func, c.instr);
                    bool ok =
                        site != nullptr &&
                        site->kind ==
                            interproc::SiteKind::IndirectConst &&
                        site->targets.size() == 1 &&
                        site->targets.front() == c.target &&
                        c.func < replay.numFunctions() &&
                        c.instr <
                            replay.functions[c.func].body.size() &&
                        replay.functions[c.func].body[c.instr].op ==
                            Opcode::CallIndirect &&
                        replay.functions[c.func].body[c.instr].imm.idx ==
                            c.typeIdx;
                    if (!ok)
                        ds.error("check.opt.bad-call-target",
                                 "call_indirect is not provably a "
                                 "direct call of function " +
                                     std::to_string(c.target),
                                 c.func, c.instr);
                }
                if (!ds.empty())
                    return ds;
                applyDirectCalls(replay, claims.directCalls);
            } else if (pass == kPassConstFold) {
                // Sequential replay: each claim's coordinates refer to
                // the body after the previous claims were applied.
                for (const ConstFoldClaim &c : claims.constFolds) {
                    std::optional<uint32_t> v;
                    if (c.func < replay.numFunctions() &&
                        !replay.functions[c.func].imported())
                        v = foldWindow(replay.functions[c.func].body,
                                       c.first, c.count);
                    if (!v || *v != c.value) {
                        ds.error("check.opt.bad-fold",
                                 "sequence does not provably fold to " +
                                     std::to_string(c.value),
                                 c.func, c.first);
                        return ds;
                    }
                    applyConstFold(replay.functions[c.func].body, c,
                                   *v);
                }
            } else if (pass == kPassDeadStores) {
                std::vector<DeadStoreClaim> provable =
                    findDeadStores(replay);
                for (const DeadStoreClaim &c : claims.deadStores) {
                    bool ok = std::any_of(
                        provable.begin(), provable.end(),
                        [&](const DeadStoreClaim &p) {
                            return p.func == c.func &&
                                   p.instr == c.instr &&
                                   p.local == c.local;
                        });
                    if (!ok)
                        ds.error("check.opt.bad-dead-store",
                                 "local.set of local " +
                                     std::to_string(c.local) +
                                     " is not provably dead",
                                 c.func, c.instr);
                }
                if (!ds.empty())
                    return ds;
                applyDeadStores(replay, claims.deadStores);
            } else if (pass == kPassEmptyBlocks) {
                std::vector<EmptyBlockClaim> provable =
                    findEmptyBlocks(replay);
                for (const EmptyBlockClaim &c : claims.emptyBlocks) {
                    bool ok = std::any_of(
                        provable.begin(), provable.end(),
                        [&](const EmptyBlockClaim &p) {
                            return p.func == c.func &&
                                   p.begin == c.begin;
                        });
                    if (!ok)
                        ds.error("check.opt.bad-empty-block",
                                 "instructions are not an empty "
                                 "block/loop pair",
                                 c.func, c.begin);
                }
                if (!ds.empty())
                    return ds;
                applyEmptyBlocks(replay, claims.emptyBlocks);
            }
        }
    } catch (const std::exception &e) {
        ds.error("check.opt.replay-failed",
                 std::string("claimed edit could not be replayed: ") +
                     e.what());
        return ds;
    }

    // The shipped binary must decode, validate, and be byte-identical
    // to the replay — anything else means it was not produced by the
    // claimed transforms.
    try {
        Module decoded = wasm::decodeModule(optimized_bytes);
        if (std::optional<std::string> err = wasm::validationError(decoded))
            ds.error("check.opt.invalid-output",
                     "optimized binary fails validation: " + *err);
    } catch (const wasm::DecodeError &e) {
        ds.error("check.opt.invalid-output",
                 std::string("optimized binary fails to decode: ") +
                     e.what());
        return ds;
    }
    if (wasm::encodeModule(replay) != optimized_bytes)
        ds.error("check.opt.output-mismatch",
                 "optimized binary differs from the replayed transforms");
    return ds;
}

} // namespace wasabi::static_analysis::rewrite
