#include "static/rewrite/opt.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <set>

#include "core/control_stack.h"
#include "static/interproc/ipcp.h"
#include "static/interproc/refined_call_graph.h"
#include "static/interproc/table_layout.h"
#include "static/passes/constprop.h"
#include "static/passes/deadstore.h"
#include "static/rewrite/rewrite.h"
#include "wasm/decoder.h"
#include "wasm/encoder.h"
#include "wasm/leb128.h"
#include "wasm/validator.h"

namespace wasabi::static_analysis::rewrite {

using wasm::Instr;
using wasm::Module;
using wasm::OpClass;
using wasm::Opcode;
using wasm::ValType;

namespace {

constexpr const char *kPassDeadFunctions = "dead-functions";
constexpr const char *kPassCallIndirect = "call-indirect";
constexpr const char *kPassIpoConst = "ipo-const";
constexpr const char *kPassInline = "inline";
constexpr const char *kPassTableCompact = "table-compact";
constexpr const char *kPassConstFold = "const-fold";
constexpr const char *kPassDeadStores = "dead-stores";
constexpr const char *kPassEmptyBlocks = "empty-blocks";

/** Callee body size cap (instructions, incl. the final end) for the
 * inline pass: "trivial" hot callees only — getters, tiny arithmetic
 * helpers, the shapes whose call ABI cost Fig. 9 blames. */
constexpr size_t kInlineBudget = 16;

// ----- dead-functions ------------------------------------------------

/**
 * Functions provably strippable: refined-unreachable, defined,
 * unexported, not the start function, not referenced by any element
 * segment, and — enforced to a fixpoint — not referenced by a `call`
 * in any surviving function. The last rule is belt-and-braces: a
 * refined-unreachable function can still be named by a call in
 * unreachable code of a live function, and deleting it would leave a
 * dangling immediate the remap layer (rightly) rejects.
 */
std::vector<uint32_t>
strippableFunctions(const Module &m)
{
    interproc::RefinedCallGraph rcg(m);
    std::vector<bool> strip(m.numFunctions(), false);
    for (uint32_t f : rcg.deadFunctions()) {
        const wasm::Function &fn = m.functions[f];
        if (!fn.imported() && fn.exportNames.empty())
            strip[f] = true;
    }
    if (m.start && *m.start < strip.size())
        strip[*m.start] = false;
    for (const wasm::ElementSegment &seg : m.elements) {
        for (uint32_t f : seg.funcIdxs) {
            if (f < strip.size())
                strip[f] = false;
        }
    }
    // Fixpoint: un-strip anything called from surviving code.
    bool changed = true;
    while (changed) {
        changed = false;
        for (uint32_t g = 0; g < m.numFunctions(); ++g) {
            if (strip[g])
                continue;
            for (const Instr &instr : m.functions[g].body) {
                if (instr.op == Opcode::Call &&
                    instr.imm.idx < strip.size() &&
                    strip[instr.imm.idx]) {
                    strip[instr.imm.idx] = false;
                    changed = true;
                }
            }
        }
    }
    std::vector<uint32_t> out;
    for (uint32_t f = 0; f < strip.size(); ++f) {
        if (strip[f])
            out.push_back(f);
    }
    return out;
}

Module
applyStrip(const Module &m, const std::vector<uint32_t> &funcs)
{
    if (funcs.empty())
        return m;
    ModuleRewriter rw(m);
    for (uint32_t f : funcs)
        rw.deleteFunction(f);
    return rw.apply().module;
}

// ----- call-indirect -------------------------------------------------

std::vector<DirectCallClaim>
findDirectCalls(const Module &m)
{
    interproc::RefinedCallGraph rcg(m);
    std::vector<DirectCallClaim> claims;
    for (const interproc::CallSite &site : rcg.sites()) {
        if (site.kind != interproc::SiteKind::IndirectConst ||
            site.targets.size() != 1)
            continue;
        const Instr &instr = m.functions[site.func].body[site.instr];
        if (instr.op != Opcode::CallIndirect)
            continue;
        claims.push_back(DirectCallClaim{site.func, site.instr,
                                         instr.imm.idx,
                                         site.targets.front()});
    }
    return claims;
}

/** Replace each claimed call_indirect with `drop` (pops the constant
 * table index) + a direct `call`. Applied high-to-low so earlier
 * claim coordinates stay valid while later ones are rewritten. */
void
applyDirectCalls(Module &m, const std::vector<DirectCallClaim> &claims)
{
    for (auto it = claims.rbegin(); it != claims.rend(); ++it) {
        std::vector<Instr> &body = m.functions[it->func].body;
        if (it->instr >= body.size())
            throw RewriteError("opt.bad-claim",
                               "direct-call claim out of range");
        body[it->instr] = Instr(Opcode::Drop);
        body.insert(body.begin() + it->instr + 1,
                    Instr::call(it->target));
    }
}

// ----- ipo-const -----------------------------------------------------

/**
 * `local.get` sites of provably constant parameters in non-pinned
 * callees. The argument lattice accounts for every caller (pinned
 * functions are excluded, and callers whose own solve hit the budget
 * cap degraded their contributions to top inside the ipcp solver), so
 * an unwritten constant parameter reads the constant on every
 * execution. Claims are sorted by (func, instr).
 *
 * Size guard: only constants whose signed-LEB encoding fits two bytes
 * are propagated. `local.get n` encodes in 2 bytes for small n, so an
 * `i32.const` with a long payload can outgrow the downstream folding
 * it enables; a ≤3-byte replacement keeps the rewrite size-neutral at
 * worst. (Semantically any constant would be sound.)
 */
bool
shortLeb(uint32_t value)
{
    const int32_t v = static_cast<int32_t>(value);
    return v >= -8192 && v < 8192;
}

std::vector<IpoConstArgClaim>
findIpoConstArgs(const Module &m, const interproc::ModuleIpcp &ipcp)
{
    std::vector<IpoConstArgClaim> claims;
    for (uint32_t f = 0; f < m.numFunctions(); ++f) {
        const interproc::FunctionIpcp &fi = ipcp.functions[f];
        if (!fi.defined || fi.pinned)
            continue;
        const wasm::FuncType &type = m.funcType(f);
        const std::vector<Instr> &body = m.functions[f].body;
        std::vector<char> usable(type.params.size(), 0);
        for (size_t k = 0; k < type.params.size(); ++k) {
            usable[k] = type.params[k] == ValType::I32 &&
                        k < fi.args.size() && fi.args[k].isConst() &&
                        shortLeb(fi.args[k].lo);
        }
        // A written parameter no longer carries the caller value.
        for (const Instr &ins : body) {
            const OpClass cls = wasm::opInfo(ins.op).cls;
            if ((cls == OpClass::LocalSet || cls == OpClass::LocalTee) &&
                ins.imm.idx < usable.size())
                usable[ins.imm.idx] = 0;
        }
        for (uint32_t i = 0; i < body.size(); ++i) {
            if (wasm::opInfo(body[i].op).cls == OpClass::LocalGet &&
                body[i].imm.idx < usable.size() &&
                usable[body[i].imm.idx])
                claims.push_back(IpoConstArgClaim{
                    f, i, body[i].imm.idx,
                    fi.args[body[i].imm.idx].lo});
        }
    }
    return claims;
}

/**
 * Call sites whose callee is pure (no observable effect), provably
 * terminating, and returns one provably constant i32 on every normal
 * exit: the call computes `value` and nothing else, so it folds to
 * argument drops + the constant. Purity alone is not enough — a pure
 * non-terminating callee must keep spinning.
 */
std::vector<IpoConstReturnClaim>
findIpoConstReturns(const Module &m, const interproc::ModuleIpcp &ipcp)
{
    std::vector<IpoConstReturnClaim> claims;
    for (uint32_t f = 0; f < m.numFunctions(); ++f) {
        if (m.functions[f].imported())
            continue;
        const std::vector<Instr> &body = m.functions[f].body;
        for (uint32_t i = 0; i < body.size(); ++i) {
            if (body[i].op != Opcode::Call)
                continue;
            const interproc::FunctionIpcp &ci =
                ipcp.functions[body[i].imm.idx];
            if (ci.retKnown && ci.ret.isConst() && ci.pure &&
                ci.terminates)
                claims.push_back(IpoConstReturnClaim{
                    f, i, body[i].imm.idx, ci.ret.lo});
        }
    }
    return claims;
}

/** 1:1 replacement — coordinates never shift, any order works. */
void
applyIpoConstArgs(Module &m, const std::vector<IpoConstArgClaim> &claims)
{
    for (const IpoConstArgClaim &c : claims) {
        if (c.func >= m.numFunctions() ||
            c.instr >= m.functions[c.func].body.size())
            throw RewriteError("opt.bad-claim",
                               "ipo-const-arg claim out of range");
        m.functions[c.func].body[c.instr] = Instr::i32Const(c.value);
    }
}

/** Replace each claimed call with nParams drops + the constant.
 * Applied high-to-low so earlier claim coordinates stay valid while
 * later ones grow the body. */
void
applyIpoConstReturns(Module &m,
                     const std::vector<IpoConstReturnClaim> &claims)
{
    for (auto it = claims.rbegin(); it != claims.rend(); ++it) {
        if (it->func >= m.numFunctions() ||
            it->callee >= m.numFunctions() ||
            it->instr >= m.functions[it->func].body.size())
            throw RewriteError("opt.bad-claim",
                               "ipo-const-return claim out of range");
        std::vector<Instr> &body = m.functions[it->func].body;
        const size_t np = m.funcType(it->callee).params.size();
        std::vector<Instr> seq(np, Instr(Opcode::Drop));
        seq.push_back(Instr::i32Const(it->value));
        body.erase(body.begin() + it->instr);
        body.insert(body.begin() + it->instr, seq.begin(), seq.end());
    }
}

// ----- inline --------------------------------------------------------

/**
 * Inlinable call sites: direct calls to a defined callee of at most
 * kInlineBudget instructions that is not the caller itself. No effect
 * restriction is needed — the spliced body executes the identical
 * opcodes in the identical order, so every memory write, global
 * write, nested call, and trap happens exactly as it would through
 * the call. Direct self calls are excluded (the splice would copy the
 * body being edited); the copied body of a mutually recursive callee
 * still *contains* its calls, so recursion is preserved, not
 * unrolled.
 */
std::vector<InlineClaim>
findInlines(const Module &m)
{
    std::vector<InlineClaim> claims;
    for (uint32_t f = 0; f < m.numFunctions(); ++f) {
        if (m.functions[f].imported())
            continue;
        const std::vector<Instr> &body = m.functions[f].body;
        for (uint32_t i = 0; i < body.size(); ++i) {
            if (body[i].op != Opcode::Call)
                continue;
            const uint32_t c = body[i].imm.idx;
            const wasm::Function &callee = m.functions[c];
            if (c == f || callee.imported() || callee.body.empty() ||
                callee.body.size() > kInlineBudget)
                continue;
            claims.push_back(InlineClaim{f, i, c});
        }
    }
    return claims;
}

/** Control nesting depth before each instruction of @p body: a branch
 * whose label equals its depth exits the function. */
std::vector<uint32_t>
nestingDepths(const std::vector<Instr> &body)
{
    std::vector<uint32_t> at(body.size(), 0);
    uint32_t depth = 0;
    for (uint32_t i = 0; i < body.size(); ++i) {
        const OpClass cls = wasm::opInfo(body[i].op).cls;
        if (cls == OpClass::End && depth > 0)
            --depth;
        at[i] = depth;
        if (cls == OpClass::Block || cls == OpClass::Loop ||
            cls == OpClass::If)
            ++depth;
    }
    return at;
}

Instr
zeroConst(ValType t)
{
    switch (t) {
      case ValType::I64:
        return Instr::i64Const(0);
      case ValType::F32:
        return Instr::f32Const(0.0f);
      case ValType::F64:
        return Instr::f64Const(0.0);
      default:
        return Instr::i32Const(0);
    }
}

/**
 * Splice one claimed callee body into its call site. The call's
 * arguments pop (last first) into fresh locals appended to the
 * caller, the callee's declared locals get fresh appended slots that
 * are explicitly re-zeroed (unlike a real frame, appended locals
 * persist across executions of the splice, e.g. inside a loop), and
 * the body — minus its final `end` — grafts inside one wrapper block
 * typed like the callee's result. That wrapper is what makes the
 * graft label-safe with no depth rewriting: a branch to label k at
 * nesting depth k (a function-level exit in the callee) now targets
 * the wrapper, which has the same arity; inner branches keep their
 * relative depths. Only the `return` opcode is rewritten, to a `br`
 * of its own nesting depth.
 */
void
applyInline(Module &m, const InlineClaim &c)
{
    if (c.func >= m.numFunctions() || c.callee >= m.numFunctions() ||
        c.func == c.callee)
        throw RewriteError("opt.bad-claim", "inline claim out of range");
    wasm::Function &caller = m.functions[c.func];
    const wasm::Function &callee = m.functions[c.callee];
    if (c.instr >= caller.body.size() ||
        caller.body[c.instr].op != Opcode::Call ||
        caller.body[c.instr].imm.idx != c.callee || callee.imported() ||
        callee.body.empty())
        throw RewriteError("opt.bad-claim",
                           "inline claim does not name a call site");
    const wasm::FuncType &ct = m.funcType(c.callee);
    const uint32_t base = static_cast<uint32_t>(
        m.funcType(c.func).params.size() + caller.locals.size());

    caller.locals.insert(caller.locals.end(), ct.params.begin(),
                         ct.params.end());
    caller.locals.insert(caller.locals.end(), callee.locals.begin(),
                         callee.locals.end());

    std::vector<Instr> seq;
    for (size_t k = ct.params.size(); k-- > 0;)
        seq.push_back(Instr::localSet(base + static_cast<uint32_t>(k)));
    for (size_t j = 0; j < callee.locals.size(); ++j) {
        seq.push_back(zeroConst(callee.locals[j]));
        seq.push_back(Instr::localSet(
            base + static_cast<uint32_t>(ct.params.size() + j)));
    }
    seq.push_back(Instr::blockStart(
        Opcode::Block, ct.results.empty()
                           ? wasm::BlockType{}
                           : wasm::BlockType{ct.results[0]}));
    std::vector<uint32_t> depth = nestingDepths(callee.body);
    for (size_t j = 0; j + 1 < callee.body.size(); ++j) {
        Instr ins = callee.body[j];
        switch (wasm::opInfo(ins.op).cls) {
          case OpClass::LocalGet:
          case OpClass::LocalSet:
          case OpClass::LocalTee:
            ins.imm.idx += base;
            break;
          case OpClass::Return:
            ins = Instr::br(depth[j]);
            break;
          default:
            break;
        }
        seq.push_back(ins);
    }
    seq.push_back(Instr(Opcode::End));

    std::vector<Instr> &body = caller.body;
    body.erase(body.begin() + c.instr);
    body.insert(body.begin() + c.instr, seq.begin(), seq.end());
}

/** Apply high-to-low: within one caller, later sites first keeps
 * earlier coordinates valid; across functions the order also fixes
 * *which* callee body version gets spliced (a callee's own inlines
 * land before any caller splices it), identically for producer and
 * checker. */
void
applyInlines(Module &m, const std::vector<InlineClaim> &claims)
{
    for (auto it = claims.rbegin(); it != claims.rend(); ++it)
        applyInline(m, *it);
}

/**
 * Candidates from @p cands that survive the same un-strip fixpoint as
 * the dead-functions pass: drop any candidate that is exported, the
 * start function, element-referenced, or — to a fixpoint — called
 * from surviving code. Mutual references among stripped functions are
 * fine; the rewriter deletes them together.
 */
std::vector<uint32_t>
stripFixpoint(const Module &m, const std::set<uint32_t> &cands)
{
    std::vector<bool> strip(m.numFunctions(), false);
    for (uint32_t f : cands) {
        if (f >= m.numFunctions())
            continue;
        const wasm::Function &fn = m.functions[f];
        if (!fn.imported() && fn.exportNames.empty())
            strip[f] = true;
    }
    if (m.start && *m.start < strip.size())
        strip[*m.start] = false;
    for (const wasm::ElementSegment &seg : m.elements) {
        for (uint32_t f : seg.funcIdxs) {
            if (f < strip.size())
                strip[f] = false;
        }
    }
    bool changed = true;
    while (changed) {
        changed = false;
        for (uint32_t g = 0; g < m.numFunctions(); ++g) {
            if (strip[g])
                continue;
            for (const Instr &instr : m.functions[g].body) {
                if (instr.op == Opcode::Call &&
                    instr.imm.idx < strip.size() &&
                    strip[instr.imm.idx]) {
                    strip[instr.imm.idx] = false;
                    changed = true;
                }
            }
        }
    }
    std::vector<uint32_t> out;
    for (uint32_t f = 0; f < strip.size(); ++f) {
        if (strip[f])
            out.push_back(f);
    }
    return out;
}

/** Inlined callees that no code references anymore (computed on the
 * post-splice module — a surviving call site keeps its callee). */
std::vector<uint32_t>
strippableAfterInline(const Module &m,
                      const std::vector<InlineClaim> &claims)
{
    std::set<uint32_t> cands;
    for (const InlineClaim &c : claims)
        cands.insert(c.callee);
    return stripFixpoint(m, cands);
}

// ----- table-compact -------------------------------------------------

struct TableCompactPlan {
    std::vector<TableSlotClaim> slots;
    std::vector<TableIndexRewriteClaim> rewrites;
    std::vector<uint32_t> stripped;
};

/**
 * Derive the compaction plan, or nullopt when compaction is not
 * provably safe. Requirements: exactly one non-host-visible table
 * with an exact layout, and *every* call_indirect in the module
 * consumes an immediately preceding literal `i32.const` index that
 * hits an occupied, in-range slot. Those conditions enumerate every
 * possible table access (MVP has no table.get/set and the host cannot
 * see the table), and occupied-slot hits keep trap behavior intact —
 * a site that could hit a null or out-of-range slot vetoes the whole
 * pass rather than turning a trap into a call (or vice versa).
 */
std::optional<TableCompactPlan>
planTableCompact(const Module &m)
{
    interproc::TableLayout layout = interproc::computeTableLayout(m);
    if (!layout.hasTable || layout.hostVisible || !layout.exact ||
        m.tables.size() != 1)
        return std::nullopt;

    std::vector<TableIndexRewriteClaim> rewrites;
    std::set<uint32_t> used;
    for (uint32_t f = 0; f < m.numFunctions(); ++f) {
        const std::vector<Instr> &body = m.functions[f].body;
        for (uint32_t i = 0; i < body.size(); ++i) {
            if (body[i].op != Opcode::CallIndirect)
                continue;
            if (i == 0 || body[i - 1].op != Opcode::I32Const)
                return std::nullopt;
            const uint32_t s = body[i - 1].imm.i32v;
            if (s >= layout.slots.size() || !layout.slots[s])
                return std::nullopt;
            rewrites.push_back(TableIndexRewriteClaim{f, i - 1, s, 0});
            used.insert(s);
        }
    }

    TableCompactPlan plan;
    std::map<uint32_t, uint32_t> newSlot;
    for (uint32_t s : used) {
        newSlot[s] = static_cast<uint32_t>(plan.slots.size());
        plan.slots.push_back(TableSlotClaim{s, *layout.slots[s]});
    }
    for (TableIndexRewriteClaim &rw : rewrites)
        rw.newIndex = newSlot[rw.oldIndex];
    plan.rewrites = std::move(rewrites);

    // Functions pinned only by dropped element slots become
    // strippable once nothing else references them.
    std::set<uint32_t> kept;
    for (const TableSlotClaim &s : plan.slots)
        kept.insert(s.funcIdx);
    std::set<uint32_t> cands;
    for (uint32_t f : layout.segmentFuncs) {
        if (!kept.count(f) && !m.functions[f].imported())
            cands.insert(f);
    }
    // stripFixpoint consults m.elements, which still pins the
    // candidates; evaluate it on a copy with the new element layout.
    Module probe = m;
    probe.elements.clear();
    if (!plan.slots.empty()) {
        wasm::ElementSegment seg;
        seg.tableIdx = 0;
        seg.offset = {Instr::i32Const(0), Instr(Opcode::End)};
        for (const TableSlotClaim &s : plan.slots)
            seg.funcIdxs.push_back(s.funcIdx);
        probe.elements.push_back(seg);
    }
    plan.stripped = stripFixpoint(probe, cands);
    return plan;
}

void
applyTableCompact(Module &m, const TableCompactPlan &plan)
{
    for (const TableIndexRewriteClaim &rw : plan.rewrites) {
        if (rw.func >= m.numFunctions() ||
            rw.instr >= m.functions[rw.func].body.size())
            throw RewriteError("opt.bad-claim",
                               "table-index rewrite out of range");
        Instr &ins = m.functions[rw.func].body[rw.instr];
        if (ins.op != Opcode::I32Const || ins.imm.i32v != rw.oldIndex)
            throw RewriteError("opt.bad-claim",
                               "table-index rewrite does not match");
        ins.imm.i32v = rw.newIndex;
    }
    m.elements.clear();
    if (!plan.slots.empty()) {
        wasm::ElementSegment seg;
        seg.tableIdx = 0;
        seg.offset = {Instr::i32Const(0), Instr(Opcode::End)};
        for (const TableSlotClaim &s : plan.slots)
            seg.funcIdxs.push_back(s.funcIdx);
        m.elements.push_back(seg);
    }
    // The new minimum never exceeds the old one (slots is a subset of
    // the declared layout), so a declared max stays valid unchanged.
    m.tables[0].limits.min = static_cast<uint32_t>(plan.slots.size());
    m = applyStrip(m, plan.stripped);
}

// ----- const-fold ----------------------------------------------------

/** Evaluate the fold window body[first .. first+count); nullopt when
 * the window is not a provably-constant foldable sequence. */
std::optional<uint32_t>
foldWindow(const std::vector<Instr> &body, uint32_t first, uint32_t count)
{
    if (static_cast<uint64_t>(first) + count > body.size() ||
        count < 2 || count > 4)
        return std::nullopt;
    for (uint32_t k = 0; k + 1 < count; ++k) {
        if (body[first + k].op != Opcode::I32Const)
            return std::nullopt;
    }
    const Instr &last = body[first + count - 1];
    switch (count) {
      case 2:
        return passes::foldI32Unary(last.op, body[first].imm.i32v);
      case 3:
        return passes::foldI32Binary(last.op, body[first].imm.i32v,
                                     body[first + 1].imm.i32v);
      case 4:
        if (last.op != Opcode::Select)
            return std::nullopt;
        return body[first + 2].imm.i32v != 0 ? body[first].imm.i32v
                                             : body[first + 1].imm.i32v;
      default:
        return std::nullopt;
    }
}

void
applyConstFold(std::vector<Instr> &body, const ConstFoldClaim &claim,
               uint32_t value)
{
    body[claim.first] = Instr::i32Const(value);
    body.erase(body.begin() + claim.first + 1,
               body.begin() + claim.first + claim.count);
}

/** Scan-and-fold until no window folds; records each application in
 * the coordinates of the body at the moment it is applied (claims in
 * one function are therefore sequential, which is exactly how the
 * checker replays them). */
std::vector<ConstFoldClaim>
findAndApplyConstFolds(Module &m)
{
    std::vector<ConstFoldClaim> claims;
    for (uint32_t f = 0; f < m.numFunctions(); ++f) {
        if (m.functions[f].imported())
            continue;
        std::vector<Instr> &body = m.functions[f].body;
        uint32_t i = 0;
        while (i < body.size()) {
            bool folded = false;
            for (uint32_t count : {2u, 3u, 4u}) {
                std::optional<uint32_t> v = foldWindow(body, i, count);
                if (!v)
                    continue;
                ConstFoldClaim claim{f, i, count, *v};
                applyConstFold(body, claim, *v);
                claims.push_back(claim);
                // The new constant may combine with what precedes it.
                i = i >= 3 ? i - 3 : 0;
                folded = true;
                break;
            }
            if (!folded)
                ++i;
        }
    }
    return claims;
}

// ----- dead-stores ---------------------------------------------------

std::vector<DeadStoreClaim>
findDeadStores(const Module &m)
{
    std::vector<DeadStoreClaim> claims;
    for (uint32_t f = 0; f < m.numFunctions(); ++f) {
        if (m.functions[f].imported())
            continue;
        for (const passes::DeadStore &ds : passes::deadStores(m, f))
            claims.push_back(DeadStoreClaim{ds.func, ds.instr, ds.local});
    }
    return claims;
}

void
applyDeadStores(Module &m, const std::vector<DeadStoreClaim> &claims)
{
    for (const DeadStoreClaim &c : claims) {
        std::vector<Instr> &body = m.functions[c.func].body;
        if (c.instr >= body.size())
            throw RewriteError("opt.bad-claim",
                               "dead-store claim out of range");
        body[c.instr] = Instr(Opcode::Drop);
    }
}

// ----- empty-blocks --------------------------------------------------

std::vector<EmptyBlockClaim>
findEmptyBlocks(const Module &m)
{
    std::vector<EmptyBlockClaim> claims;
    for (uint32_t f = 0; f < m.numFunctions(); ++f) {
        if (m.functions[f].imported())
            continue;
        const std::vector<Instr> &body = m.functions[f].body;
        std::vector<core::BlockMatch> match = core::matchBlocks(body);
        for (uint32_t i = 0; i < body.size(); ++i) {
            // `if` is excluded: deleting an empty if/end pair would
            // leave its popped condition on the stack.
            if ((body[i].op == Opcode::Block ||
                 body[i].op == Opcode::Loop) &&
                match[i].endIdx == i + 1)
                claims.push_back(EmptyBlockClaim{f, i});
        }
    }
    return claims;
}

void
applyEmptyBlocks(Module &m, const std::vector<EmptyBlockClaim> &claims)
{
    for (auto it = claims.rbegin(); it != claims.rend(); ++it) {
        std::vector<Instr> &body = m.functions[it->func].body;
        if (static_cast<uint64_t>(it->begin) + 2 > body.size())
            throw RewriteError("opt.bad-claim",
                               "empty-block claim out of range");
        body.erase(body.begin() + it->begin,
                   body.begin() + it->begin + 2);
    }
}

} // namespace

const std::vector<std::string> &
allOptPasses()
{
    static const std::vector<std::string> kPasses{
        kPassDeadFunctions, kPassCallIndirect,  kPassIpoConst,
        kPassInline,        kPassTableCompact,  kPassConstFold,
        kPassDeadStores,    kPassEmptyBlocks,
    };
    return kPasses;
}

bool
isOptPass(const std::string &name)
{
    const std::vector<std::string> &all = allOptPasses();
    return std::find(all.begin(), all.end(), name) != all.end();
}

std::vector<std::string>
parsePassSpec(const std::string &spec)
{
    if (spec.empty() || spec == "all")
        return allOptPasses();
    auto validList = [] {
        std::string names;
        for (const std::string &p : allOptPasses())
            names += (names.empty() ? "" : ", ") + p;
        return names;
    };
    std::vector<std::string> passes;
    size_t pos = 0;
    while (pos <= spec.size()) {
        const size_t comma = spec.find(',', pos);
        const std::string name =
            spec.substr(pos, comma == std::string::npos
                                 ? std::string::npos
                                 : comma - pos);
        if (name.empty())
            throw RewriteError("opt.unknown-pass",
                               "empty pass name in \"" + spec +
                                   "\"; valid passes: " + validList());
        if (!isOptPass(name))
            throw RewriteError("opt.unknown-pass",
                               "unknown pass \"" + name +
                                   "\"; valid passes: " + validList());
        passes.push_back(name);
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return passes;
}

OptResult
optimize(const Module &m, const std::vector<std::string> &passes)
{
    for (const std::string &p : passes) {
        if (!isOptPass(p))
            throw RewriteError("opt.unknown-pass",
                               "unknown pass \"" + p + "\"");
    }
    auto requested = [&](const char *name) {
        return std::find(passes.begin(), passes.end(), name) !=
               passes.end();
    };

    OptResult result;
    result.module = m;
    Module &cur = result.module;
    OptClaims &claims = result.claims;

    // Canonical order, independent of the order requested.
    if (requested(kPassDeadFunctions)) {
        claims.passes.push_back(kPassDeadFunctions);
        claims.strippedFunctions = strippableFunctions(cur);
        cur = applyStrip(cur, claims.strippedFunctions);
    }
    if (requested(kPassCallIndirect)) {
        claims.passes.push_back(kPassCallIndirect);
        claims.directCalls = findDirectCalls(cur);
        applyDirectCalls(cur, claims.directCalls);
    }
    if (requested(kPassIpoConst)) {
        claims.passes.push_back(kPassIpoConst);
        interproc::ModuleIpcp ipcp = interproc::ipcpSolve(cur);
        claims.ipoConstArgs = findIpoConstArgs(cur, ipcp);
        claims.ipoConstReturns = findIpoConstReturns(cur, ipcp);
        applyIpoConstArgs(cur, claims.ipoConstArgs);
        applyIpoConstReturns(cur, claims.ipoConstReturns);
    }
    if (requested(kPassInline)) {
        claims.passes.push_back(kPassInline);
        claims.inlinedCalls = findInlines(cur);
        applyInlines(cur, claims.inlinedCalls);
        claims.inlineStripped =
            strippableAfterInline(cur, claims.inlinedCalls);
        cur = applyStrip(cur, claims.inlineStripped);
    }
    if (requested(kPassTableCompact)) {
        claims.passes.push_back(kPassTableCompact);
        if (std::optional<TableCompactPlan> plan =
                planTableCompact(cur)) {
            claims.tableSlots = plan->slots;
            claims.tableIndexRewrites = plan->rewrites;
            claims.tableStripped = plan->stripped;
            applyTableCompact(cur, *plan);
        }
    }
    if (requested(kPassConstFold)) {
        claims.passes.push_back(kPassConstFold);
        claims.constFolds = findAndApplyConstFolds(cur);
    }
    if (requested(kPassDeadStores)) {
        claims.passes.push_back(kPassDeadStores);
        claims.deadStores = findDeadStores(cur);
        applyDeadStores(cur, claims.deadStores);
    }
    if (requested(kPassEmptyBlocks)) {
        claims.passes.push_back(kPassEmptyBlocks);
        claims.emptyBlocks = findEmptyBlocks(cur);
        applyEmptyBlocks(cur, claims.emptyBlocks);
    }
    return result;
}

// ----- manifest ------------------------------------------------------

std::string
claimsToManifest(const OptClaims &claims)
{
    std::string out = "{\n  \"schema\": \"wasabi-opt-manifest\",\n"
                      "  \"version\": 1,\n  \"passes\": [";
    bool first = true;
    for (const std::string &p : claims.passes) {
        out += std::string(first ? "" : ", ") + "\"" + p + "\"";
        first = false;
    }
    out += "],\n  \"strippedFunctions\": [";
    first = true;
    for (uint32_t f : claims.strippedFunctions) {
        out += std::string(first ? "" : ", ") + std::to_string(f);
        first = false;
    }
    out += "],\n  \"directCalls\": [";
    first = true;
    for (const DirectCallClaim &c : claims.directCalls) {
        out += std::string(first ? "" : ", ") + "[" +
               std::to_string(c.func) + ", " + std::to_string(c.instr) +
               ", " + std::to_string(c.typeIdx) + ", " +
               std::to_string(c.target) + "]";
        first = false;
    }
    out += "],\n  \"ipoConstArgs\": [";
    first = true;
    for (const IpoConstArgClaim &c : claims.ipoConstArgs) {
        out += std::string(first ? "" : ", ") + "[" +
               std::to_string(c.func) + ", " + std::to_string(c.instr) +
               ", " + std::to_string(c.local) + ", " +
               std::to_string(c.value) + "]";
        first = false;
    }
    out += "],\n  \"ipoConstReturns\": [";
    first = true;
    for (const IpoConstReturnClaim &c : claims.ipoConstReturns) {
        out += std::string(first ? "" : ", ") + "[" +
               std::to_string(c.func) + ", " + std::to_string(c.instr) +
               ", " + std::to_string(c.callee) + ", " +
               std::to_string(c.value) + "]";
        first = false;
    }
    out += "],\n  \"inlinedCalls\": [";
    first = true;
    for (const InlineClaim &c : claims.inlinedCalls) {
        out += std::string(first ? "" : ", ") + "[" +
               std::to_string(c.func) + ", " + std::to_string(c.instr) +
               ", " + std::to_string(c.callee) + "]";
        first = false;
    }
    out += "],\n  \"inlineStripped\": [";
    first = true;
    for (uint32_t f : claims.inlineStripped) {
        out += std::string(first ? "" : ", ") + std::to_string(f);
        first = false;
    }
    out += "],\n  \"tableSlots\": [";
    first = true;
    for (const TableSlotClaim &c : claims.tableSlots) {
        out += std::string(first ? "" : ", ") + "[" +
               std::to_string(c.oldSlot) + ", " +
               std::to_string(c.funcIdx) + "]";
        first = false;
    }
    out += "],\n  \"tableIndexRewrites\": [";
    first = true;
    for (const TableIndexRewriteClaim &c : claims.tableIndexRewrites) {
        out += std::string(first ? "" : ", ") + "[" +
               std::to_string(c.func) + ", " + std::to_string(c.instr) +
               ", " + std::to_string(c.oldIndex) + ", " +
               std::to_string(c.newIndex) + "]";
        first = false;
    }
    out += "],\n  \"tableStripped\": [";
    first = true;
    for (uint32_t f : claims.tableStripped) {
        out += std::string(first ? "" : ", ") + std::to_string(f);
        first = false;
    }
    out += "],\n  \"constFolds\": [";
    first = true;
    for (const ConstFoldClaim &c : claims.constFolds) {
        out += std::string(first ? "" : ", ") + "[" +
               std::to_string(c.func) + ", " + std::to_string(c.first) +
               ", " + std::to_string(c.count) + ", " +
               std::to_string(c.value) + "]";
        first = false;
    }
    out += "],\n  \"deadStores\": [";
    first = true;
    for (const DeadStoreClaim &c : claims.deadStores) {
        out += std::string(first ? "" : ", ") + "[" +
               std::to_string(c.func) + ", " + std::to_string(c.instr) +
               ", " + std::to_string(c.local) + "]";
        first = false;
    }
    out += "],\n  \"emptyBlocks\": [";
    first = true;
    for (const EmptyBlockClaim &c : claims.emptyBlocks) {
        out += std::string(first ? "" : ", ") + "[" +
               std::to_string(c.func) + ", " + std::to_string(c.begin) +
               "]";
        first = false;
    }
    out += "]\n}\n";
    return out;
}

namespace {

/** Minimal parser for the opt manifest's JSON subset: one object with
 * string keys, string values, and arrays of strings / non-negative
 * integers / fixed-width integer rows. No external JSON dependency is
 * available (or needed). */
class OptManifestParser {
  public:
    explicit OptManifestParser(const std::string &text) : text_(text) {}

    bool
    parse(OptClaims &claims, std::string &error)
    {
        skipWs();
        if (!expect('{')) {
            error = err_;
            return false;
        }
        bool first = true;
        while (true) {
            skipWs();
            if (peek() == '}') {
                ++pos_;
                break;
            }
            if (!first && !expect(',')) {
                error = err_;
                return false;
            }
            first = false;
            skipWs();
            std::string key;
            if (!parseString(key)) {
                error = err_;
                return false;
            }
            skipWs();
            if (!expect(':')) {
                error = err_;
                return false;
            }
            skipWs();
            if (!parseField(key, claims)) {
                error = err_;
                return false;
            }
        }
        skipWs();
        if (pos_ != text_.size()) {
            error = "trailing characters after manifest object";
            return false;
        }
        if (!sawSchema_) {
            error = "manifest lacks a \"schema\" field";
            return false;
        }
        if (!sawVersion_) {
            error = "manifest lacks a \"version\" field";
            return false;
        }
        return true;
    }

  private:
    char
    peek() const
    {
        return pos_ < text_.size() ? text_[pos_] : '\0';
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool
    expect(char c)
    {
        if (peek() != c) {
            err_ = std::string("expected '") + c + "' at offset " +
                   std::to_string(pos_);
            return false;
        }
        ++pos_;
        return true;
    }

    bool
    parseString(std::string &out)
    {
        if (!expect('"'))
            return false;
        out.clear();
        while (pos_ < text_.size() && text_[pos_] != '"') {
            if (text_[pos_] == '\\') {
                err_ = "escape sequences are not supported";
                return false;
            }
            out += text_[pos_++];
        }
        return expect('"');
    }

    bool
    parseUint(uint64_t &out)
    {
        if (!std::isdigit(static_cast<unsigned char>(peek()))) {
            err_ = "expected integer at offset " + std::to_string(pos_);
            return false;
        }
        out = 0;
        while (std::isdigit(static_cast<unsigned char>(peek()))) {
            out = out * 10 + static_cast<uint64_t>(text_[pos_] - '0');
            if (out > 0xFFFFFFFFull) {
                err_ = "integer out of range at offset " +
                       std::to_string(pos_);
                return false;
            }
            ++pos_;
        }
        return true;
    }

    /** Parse `[n, n, ...]` rows of exactly @p width into @p rows. */
    bool
    parseRows(size_t width, std::vector<std::vector<uint32_t>> &rows)
    {
        if (!expect('['))
            return false;
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            std::vector<uint32_t> row;
            if (width == 1) {
                uint64_t v;
                if (!parseUint(v))
                    return false;
                row.push_back(static_cast<uint32_t>(v));
            } else {
                if (!expect('['))
                    return false;
                for (size_t k = 0; k < width; ++k) {
                    skipWs();
                    if (k > 0 && !expect(','))
                        return false;
                    skipWs();
                    uint64_t v;
                    if (!parseUint(v))
                        return false;
                    row.push_back(static_cast<uint32_t>(v));
                }
                skipWs();
                if (!expect(']'))
                    return false;
            }
            rows.push_back(std::move(row));
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            return expect(']');
        }
    }

    bool
    parseField(const std::string &key, OptClaims &claims)
    {
        if (key == "schema") {
            std::string schema;
            if (!parseString(schema))
                return false;
            if (schema != "wasabi-opt-manifest") {
                err_ = "unexpected schema \"" + schema + "\"";
                return false;
            }
            sawSchema_ = true;
            return true;
        }
        if (key == "version") {
            uint64_t v;
            if (!parseUint(v))
                return false;
            if (v != 1) {
                err_ = "unsupported manifest version " +
                       std::to_string(v);
                return false;
            }
            sawVersion_ = true;
            return true;
        }
        if (key == "passes") {
            if (!expect('['))
                return false;
            skipWs();
            if (peek() == ']') {
                ++pos_;
                return true;
            }
            while (true) {
                skipWs();
                std::string p;
                if (!parseString(p))
                    return false;
                claims.passes.push_back(std::move(p));
                skipWs();
                if (peek() == ',') {
                    ++pos_;
                    continue;
                }
                return expect(']');
            }
        }
        std::vector<std::vector<uint32_t>> rows;
        if (key == "strippedFunctions") {
            if (!parseRows(1, rows))
                return false;
            for (const auto &r : rows)
                claims.strippedFunctions.push_back(r[0]);
            return true;
        }
        if (key == "directCalls") {
            if (!parseRows(4, rows))
                return false;
            for (const auto &r : rows)
                claims.directCalls.push_back(
                    DirectCallClaim{r[0], r[1], r[2], r[3]});
            return true;
        }
        if (key == "ipoConstArgs") {
            if (!parseRows(4, rows))
                return false;
            for (const auto &r : rows)
                claims.ipoConstArgs.push_back(
                    IpoConstArgClaim{r[0], r[1], r[2], r[3]});
            return true;
        }
        if (key == "ipoConstReturns") {
            if (!parseRows(4, rows))
                return false;
            for (const auto &r : rows)
                claims.ipoConstReturns.push_back(
                    IpoConstReturnClaim{r[0], r[1], r[2], r[3]});
            return true;
        }
        if (key == "inlinedCalls") {
            if (!parseRows(3, rows))
                return false;
            for (const auto &r : rows)
                claims.inlinedCalls.push_back(
                    InlineClaim{r[0], r[1], r[2]});
            return true;
        }
        if (key == "inlineStripped") {
            if (!parseRows(1, rows))
                return false;
            for (const auto &r : rows)
                claims.inlineStripped.push_back(r[0]);
            return true;
        }
        if (key == "tableSlots") {
            if (!parseRows(2, rows))
                return false;
            for (const auto &r : rows)
                claims.tableSlots.push_back(TableSlotClaim{r[0], r[1]});
            return true;
        }
        if (key == "tableIndexRewrites") {
            if (!parseRows(4, rows))
                return false;
            for (const auto &r : rows)
                claims.tableIndexRewrites.push_back(
                    TableIndexRewriteClaim{r[0], r[1], r[2], r[3]});
            return true;
        }
        if (key == "tableStripped") {
            if (!parseRows(1, rows))
                return false;
            for (const auto &r : rows)
                claims.tableStripped.push_back(r[0]);
            return true;
        }
        if (key == "constFolds") {
            if (!parseRows(4, rows))
                return false;
            for (const auto &r : rows)
                claims.constFolds.push_back(
                    ConstFoldClaim{r[0], r[1], r[2], r[3]});
            return true;
        }
        if (key == "deadStores") {
            if (!parseRows(3, rows))
                return false;
            for (const auto &r : rows)
                claims.deadStores.push_back(
                    DeadStoreClaim{r[0], r[1], r[2]});
            return true;
        }
        if (key == "emptyBlocks") {
            if (!parseRows(2, rows))
                return false;
            for (const auto &r : rows)
                claims.emptyBlocks.push_back(EmptyBlockClaim{r[0], r[1]});
            return true;
        }
        err_ = "unknown manifest field \"" + key + "\"";
        return false;
    }

    const std::string &text_;
    size_t pos_ = 0;
    std::string err_;
    bool sawSchema_ = false;
    bool sawVersion_ = false;
};

} // namespace

bool
claimsFromManifest(const std::string &text, OptClaims &claims,
                   std::string *error)
{
    std::string err;
    if (!OptManifestParser(text).parse(claims, err)) {
        if (error)
            *error = err;
        return false;
    }
    return true;
}

bool
isOptManifest(const std::string &text)
{
    return text.find("\"wasabi-opt-manifest\"") != std::string::npos;
}

// ----- checker -------------------------------------------------------

namespace {

bool
listed(const OptClaims &claims, const char *pass)
{
    return std::find(claims.passes.begin(), claims.passes.end(), pass) !=
           claims.passes.end();
}

} // namespace

Diagnostics
checkOptimization(const Module &original,
                  const std::vector<uint8_t> &optimized_bytes,
                  const OptClaims &claims)
{
    Diagnostics ds;

    for (const std::string &p : claims.passes) {
        if (!isOptPass(p))
            ds.error("check.opt.unknown-pass",
                     "manifest lists unknown pass \"" + p + "\"");
    }
    // Claims for a pass the manifest does not list cannot have been
    // produced by that manifest's run — tamper evidence.
    if (!listed(claims, kPassDeadFunctions) &&
        !claims.strippedFunctions.empty())
        ds.error("check.opt.orphan-claims",
                 "strippedFunctions present but dead-functions not in "
                 "passes");
    if (!listed(claims, kPassCallIndirect) && !claims.directCalls.empty())
        ds.error("check.opt.orphan-claims",
                 "directCalls present but call-indirect not in passes");
    if (!listed(claims, kPassIpoConst) &&
        (!claims.ipoConstArgs.empty() || !claims.ipoConstReturns.empty()))
        ds.error("check.opt.orphan-claims",
                 "ipoConst claims present but ipo-const not in passes");
    if (!listed(claims, kPassInline) &&
        (!claims.inlinedCalls.empty() || !claims.inlineStripped.empty()))
        ds.error("check.opt.orphan-claims",
                 "inline claims present but inline not in passes");
    if (!listed(claims, kPassTableCompact) &&
        (!claims.tableSlots.empty() ||
         !claims.tableIndexRewrites.empty() ||
         !claims.tableStripped.empty()))
        ds.error("check.opt.orphan-claims",
                 "table claims present but table-compact not in passes");
    if (!listed(claims, kPassConstFold) && !claims.constFolds.empty())
        ds.error("check.opt.orphan-claims",
                 "constFolds present but const-fold not in passes");
    if (!listed(claims, kPassDeadStores) && !claims.deadStores.empty())
        ds.error("check.opt.orphan-claims",
                 "deadStores present but dead-stores not in passes");
    if (!listed(claims, kPassEmptyBlocks) && !claims.emptyBlocks.empty())
        ds.error("check.opt.orphan-claims",
                 "emptyBlocks present but empty-blocks not in passes");
    if (!ds.empty())
        return ds;

    Module replay = original;
    try {
        for (const std::string &pass : claims.passes) {
            if (pass == kPassDeadFunctions) {
                std::vector<uint32_t> provable =
                    strippableFunctions(replay);
                for (uint32_t f : claims.strippedFunctions) {
                    if (!std::binary_search(provable.begin(),
                                            provable.end(), f))
                        ds.error("check.opt.bad-dead-function",
                                 "function " + std::to_string(f) +
                                     " is not provably dead",
                                 f);
                }
                if (!ds.empty())
                    return ds;
                replay = applyStrip(replay, claims.strippedFunctions);
            } else if (pass == kPassCallIndirect) {
                interproc::RefinedCallGraph rcg(replay);
                for (const DirectCallClaim &c : claims.directCalls) {
                    const interproc::CallSite *site =
                        rcg.siteAt(c.func, c.instr);
                    bool ok =
                        site != nullptr &&
                        site->kind ==
                            interproc::SiteKind::IndirectConst &&
                        site->targets.size() == 1 &&
                        site->targets.front() == c.target &&
                        c.func < replay.numFunctions() &&
                        c.instr <
                            replay.functions[c.func].body.size() &&
                        replay.functions[c.func].body[c.instr].op ==
                            Opcode::CallIndirect &&
                        replay.functions[c.func].body[c.instr].imm.idx ==
                            c.typeIdx;
                    if (!ok)
                        ds.error("check.opt.bad-call-target",
                                 "call_indirect is not provably a "
                                 "direct call of function " +
                                     std::to_string(c.target),
                                 c.func, c.instr);
                }
                if (!ds.empty())
                    return ds;
                applyDirectCalls(replay, claims.directCalls);
            } else if (pass == kPassIpoConst) {
                interproc::ModuleIpcp ipcp =
                    interproc::ipcpSolve(replay);
                std::vector<IpoConstArgClaim> provableArgs =
                    findIpoConstArgs(replay, ipcp);
                for (const IpoConstArgClaim &c : claims.ipoConstArgs) {
                    if (std::find(provableArgs.begin(),
                                  provableArgs.end(),
                                  c) == provableArgs.end())
                        ds.error("check.opt.bad-ipo-const-arg",
                                 "parameter " + std::to_string(c.local) +
                                     " is not provably constant " +
                                     std::to_string(c.value),
                                 c.func, c.instr);
                }
                std::vector<IpoConstReturnClaim> provableRets =
                    findIpoConstReturns(replay, ipcp);
                for (const IpoConstReturnClaim &c :
                     claims.ipoConstReturns) {
                    if (std::find(provableRets.begin(),
                                  provableRets.end(),
                                  c) == provableRets.end())
                        ds.error("check.opt.bad-ipo-const-return",
                                 "call of function " +
                                     std::to_string(c.callee) +
                                     " does not provably fold to " +
                                     std::to_string(c.value),
                                 c.func, c.instr);
                }
                if (!ds.empty())
                    return ds;
                applyIpoConstArgs(replay, claims.ipoConstArgs);
                applyIpoConstReturns(replay, claims.ipoConstReturns);
            } else if (pass == kPassInline) {
                std::vector<InlineClaim> provable = findInlines(replay);
                for (const InlineClaim &c : claims.inlinedCalls) {
                    if (std::find(provable.begin(), provable.end(), c) ==
                        provable.end())
                        ds.error("check.opt.bad-ipo-inline",
                                 "call of function " +
                                     std::to_string(c.callee) +
                                     " is not provably inlinable",
                                 c.func, c.instr);
                }
                if (!ds.empty())
                    return ds;
                applyInlines(replay, claims.inlinedCalls);
                std::vector<uint32_t> strippable =
                    strippableAfterInline(replay, claims.inlinedCalls);
                for (uint32_t f : claims.inlineStripped) {
                    if (!std::binary_search(strippable.begin(),
                                            strippable.end(), f))
                        ds.error("check.opt.bad-ipo-inline",
                                 "function " + std::to_string(f) +
                                     " is not provably strippable "
                                     "after inlining",
                                 f);
                }
                if (!ds.empty())
                    return ds;
                replay = applyStrip(replay, claims.inlineStripped);
            } else if (pass == kPassTableCompact) {
                std::optional<TableCompactPlan> plan =
                    planTableCompact(replay);
                const bool match =
                    plan ? (claims.tableSlots == plan->slots &&
                            claims.tableIndexRewrites ==
                                plan->rewrites &&
                            claims.tableStripped == plan->stripped)
                         : (claims.tableSlots.empty() &&
                            claims.tableIndexRewrites.empty() &&
                            claims.tableStripped.empty());
                if (!match) {
                    ds.error("check.opt.bad-table-compact",
                             "table claims differ from the derived "
                             "compaction plan");
                    return ds;
                }
                if (plan)
                    applyTableCompact(replay, *plan);
            } else if (pass == kPassConstFold) {
                // Sequential replay: each claim's coordinates refer to
                // the body after the previous claims were applied.
                for (const ConstFoldClaim &c : claims.constFolds) {
                    std::optional<uint32_t> v;
                    if (c.func < replay.numFunctions() &&
                        !replay.functions[c.func].imported())
                        v = foldWindow(replay.functions[c.func].body,
                                       c.first, c.count);
                    if (!v || *v != c.value) {
                        ds.error("check.opt.bad-fold",
                                 "sequence does not provably fold to " +
                                     std::to_string(c.value),
                                 c.func, c.first);
                        return ds;
                    }
                    applyConstFold(replay.functions[c.func].body, c,
                                   *v);
                }
            } else if (pass == kPassDeadStores) {
                std::vector<DeadStoreClaim> provable =
                    findDeadStores(replay);
                for (const DeadStoreClaim &c : claims.deadStores) {
                    bool ok = std::any_of(
                        provable.begin(), provable.end(),
                        [&](const DeadStoreClaim &p) {
                            return p.func == c.func &&
                                   p.instr == c.instr &&
                                   p.local == c.local;
                        });
                    if (!ok)
                        ds.error("check.opt.bad-dead-store",
                                 "local.set of local " +
                                     std::to_string(c.local) +
                                     " is not provably dead",
                                 c.func, c.instr);
                }
                if (!ds.empty())
                    return ds;
                applyDeadStores(replay, claims.deadStores);
            } else if (pass == kPassEmptyBlocks) {
                std::vector<EmptyBlockClaim> provable =
                    findEmptyBlocks(replay);
                for (const EmptyBlockClaim &c : claims.emptyBlocks) {
                    bool ok = std::any_of(
                        provable.begin(), provable.end(),
                        [&](const EmptyBlockClaim &p) {
                            return p.func == c.func &&
                                   p.begin == c.begin;
                        });
                    if (!ok)
                        ds.error("check.opt.bad-empty-block",
                                 "instructions are not an empty "
                                 "block/loop pair",
                                 c.func, c.begin);
                }
                if (!ds.empty())
                    return ds;
                applyEmptyBlocks(replay, claims.emptyBlocks);
            }
        }
    } catch (const std::exception &e) {
        ds.error("check.opt.replay-failed",
                 std::string("claimed edit could not be replayed: ") +
                     e.what());
        return ds;
    }

    // The shipped binary must decode, validate, and be byte-identical
    // to the replay — anything else means it was not produced by the
    // claimed transforms.
    try {
        Module decoded = wasm::decodeModule(optimized_bytes);
        if (std::optional<std::string> err = wasm::validationError(decoded))
            ds.error("check.opt.invalid-output",
                     "optimized binary fails validation: " + *err);
    } catch (const wasm::DecodeError &e) {
        ds.error("check.opt.invalid-output",
                 std::string("optimized binary fails to decode: ") +
                     e.what());
        return ds;
    }
    if (wasm::encodeModule(replay) != optimized_bytes)
        ds.error("check.opt.output-mismatch",
                 "optimized binary differs from the replayed transforms");
    return ds;
}

} // namespace wasabi::static_analysis::rewrite
