/**
 * @file
 * Section-level module rewriting with automatic index fixup: insert /
 * delete / replace functions, replace bodies, and edit types, globals,
 * element segments, and the start section. Edits are recorded against
 * the *original* index space and applied atomically by apply(), which
 * compacts the entity vectors, renumbers every reference through the
 * shared wasm::remapModule fixup layer (bodies, element segments,
 * start, exports-by-position, and all "name" subsections), and returns
 * the resulting module plus the old->new IndexRemap.
 *
 * Zero registered edits are guaranteed byte-identity: apply() returns
 * a module whose encoding equals the original's encoding.
 *
 * References to functions added by this rewriter use opaque handles
 * (kNewFuncHandle + n, in the spirit of the instrumenter's hook-index
 * sentinel); plain indices inside new bodies refer to the original
 * index space and are remapped like everything else.
 */

#ifndef WASABI_STATIC_REWRITE_REWRITE_H
#define WASABI_STATIC_REWRITE_REWRITE_H

#include <map>
#include <optional>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "wasm/module.h"
#include "wasm/remap.h"

namespace wasabi::static_analysis::rewrite {

/** Structured rewrite failure with a stable dotted code, e.g.
 * "rewrite.delete-exported". */
class RewriteError : public std::runtime_error {
  public:
    RewriteError(std::string code, const std::string &what)
        : std::runtime_error("rewrite error [" + code + "]: " + what),
          code_(std::move(code))
    {
    }

    const std::string &code() const { return code_; }

  private:
    std::string code_;
};

/** Base of the handle range returned by addFunction. Handles are
 * valid wherever a function index is expected in a registered edit
 * (Call immediates, element lists, setStart). */
inline constexpr uint32_t kNewFuncHandle = 0x80000000u;

/** Outcome of apply(). */
struct RewriteResult {
    wasm::Module module;
    /** Old index -> new index (kDeletedIndex for deleted entities);
     * identity when no functions were deleted. */
    wasm::IndexRemap remap;
    /** Final indices of functions added via addFunction, in call
     * order (resolves each kNewFuncHandle + n). */
    std::vector<uint32_t> newFunctionIndices;
};

/**
 * Records edits against a source module and applies them all at once.
 * The source module is not modified. Errors (index out of range,
 * deleting an exported function, element segment referencing a
 * deleted function, ...) surface as RewriteError / wasm::RemapError
 * from apply(), never as silent corruption.
 */
class ModuleRewriter {
  public:
    explicit ModuleRewriter(const wasm::Module &m) : m_(m) {}

    /** Delete function @p idx (original index space). Exported
     * functions are refused at apply() time ("rewrite.delete-exported"):
     * deleting one silently changes the host-visible surface. */
    void deleteFunction(uint32_t idx);

    /** Add a defined function (imports are refused: they would break
     * the imports-before-defined encoding invariant when appended).
     * Returns a handle (kNewFuncHandle + n) usable in other edits. */
    uint32_t addFunction(wasm::Function f);

    /** Replace the body (and optionally the non-param locals) of
     * function @p idx. The body must include the terminating `end`. */
    void replaceBody(uint32_t idx, std::vector<wasm::Instr> body,
                     std::optional<std::vector<wasm::ValType>> locals =
                         std::nullopt);

    /** Add a function type; returns its final index (types are
     * append-only and deduplicated against existing types). */
    uint32_t addType(const wasm::FuncType &type);

    /** Add a defined global; returns its final index. */
    uint32_t addGlobal(wasm::Global g);

    /** Replace the initializer of defined global @p idx (must include
     * the terminating `end`). */
    void setGlobalInit(uint32_t idx, std::vector<wasm::Instr> init);

    /** Replace the function list of element segment @p seg. */
    void setElementFuncs(uint32_t seg, std::vector<uint32_t> funcs);

    /** Set or clear the start function. */
    void setStart(std::optional<uint32_t> func);

    bool hasEdits() const;

    /** Apply all recorded edits. Throws RewriteError on malformed
     * edits and wasm::RemapError when surviving code references a
     * deleted function. */
    RewriteResult apply() const;

  private:
    const wasm::Module &m_;
    std::set<uint32_t> deletions_;
    std::vector<wasm::Function> newFunctions_;
    std::map<uint32_t, std::pair<std::vector<wasm::Instr>,
                                 std::optional<std::vector<wasm::ValType>>>>
        bodyReplacements_;
    std::vector<wasm::FuncType> newTypes_;
    std::vector<wasm::Global> newGlobals_;
    std::map<uint32_t, std::vector<wasm::Instr>> globalInits_;
    std::map<uint32_t, std::vector<uint32_t>> elementFuncs_;
    std::optional<std::optional<uint32_t>> start_;
};

} // namespace wasabi::static_analysis::rewrite

#endif // WASABI_STATIC_REWRITE_REWRITE_H
