/**
 * @file
 * A small forward dataflow framework over per-function CFGs: a
 * worklist solver in reverse post-order, parameterized over the
 * lattice (merge) and transfer function, plus the two standard
 * instances the checker and `wasabi analyze` need — reachability and
 * dominators (with immediate dominators and back-edge detection).
 */

#ifndef WASABI_STATIC_DATAFLOW_H
#define WASABI_STATIC_DATAFLOW_H

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "static/cfg.h"

namespace wasabi::static_analysis {

/**
 * Solve a forward dataflow problem to a fixpoint. The problem type
 * supplies:
 *
 *   using Value = ...;             // one lattice element
 *   Value boundary();              // entry block's in-value
 *   Value initial();               // all other blocks' in-value
 *   Value transfer(const Cfg &, uint32_t block, const Value &in);
 *   bool  merge(Value &into, const Value &from);  // true if changed
 *
 * Returns the in-value of every block. Iterates blocks in reverse
 * post-order, which converges in O(loop-nesting-depth) passes for the
 * reducible CFGs structured Wasm control flow produces.
 */
template <typename Problem>
std::vector<typename Problem::Value>
solveForward(const Cfg &cfg, Problem &problem)
{
    using Value = typename Problem::Value;
    const uint32_t n = cfg.numBlocks();
    std::vector<Value> in(n, problem.initial());
    in[cfg.entry()] = problem.boundary();

    std::vector<uint32_t> order = cfg.reversePostOrder();
    bool changed = true;
    while (changed) {
        changed = false;
        for (uint32_t b : order) {
            Value out = problem.transfer(cfg, b, in[b]);
            for (uint32_t s : cfg.blocks()[b].succs) {
                // Copy in/out of the container: std::vector<bool>'s
                // proxy references cannot bind to Value&.
                Value merged = in[s];
                if (problem.merge(merged, out)) {
                    in[s] = std::move(merged);
                    changed = true;
                }
            }
        }
    }
    return in;
}

/**
 * Solve a backward dataflow problem to a fixpoint (same problem
 * signature as solveForward, with transfer mapping a block's
 * *out*-value to its *in*-value). The boundary value seeds the
 * synthetic exit block; blocks are iterated in post order, the
 * backward analogue of reverse post-order. Returns the out-value of
 * every block.
 */
template <typename Problem>
std::vector<typename Problem::Value>
solveBackward(const Cfg &cfg, Problem &problem)
{
    using Value = typename Problem::Value;
    const uint32_t n = cfg.numBlocks();
    std::vector<Value> out(n, problem.initial());
    out[cfg.exit()] = problem.boundary();

    std::vector<uint32_t> order = cfg.reversePostOrder();
    std::reverse(order.begin(), order.end());
    bool changed = true;
    while (changed) {
        changed = false;
        for (uint32_t b : order) {
            Value in = problem.transfer(cfg, b, out[b]);
            for (uint32_t p : cfg.blocks()[b].preds) {
                Value merged = out[p];
                if (problem.merge(merged, in)) {
                    out[p] = std::move(merged);
                    changed = true;
                }
            }
        }
    }
    return out;
}

/** A fixed-size bit set, the lattice element of set-based analyses. */
class BitSet {
  public:
    BitSet() = default;
    explicit BitSet(uint32_t size, bool all_ones = false);

    void set(uint32_t i) { words_[i >> 6] |= 1ull << (i & 63); }
    void reset(uint32_t i) { words_[i >> 6] &= ~(1ull << (i & 63)); }
    bool test(uint32_t i) const
    {
        return (words_[i >> 6] >> (i & 63)) & 1;
    }

    /** this &= other; returns true if this changed. */
    bool intersectWith(const BitSet &other);
    /** this |= other; returns true if this changed. */
    bool unionWith(const BitSet &other);

    uint32_t count() const;
    uint32_t size() const { return size_; }

    bool operator==(const BitSet &other) const = default;

  private:
    uint32_t size_ = 0;
    std::vector<uint64_t> words_;
};

/** Reachability from the entry block (a trivial dataflow instance). */
std::vector<bool> reachableBlocks(const Cfg &cfg);

/**
 * Dominator sets: doms[b] contains block d iff d dominates b.
 * Unreachable blocks keep the full universe (vacuous domination).
 */
std::vector<BitSet> dominatorSets(const Cfg &cfg);

/** Sentinel for "no immediate dominator" (entry / unreachable). */
inline constexpr uint32_t kNoIdom = 0xFFFFFFFF;

/** Immediate dominators derived from dominatorSets. */
std::vector<uint32_t> immediateDominators(const Cfg &cfg);

/** Back edges (tail, head) where head dominates tail — one natural
 * loop per distinct head in structured Wasm code. */
std::vector<std::pair<uint32_t, uint32_t>> backEdges(const Cfg &cfg);

} // namespace wasabi::static_analysis

#endif // WASABI_STATIC_DATAFLOW_H
