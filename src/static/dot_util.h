/**
 * @file
 * Graphviz label escaping shared by every DOT emitter (`wasabi
 * analyze --dot=`, `--callgraph-dot=`). Function debug names come
 * from an untrusted name section and may contain quotes, backslashes
 * or arbitrary non-ASCII bytes; emitted verbatim inside a quoted DOT
 * string they would break the output's syntax.
 */

#ifndef WASABI_STATIC_DOT_UTIL_H
#define WASABI_STATIC_DOT_UTIL_H

#include <cstdio>
#include <string>
#include <string_view>

namespace wasabi::static_analysis {

/**
 * Escape @p s for use inside a double-quoted DOT string: quotes and
 * backslashes are backslash-escaped, newlines become the `\n` label
 * escape, and control/non-ASCII bytes are rendered as literal
 * `\xNN` text (with the backslash itself escaped, so Graphviz treats
 * it as plain characters). The result is always valid inside
 * `"`...`"`.
 */
inline std::string
escapeDotLabel(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        if (c == '"') {
            out += "\\\"";
        } else if (c == '\\') {
            out += "\\\\";
        } else if (c == '\n') {
            out += "\\n";
        } else if (c < 0x20 || c >= 0x7F) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\\\x%02X", c);
            out += buf;
        } else {
            out += static_cast<char>(c);
        }
    }
    return out;
}

} // namespace wasabi::static_analysis

#endif // WASABI_STATIC_DOT_UTIL_H
