/**
 * @file
 * Graphviz helpers shared by every DOT emitter (`wasabi analyze
 * --dot=`, the static and refined call graphs): label escaping plus
 * one generic digraph renderer, so node/edge styling conventions live
 * in a single place. Function debug names come from an untrusted name
 * section and may contain quotes, backslashes or arbitrary non-ASCII
 * bytes; emitted verbatim inside a quoted DOT string they would break
 * the output's syntax.
 */

#ifndef WASABI_STATIC_DOT_UTIL_H
#define WASABI_STATIC_DOT_UTIL_H

#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

namespace wasabi::static_analysis {

/**
 * Escape @p s for use inside a double-quoted DOT string: quotes and
 * backslashes are backslash-escaped, newlines become the `\n` label
 * escape, and control/non-ASCII bytes are rendered as literal
 * `\xNN` text (with the backslash itself escaped, so Graphviz treats
 * it as plain characters). The result is always valid inside
 * `"`...`"`.
 */
inline std::string
escapeDotLabel(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        if (c == '"') {
            out += "\\\"";
        } else if (c == '\\') {
            out += "\\\\";
        } else if (c == '\n') {
            out += "\\n";
        } else if (c < 0x20 || c >= 0x7F) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\\\x%02X", c);
            out += buf;
        } else {
            out += static_cast<char>(c);
        }
    }
    return out;
}

/** One node of a rendered digraph. `label` must be pre-escaped. */
struct DotNode {
    std::string id;
    std::string label;
    bool dashed = false; ///< rendered `style=dashed` (dead/unknown)
};

/** One edge of a rendered digraph. `label` must be pre-escaped. */
struct DotEdge {
    std::string from;
    std::string to;
    std::string label;   ///< optional edge label (e.g. site index)
    bool dashed = false; ///< unresolved/approximate edge
    bool bold = false;   ///< statically proven unique edge
};

/**
 * Render a digraph with the house style (box nodes). All call-graph
 * emitters — whole-module, refined, per-site — go through here so the
 * styling stays consistent and escaping cannot be forgotten per
 * emitter.
 */
inline std::string
renderDigraph(const std::string &name, const std::vector<DotNode> &nodes,
              const std::vector<DotEdge> &edges)
{
    std::string out = "digraph " + name + " {\n  node [shape=box];\n";
    for (const DotNode &n : nodes) {
        out += "  " + n.id + " [label=\"" + n.label + "\"";
        if (n.dashed)
            out += ", style=dashed";
        out += "];\n";
    }
    for (const DotEdge &e : edges) {
        out += "  " + e.from + " -> " + e.to;
        std::string attrs;
        if (!e.label.empty())
            attrs += "label=\"" + e.label + "\"";
        if (e.dashed)
            attrs += std::string(attrs.empty() ? "" : ", ") +
                     "style=dashed";
        if (e.bold)
            attrs += std::string(attrs.empty() ? "" : ", ") +
                     "style=bold";
        if (!attrs.empty())
            out += " [" + attrs + "]";
        out += ";\n";
    }
    out += "}\n";
    return out;
}

} // namespace wasabi::static_analysis

#endif // WASABI_STATIC_DOT_UTIL_H
