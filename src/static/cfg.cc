#include "static/cfg.h"

#include <algorithm>
#include <cassert>

#include "core/control_stack.h"
#include "static/dot_util.h"
#include "wasm/opcode.h"

namespace wasabi::static_analysis {

using wasm::Instr;
using wasm::OpClass;
using wasm::Opcode;

namespace {

/** One open structural frame during the resolution walk; only what
 * label resolution needs (a stripped-down paper Figure 6 stack). */
struct Frame {
    bool isLoop = false;
    uint32_t beginIdx = 0;
    uint32_t endIdx = 0;
};

/** Resolves relative labels to absolute instruction indices, exactly
 * like AbstractState::resolveLabel (§2.4.4). An index equal to
 * body.size() denotes the function exit. */
class LabelResolver {
  public:
    LabelResolver(const std::vector<Instr> &body,
                  const std::vector<core::BlockMatch> &matches)
        : body_(body), matches_(matches)
    {
        // Function frame: a branch to it exits the function.
        frames_.push_back(
            {false, 0, static_cast<uint32_t>(body.size()) - 1});
    }

    uint32_t
    resolve(uint32_t label) const
    {
        assert(label < frames_.size());
        const Frame &f = frames_[frames_.size() - 1 - label];
        return f.isLoop ? f.beginIdx + 1 : f.endIdx + 1;
    }

    /** Update the frame stack after instruction @p i. */
    void
    apply(uint32_t i)
    {
        const wasm::OpInfo &info = wasm::opInfo(body_[i].op);
        switch (info.cls) {
          case OpClass::Block:
          case OpClass::Loop:
          case OpClass::If:
            frames_.push_back({info.cls == OpClass::Loop, i,
                               matches_[i].endIdx});
            break;
          case OpClass::End:
            if (frames_.size() > 1)
                frames_.pop_back();
            break;
          default:
            break;
        }
    }

  private:
    const std::vector<Instr> &body_;
    const std::vector<core::BlockMatch> &matches_;
    std::vector<Frame> frames_;
};

} // namespace

Cfg::Cfg(const wasm::Module &m, uint32_t func_idx) : funcIdx_(func_idx)
{
    const wasm::Function &func = m.functions.at(func_idx);
    assert(!func.imported() && "cannot build a CFG of an import");
    const std::vector<Instr> &body = func.body;
    const uint32_t n = static_cast<uint32_t>(body.size());
    std::vector<core::BlockMatch> matches = core::matchBlocks(body);

    // Map each `else` to the `end` of its if (fallthrough out of the
    // then-region jumps over the else-region).
    std::vector<uint32_t> elseToEnd(n, 0);
    for (uint32_t i = 0; i < n; ++i) {
        if (matches[i].elseIdx)
            elseToEnd[*matches[i].elseIdx] = matches[i].endIdx;
    }

    // Pass 1: per-instruction successors (n = synthetic exit).
    std::vector<std::vector<uint32_t>> succs(n);
    LabelResolver resolver(body, matches);
    for (uint32_t i = 0; i < n; ++i) {
        const wasm::OpInfo &info = wasm::opInfo(body[i].op);
        switch (info.cls) {
          case OpClass::Br:
            succs[i] = {resolver.resolve(body[i].imm.idx)};
            break;
          case OpClass::BrIf:
            succs[i] = {resolver.resolve(body[i].imm.idx), i + 1};
            break;
          case OpClass::BrTable:
            for (uint32_t label : body[i].table)
                succs[i].push_back(resolver.resolve(label));
            break;
          case OpClass::Return:
            succs[i] = {n};
            break;
          case OpClass::Unreachable:
            break; // trap: no successors
          case OpClass::If: {
            // True: fall into the then-region. False: jump to the
            // else-region, or (no else) to the matching end.
            uint32_t on_false = matches[i].elseIdx
                                    ? *matches[i].elseIdx + 1
                                    : matches[i].endIdx;
            succs[i] = {i + 1, on_false};
            break;
          }
          case OpClass::Else:
            // Reached by fallthrough from the then-region: skip the
            // else-region entirely.
            succs[i] = {elseToEnd[i]};
            break;
          default:
            succs[i] = {i + 1};
            break;
        }
        resolver.apply(i);
        // Deduplicate (br_table repeats labels; br_if 0 around a
        // block end can coincide with fallthrough).
        std::sort(succs[i].begin(), succs[i].end());
        succs[i].erase(std::unique(succs[i].begin(), succs[i].end()),
                       succs[i].end());
    }

    // Pass 2: leaders. Instruction 0, every branch target, and every
    // instruction following a branch point.
    std::vector<bool> leader(n, false);
    if (n > 0)
        leader[0] = true;
    for (uint32_t i = 0; i < n; ++i) {
        bool fallthrough_only =
            succs[i].size() == 1 && succs[i][0] == i + 1;
        if (!fallthrough_only) {
            for (uint32_t t : succs[i]) {
                if (t < n)
                    leader[t] = true;
            }
            if (i + 1 < n)
                leader[i + 1] = true;
        }
    }

    // Pass 3: blocks and edges.
    instrToBlock_.assign(n, 0);
    for (uint32_t i = 0; i < n; ++i) {
        if (leader[i])
            blocks_.push_back(BasicBlock{i, i, {}, {}});
        blocks_.back().last = i;
        instrToBlock_[i] = static_cast<uint32_t>(blocks_.size()) - 1;
    }
    // Synthetic exit block (empty instruction range: first > last).
    blocks_.push_back(BasicBlock{1, 0, {}, {}});
    const uint32_t exit_block = static_cast<uint32_t>(blocks_.size()) - 1;

    for (uint32_t b = 0; b + 1 < blocks_.size(); ++b) {
        for (uint32_t t : succs[blocks_[b].last]) {
            uint32_t target =
                t >= n ? exit_block : instrToBlock_[t];
            blocks_[b].succs.push_back(target);
        }
        std::sort(blocks_[b].succs.begin(), blocks_[b].succs.end());
        blocks_[b].succs.erase(std::unique(blocks_[b].succs.begin(),
                                           blocks_[b].succs.end()),
                               blocks_[b].succs.end());
        for (uint32_t t : blocks_[b].succs)
            blocks_[t].preds.push_back(b);
    }
}

size_t
Cfg::numEdges() const
{
    size_t edges = 0;
    for (const BasicBlock &b : blocks_)
        edges += b.succs.size();
    return edges;
}

std::vector<uint32_t>
Cfg::reversePostOrder() const
{
    std::vector<uint32_t> order;
    std::vector<bool> visited(blocks_.size(), false);
    // Iterative post-order DFS from the entry.
    std::vector<std::pair<uint32_t, size_t>> stack{{entry(), 0}};
    visited[entry()] = true;
    while (!stack.empty()) {
        auto &[b, next] = stack.back();
        if (next < blocks_[b].succs.size()) {
            uint32_t s = blocks_[b].succs[next++];
            if (!visited[s]) {
                visited[s] = true;
                stack.push_back({s, 0});
            }
        } else {
            order.push_back(b);
            stack.pop_back();
        }
    }
    std::reverse(order.begin(), order.end());
    for (uint32_t b = 0; b < blocks_.size(); ++b) {
        if (!visited[b])
            order.push_back(b);
    }
    return order;
}

std::string
Cfg::toDot(const wasm::Module &m) const
{
    const wasm::Function &func = m.functions.at(funcIdx_);
    std::string out = "digraph cfg_f" + std::to_string(funcIdx_) +
                      " {\n  node [shape=box];\n";
    for (uint32_t b = 0; b < blocks_.size(); ++b) {
        out += "  B" + std::to_string(b) + " [label=\"B" +
               std::to_string(b);
        if (b == exit()) {
            out += " (exit)";
        } else {
            out += " [" + std::to_string(blocks_[b].first) + ".." +
                   std::to_string(blocks_[b].last) + "] " +
                   escapeDotLabel(
                       wasm::name(func.body[blocks_[b].first].op));
        }
        out += "\"];\n";
        for (uint32_t s : blocks_[b].succs)
            out += "  B" + std::to_string(b) + " -> B" +
                   std::to_string(s) + ";\n";
    }
    out += "}\n";
    return out;
}

} // namespace wasabi::static_analysis
