#include "static/analyze.h"

#include <algorithm>
#include <cstdio>

#include "static/call_graph.h"
#include "static/cfg.h"
#include "static/dataflow.h"
#include "static/interproc/refined_call_graph.h"
#include "static/interproc/summaries.h"
#include "static/passes/range.h"

namespace wasabi::static_analysis {

using wasm::Module;

ModuleReport
analyzeModule(const Module &m)
{
    ModuleReport r;
    r.numFunctions = m.numFunctions();
    r.numImportedFunctions = m.numImportedFunctions();
    r.numInstructions = static_cast<uint32_t>(m.numInstructions());

    StaticCallGraph cg(m);
    r.numCallEdges = cg.numEdges();
    r.deadFunctions = cg.deadFunctions();

    for (uint32_t f = 0; f < m.numFunctions(); ++f) {
        if (m.functions[f].imported())
            continue;
        Cfg cfg(m, f);
        FunctionStats s;
        s.funcIdx = f;
        s.numInstrs = static_cast<uint32_t>(m.functions[f].body.size());
        s.numBlocks = cfg.numBlocks();
        s.numEdges = cfg.numEdges();
        s.numBackEdges = static_cast<uint32_t>(backEdges(cfg).size());
        std::vector<bool> reach = reachableBlocks(cfg);
        s.numUnreachable = static_cast<uint32_t>(
            std::count(reach.begin(), reach.end(), false));
        s.dead = !cg.reachable(f);
        r.functions.push_back(s);
    }
    return r;
}

std::string
toString(const ModuleReport &r)
{
    std::string out;
    out += "module: " + std::to_string(r.numFunctions) + " functions (" +
           std::to_string(r.numImportedFunctions) + " imported), " +
           std::to_string(r.numInstructions) + " instructions, " +
           std::to_string(r.numCallEdges) + " call edges\n";
    out += "func  instrs  blocks  edges  loops  unreachable\n";
    for (const FunctionStats &s : r.functions) {
        char line[128];
        std::snprintf(line, sizeof line, "%4u  %6u  %6u  %5u  %5u  %11u%s\n",
                      s.funcIdx, s.numInstrs, s.numBlocks, s.numEdges,
                      s.numBackEdges, s.numUnreachable,
                      s.dead ? "  [dead]" : "");
        out += line;
    }
    if (!r.deadFunctions.empty()) {
        out += "dead functions:";
        for (uint32_t f : r.deadFunctions)
            out += " " + std::to_string(f);
        out += "\n";
    }
    return out;
}

std::string
toJson(const ModuleReport &r)
{
    std::string out = "{";
    out += "\"functions\":" + std::to_string(r.numFunctions);
    out += ",\"imported\":" + std::to_string(r.numImportedFunctions);
    out += ",\"instructions\":" + std::to_string(r.numInstructions);
    out += ",\"callEdges\":" + std::to_string(r.numCallEdges);
    out += ",\"deadFunctions\":[";
    for (size_t i = 0; i < r.deadFunctions.size(); ++i) {
        if (i)
            out += ",";
        out += std::to_string(r.deadFunctions[i]);
    }
    out += "],\"perFunction\":[";
    for (size_t i = 0; i < r.functions.size(); ++i) {
        const FunctionStats &s = r.functions[i];
        if (i)
            out += ",";
        out += "{\"func\":" + std::to_string(s.funcIdx);
        out += ",\"instrs\":" + std::to_string(s.numInstrs);
        out += ",\"blocks\":" + std::to_string(s.numBlocks);
        out += ",\"edges\":" + std::to_string(s.numEdges);
        out += ",\"backEdges\":" + std::to_string(s.numBackEdges);
        out += ",\"unreachableBlocks\":" +
               std::to_string(s.numUnreachable);
        out += std::string(",\"dead\":") + (s.dead ? "true" : "false");
        out += "}";
    }
    out += "]}";
    return out;
}

std::string
cfgDot(const Module &m, uint32_t func_idx)
{
    return Cfg(m, func_idx).toDot(m);
}

std::string
callGraphDot(const Module &m)
{
    return StaticCallGraph(m).toDot(m);
}

std::string
refinedCallGraphDot(const Module &m)
{
    return interproc::RefinedCallGraph(m).toDot(m);
}

std::string
summariesJson(const Module &m, unsigned num_threads)
{
    interproc::RefinedCallGraph cg(m);
    return interproc::summariesToJson(
        m, cg, interproc::functionSummaries(m, cg, num_threads));
}

std::string
rangesJson(const Module &m, unsigned num_threads)
{
    return passes::rangesToJson(m,
                                passes::moduleRanges(m, num_threads));
}

std::string
rangesDot(const Module &m, uint32_t func_idx)
{
    return passes::rangesDot(m, passes::moduleRanges(m, 1), func_idx);
}

} // namespace wasabi::static_analysis
