/**
 * @file
 * Structured diagnostics emitted by the static-analysis subsystem:
 * severity, stable machine-readable code, free-form message, and an
 * optional (function, instruction) location in the *original* module's
 * index space. Diagnostics render either as one-line human-readable
 * strings (`file:func:instr`-style) or as a JSON array for tooling.
 */

#ifndef WASABI_STATIC_DIAGNOSTICS_H
#define WASABI_STATIC_DIAGNOSTICS_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace wasabi::static_analysis {

enum class Severity : uint8_t {
    Note = 0,
    Warning,
    Error,
};

/** Name, e.g. "error" or "warning". */
const char *name(Severity s);

/**
 * One finding. `code` is a stable dotted identifier (e.g.
 * "check.selective.missing-hook") that tests and tools match on;
 * `message` is for humans. Locations refer to the original module.
 */
struct Diagnostic {
    Severity severity = Severity::Error;
    std::string code;
    std::string message;
    std::optional<uint32_t> func;
    std::optional<uint32_t> instr;

    bool operator==(const Diagnostic &other) const = default;
};

/** Accumulates diagnostics; shared by all static checks. */
class Diagnostics {
  public:
    void
    add(Severity sev, std::string code, std::string message,
        std::optional<uint32_t> func = std::nullopt,
        std::optional<uint32_t> instr = std::nullopt)
    {
        all_.push_back(Diagnostic{sev, std::move(code), std::move(message),
                                  func, instr});
    }

    void
    error(std::string code, std::string message,
          std::optional<uint32_t> func = std::nullopt,
          std::optional<uint32_t> instr = std::nullopt)
    {
        add(Severity::Error, std::move(code), std::move(message), func,
            instr);
    }

    void
    warning(std::string code, std::string message,
            std::optional<uint32_t> func = std::nullopt,
            std::optional<uint32_t> instr = std::nullopt)
    {
        add(Severity::Warning, std::move(code), std::move(message), func,
            instr);
    }

    const std::vector<Diagnostic> &all() const { return all_; }
    bool empty() const { return all_.empty(); }
    size_t size() const { return all_.size(); }

    /** Number of diagnostics with severity >= Error. */
    size_t errorCount() const;

    /** True if any diagnostic matches the given code. */
    bool hasCode(const std::string &code) const;

    /** Append another list's diagnostics. */
    void merge(const Diagnostics &other);

  private:
    std::vector<Diagnostic> all_;
};

/** One line, e.g. "error check.i64.unsplit (func 3, instr 17): ...". */
std::string toString(const Diagnostic &d);

/** All diagnostics, one per line. */
std::string toString(const Diagnostics &ds);

/** Machine-readable JSON array of diagnostic objects. */
std::string toJson(const Diagnostics &ds);

} // namespace wasabi::static_analysis

#endif // WASABI_STATIC_DIAGNOSTICS_H
