/**
 * @file
 * The static call graph of a module: direct `call` edges plus
 * conservative `call_indirect` edges to every table-exposed function
 * of a matching type. Roots are the module's exports, the start
 * function, and (for analyses that care) nothing else — functions
 * unreachable from the roots are statically dead.
 *
 * This is the static counterpart of the dynamic analyses'
 * `analyses::CallGraph`, which records edges actually taken at
 * runtime; comparing the two is the classic precision experiment.
 */

#ifndef WASABI_STATIC_CALL_GRAPH_H
#define WASABI_STATIC_CALL_GRAPH_H

#include <cstdint>
#include <string>
#include <vector>

#include "wasm/module.h"

namespace wasabi::static_analysis {

class StaticCallGraph {
  public:
    explicit StaticCallGraph(const wasm::Module &m);

    /** Callees of function @p func_idx (sorted, deduplicated). */
    const std::vector<uint32_t> &callees(uint32_t func_idx) const
    {
        return callees_.at(func_idx);
    }

    /** Callers of function @p func_idx (sorted, deduplicated). */
    const std::vector<uint32_t> &callers(uint32_t func_idx) const
    {
        return callers_.at(func_idx);
    }

    /** Root set: exported functions, the start function, and functions
     * referenced by element segments of an exported table. */
    const std::vector<uint32_t> &roots() const { return roots_; }

    /** True if @p func_idx is reachable from the root set. */
    bool reachable(uint32_t func_idx) const
    {
        return reachable_.at(func_idx);
    }

    /** Functions not reachable from any root (statically dead). */
    std::vector<uint32_t> deadFunctions() const;

    size_t numEdges() const;

    /** Graphviz rendering (dead functions drawn dashed). */
    std::string toDot(const wasm::Module &m) const;

  private:
    std::vector<std::vector<uint32_t>> callees_;
    std::vector<std::vector<uint32_t>> callers_;
    std::vector<uint32_t> roots_;
    std::vector<bool> reachable_;
};

} // namespace wasabi::static_analysis

#endif // WASABI_STATIC_CALL_GRAPH_H
