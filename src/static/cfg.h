/**
 * @file
 * Per-function control-flow graphs over the flat structured
 * instruction stream. Branch edges are resolved with the same
 * abstract-control-stack label resolution the instrumenter uses
 * (paper §2.4.4): a `br n` targets the first instruction inside a
 * loop, or the instruction after the matching `end` otherwise.
 *
 * Basic blocks are maximal ranges [first, last] of instruction
 * indices. Structural no-ops (`block`, `end`, ...) stay inside blocks
 * wherever control flow permits; only real branch points split them.
 * A synthetic exit node collects `return`, the function's final `end`,
 * and (as a no-successor sink) `unreachable`.
 */

#ifndef WASABI_STATIC_CFG_H
#define WASABI_STATIC_CFG_H

#include <cstdint>
#include <string>
#include <vector>

#include "wasm/module.h"

namespace wasabi::static_analysis {

/** Index of the synthetic exit node in Cfg::blocks(). */
inline constexpr uint32_t kCfgEntryBlock = 0;

struct BasicBlock {
    /** First and last instruction index, both inclusive. The synthetic
     * exit block has first > last (an empty range). */
    uint32_t first = 0;
    uint32_t last = 0;
    std::vector<uint32_t> succs;
    std::vector<uint32_t> preds;

    bool empty() const { return first > last; }
    size_t size() const { return empty() ? 0 : last - first + 1; }
};

/**
 * The control-flow graph of one defined function. Block 0 is the
 * entry block (it starts at instruction 0); the synthetic exit block
 * is last. The function must come from a validated module.
 */
class Cfg {
  public:
    /** Build the CFG of defined function @p func_idx. */
    Cfg(const wasm::Module &m, uint32_t func_idx);

    const std::vector<BasicBlock> &blocks() const { return blocks_; }
    uint32_t numBlocks() const
    {
        return static_cast<uint32_t>(blocks_.size());
    }

    uint32_t funcIdx() const { return funcIdx_; }
    uint32_t entry() const { return kCfgEntryBlock; }
    uint32_t exit() const { return numBlocks() - 1; }

    /** Total number of edges. */
    size_t numEdges() const;

    /** Block containing instruction @p instr_idx. */
    uint32_t blockOf(uint32_t instr_idx) const
    {
        return instrToBlock_.at(instr_idx);
    }

    /** Blocks in reverse post-order from the entry (unreachable blocks
     * appended at the end in index order). */
    std::vector<uint32_t> reversePostOrder() const;

    /** Graphviz rendering, for debugging and `wasabi analyze --dot`. */
    std::string toDot(const wasm::Module &m) const;

  private:
    uint32_t funcIdx_;
    std::vector<BasicBlock> blocks_;
    std::vector<uint32_t> instrToBlock_;
};

} // namespace wasabi::static_analysis

#endif // WASABI_STATIC_CFG_H
