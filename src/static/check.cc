#include "static/check.h"

#include <algorithm>
#include <functional>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "core/control_stack.h"
#include "core/instrument.h"
#include "static/call_graph.h"
#include "static/dataflow.h"
#include "static/interproc/refined_call_graph.h"
#include "static/passes/constprop.h"
#include "static/passes/range.h"
#include "wasm/validator.h"

namespace wasabi::static_analysis {

using core::AbstractState;
using core::BlockKind;
using core::ControlFrame;
using core::HookKind;
using core::HookSet;
using core::HookSpec;
using core::kFunctionEntry;
using core::Location;
using core::packLoc;
using wasm::FuncType;
using wasm::Function;
using wasm::Instr;
using wasm::Module;
using wasm::OpClass;
using wasm::Opcode;
using wasm::ValType;

namespace {

/** What the symbolic evaluator knows about one operand-stack slot of
 * the instrumented code. Only the patterns the instrumenter emits for
 * hook arguments are tracked; everything else is Unknown. */
struct AbsVal {
    enum Kind : uint8_t {
        Unknown,
        ConstI32,
        ConstI64,
        LocalVal,      ///< local.get / local.tee of `local`
        ShiftedLocal,  ///< (local.get l) >> 64:32, pre-wrap high half
        SplitLo,       ///< low i32 half of i64 local `local`
        SplitHi,       ///< high i32 half of i64 local `local`
    };
    Kind kind = Unknown;
    uint64_t value = 0;
    uint32_t local = 0;
};

/** One recovered hook call in an instrumented function body. */
struct Site {
    const HookSpec *spec = nullptr;
    uint32_t origFunc = 0;     ///< first location argument
    uint32_t origInstr = 0;    ///< second location argument
    uint32_t instrumentedIdx = 0;
    std::vector<AbsVal> args;  ///< dynamic args (location args stripped)
};

/** Kind and begin location of the region closing at an `end`/`else`
 * instruction, mirroring the instrumenter's frameBeginIdx logic. */
struct RegionEnd {
    BlockKind kind = BlockKind::Block;
    uint32_t begin = 0;
};

std::string
locString(uint32_t instr)
{
    return instr == kFunctionEntry ? "entry" : std::to_string(instr);
}

class Checker {
  public:
    Checker(const Module &orig, const Module &instr,
            const CheckOptions &opts, const core::StaticInfo *info)
        : orig_(orig), instr_(instr), opts_(opts), info_(info)
    {
        if (info_ && info_->optimization)
            plan_ = &*info_->optimization;
        else if (opts_.plan)
            plan_ = &*opts_.plan;
    }

    Diagnostics
    run()
    {
        if (auto err = wasm::validationError(orig_)) {
            diags_.error("check.input.invalid-original",
                         "original module does not validate: " + *err);
            return std::move(diags_);
        }
        if (!recoverHooks())
            return std::move(diags_);
        if (auto err = wasm::validationError(instr_)) {
            diags_.error("check.structure.invalid-instrumented",
                         "instrumented module does not validate: " +
                             *err);
        }
        checkStructure();
        if (plan_)
            verifyPlan();
        for (uint32_t g = 0; g < instr_.numFunctions(); ++g) {
            if (!instr_.functions[g].imported())
                scanFunction(g);
        }
        for (uint32_t f = 0; f < orig_.numFunctions(); ++f) {
            if (!orig_.functions[f].imported())
                checkCoverage(f);
        }
        if (info_) {
            checkMetadata(*info_);
        } else if (opts_.checkSideTables) {
            // The two-binary path has no side-table metadata in the
            // artifact; regenerate it and check the instrumenter's
            // output (also cross-checking the hook-import set). With
            // a manifest the reference run applies the same plan, so
            // the hook-import sets stay comparable.
            core::InstrumentOptions iopts;
            iopts.splitI64 = split_;
            iopts.importModule = opts_.importModule;
            iopts.plan = plan_;
            core::InstrumentResult ref =
                core::instrument(orig_, hooks_, iopts);
            compareHookSets(ref.info->hooks);
            checkMetadata(*ref.info);
        }
        return std::move(diags_);
    }

  private:
    // ----- hook-import recovery --------------------------------------

    uint32_t numHooks() const
    {
        return static_cast<uint32_t>(specs_.size());
    }

    /** Original function index -> instrumented function index. */
    uint32_t
    mapFunc(uint32_t f) const
    {
        return f < base_ ? f : f + numHooks();
    }

    bool
    recoverHooks()
    {
        base_ = orig_.numImportedFunctions();
        const uint32_t instr_imports = instr_.numImportedFunctions();
        if (instr_imports < base_) {
            diags_.error("check.structure.import-mismatch",
                         "instrumented module dropped original "
                         "function imports (" +
                             std::to_string(instr_imports) + " < " +
                             std::to_string(base_) + ")");
            return false;
        }
        for (uint32_t i = 0; i < base_; ++i) {
            const Function &of = orig_.functions[i];
            const Function &nf = instr_.functions[i];
            if (*of.import != *nf.import ||
                orig_.funcType(i) != instr_.funcType(i)) {
                diags_.error("check.structure.import-mismatch",
                             "original import " + std::to_string(i) +
                                 " (" + of.import->module + "." +
                                 of.import->name +
                                 ") not preserved in place");
                return false;
            }
        }

        std::unordered_set<std::string> seen;
        for (uint32_t i = base_; i < instr_imports; ++i) {
            const Function &hf = instr_.functions[i];
            if (hf.import->module != opts_.importModule) {
                diags_.error("check.hooks.layout",
                             "import " + std::to_string(i) + " (" +
                                 hf.import->module + "." +
                                 hf.import->name +
                                 ") interleaved with hook imports of "
                                 "module '" +
                                 opts_.importModule + "'");
                return false;
            }
            std::optional<HookSpec> spec =
                core::parseHookName(hf.import->name);
            parsed_.push_back(spec.has_value());
            if (!spec) {
                diags_.error("check.hooks.unknown-import",
                             "hook import '" + hf.import->name +
                                 "' is not a well-formed low-level "
                                 "hook name");
                // Keep a placeholder so indices line up.
                spec = HookSpec{};
            }
            if (!seen.insert(hf.import->name).second) {
                diags_.error("check.hooks.duplicate",
                             "hook '" + hf.import->name +
                                 "' imported more than once (hooks "
                                 "must be deduplicated)");
            }
            specs_.push_back(*spec);
        }

        if (info_) {
            // With metadata the identities are known; verify the
            // binary agrees with them, then prefer the metadata.
            if (info_->hooks.size() != specs_.size()) {
                diags_.error(
                    "check.hooks.set-mismatch",
                    "StaticInfo lists " +
                        std::to_string(info_->hooks.size()) +
                        " hooks but the binary imports " +
                        std::to_string(specs_.size()));
            } else {
                for (uint32_t h = 0; h < numHooks(); ++h) {
                    if (mangledName(info_->hooks[h]) !=
                        instr_.functions[base_ + h].import->name) {
                        diags_.error(
                            "check.hooks.set-mismatch",
                            "hook id " + std::to_string(h) +
                                " is '" +
                                instr_.functions[base_ + h]
                                    .import->name +
                                "' in the binary but '" +
                                mangledName(info_->hooks[h]) +
                                "' in the StaticInfo");
                    }
                }
                specs_ = info_->hooks;
                parsed_.assign(specs_.size(), true);
            }
            split_ = info_->splitI64;
            hooks_ = info_->instrumentedHooks;
        } else {
            split_ = opts_.splitI64.value_or(detectSplit());
            if (opts_.hooks) {
                hooks_ = *opts_.hooks;
            } else {
                for (const HookSpec &s : specs_)
                    hooks_.add(s.kind);
            }
        }

        for (uint32_t h = 0; h < numHooks(); ++h) {
            if (!parsed_[h])
                continue; // unknown-import already reported
            const HookSpec &spec = specs_[h];
            const FuncType &actual = instr_.funcType(base_ + h);
            FuncType expected = lowLevelType(spec, split_);
            if (actual != expected) {
                diags_.error(
                    "check.hooks.bad-type",
                    "hook '" +
                        instr_.functions[base_ + h].import->name +
                        "' has type " + toString(actual) +
                        ", expected " + toString(expected));
            }
            if (!kindAllowed(spec.kind)) {
                diags_.error(
                    "check.selective.disabled-kind-import",
                    "hook '" +
                        instr_.functions[base_ + h].import->name +
                        "' belongs to disabled hook kind '" +
                        name(spec.kind) + "'");
            }
        }
        return true;
    }

    /** Auto-detect the i64-split ABI from the first hook import whose
     * type differs between the two ABIs. */
    bool
    detectSplit() const
    {
        for (uint32_t h = 0; h < numHooks(); ++h) {
            FuncType with = lowLevelType(specs_[h], true);
            FuncType without = lowLevelType(specs_[h], false);
            if (with == without)
                continue;
            const FuncType &actual = instr_.funcType(base_ + h);
            if (actual == with)
                return true;
            if (actual == without)
                return false;
        }
        return true; // the paper's default ABI
    }

    /** A hook kind whose sites/imports are permitted under the
     * effective hook set. br_table instrumentation is also emitted
     * when only `end` is enabled (its side table drives the dynamic
     * end hooks, §2.4.5), and a plan that narrows constant-index
     * br_tables turns their sites into plain br hooks. */
    bool
    kindAllowed(HookKind k) const
    {
        if (hooks_.has(k))
            return true;
        if (k == HookKind::BrTable && hooks_.has(HookKind::End))
            return true;
        return k == HookKind::Br && plan_ &&
               !plan_->constBrTableIndex.empty() &&
               hooks_.has(HookKind::BrTable);
    }

    void
    compareHookSets(const std::vector<HookSpec> &reference)
    {
        std::unordered_set<std::string> actual, expected;
        for (const HookSpec &s : specs_)
            actual.insert(mangledName(s));
        for (const HookSpec &s : reference)
            expected.insert(mangledName(s));
        for (const std::string &n : expected) {
            if (!actual.count(n)) {
                diags_.error("check.hooks.set-mismatch",
                             "instrumenting the original produces "
                             "hook '" +
                                 n + "' which the artifact lacks");
            }
        }
        for (const std::string &n : actual) {
            if (!expected.count(n)) {
                diags_.error("check.hooks.set-mismatch",
                             "artifact imports hook '" + n +
                                 "' which instrumenting the original "
                                 "does not produce");
            }
        }
    }

    // ----- structural preservation -----------------------------------

    void
    checkStructure()
    {
        if (instr_.numFunctions() !=
            orig_.numFunctions() + numHooks()) {
            diags_.error("check.structure.function-count",
                         "instrumented module has " +
                             std::to_string(instr_.numFunctions()) +
                             " functions, expected " +
                             std::to_string(orig_.numFunctions() +
                                            numHooks()));
            return;
        }
        for (uint32_t f = 0; f < orig_.numFunctions(); ++f) {
            uint32_t g = mapFunc(f);
            if (orig_.funcType(f) != instr_.funcType(g)) {
                diags_.error("check.structure.func-type",
                             "function signature changed: " +
                                 toString(orig_.funcType(f)) +
                                 " -> " + toString(instr_.funcType(g)),
                             f);
            }
            if (orig_.functions[f].exportNames !=
                instr_.functions[g].exportNames) {
                diags_.error("check.structure.exports",
                             "function export names changed", f);
            }
            const std::vector<ValType> &ol = orig_.functions[f].locals;
            const std::vector<ValType> &nl = instr_.functions[g].locals;
            if (nl.size() < ol.size() ||
                !std::equal(ol.begin(), ol.end(), nl.begin())) {
                diags_.error("check.structure.locals",
                             "original locals not preserved as a "
                             "prefix of the instrumented locals",
                             f);
            }
        }
        if (orig_.globals.size() != instr_.globals.size())
            diags_.error("check.structure.globals",
                         "global count changed");
        if (orig_.memories.size() != instr_.memories.size())
            diags_.error("check.structure.memories",
                         "memory count changed");
        if (orig_.tables.size() != instr_.tables.size())
            diags_.error("check.structure.tables",
                         "table count changed");
        if (orig_.data.size() != instr_.data.size())
            diags_.error("check.structure.data",
                         "data segment count changed");
        if (orig_.elements.size() == instr_.elements.size()) {
            for (size_t s = 0; s < orig_.elements.size(); ++s) {
                const auto &oseg = orig_.elements[s];
                const auto &nseg = instr_.elements[s];
                bool ok =
                    oseg.funcIdxs.size() == nseg.funcIdxs.size();
                for (size_t k = 0; ok && k < oseg.funcIdxs.size(); ++k)
                    ok = nseg.funcIdxs[k] == mapFunc(oseg.funcIdxs[k]);
                if (!ok) {
                    diags_.error(
                        "check.structure.elements",
                        "element segment " + std::to_string(s) +
                            " not remapped to the shifted function "
                            "index space");
                }
            }
        } else {
            diags_.error("check.structure.elements",
                         "element segment count changed");
        }
        bool start_ok =
            orig_.start.has_value() == instr_.start.has_value() &&
            (!orig_.start || *instr_.start == mapFunc(*orig_.start));
        if (!start_ok)
            diags_.error("check.structure.start",
                         "start function not preserved/remapped");
        if (instr_.types.size() < orig_.types.size() ||
            !std::equal(orig_.types.begin(), orig_.types.end(),
                        instr_.types.begin())) {
            diags_.error("check.structure.types",
                         "original type section not preserved as a "
                         "prefix of the instrumented types");
        }
    }

    // ----- region-end shapes of original functions -------------------

    /** end/else instruction index -> closed region, per function. */
    const std::unordered_map<uint32_t, RegionEnd> &
    regionEnds(uint32_t f)
    {
        auto it = regionEnds_.find(f);
        if (it != regionEnds_.end())
            return it->second;
        const std::vector<Instr> &body = orig_.functions[f].body;
        std::vector<core::BlockMatch> matches = core::matchBlocks(body);
        std::unordered_map<uint32_t, RegionEnd> ends;
        for (uint32_t i = 0; i < body.size(); ++i) {
            if (!wasm::isBlockStart(body[i].op))
                continue;
            OpClass cls = wasm::opInfo(body[i].op).cls;
            if (matches[i].elseIdx) {
                // Then-region ends at the else; else-region at the end.
                ends[*matches[i].elseIdx] = {BlockKind::If, i};
                ends[matches[i].endIdx] = {BlockKind::Else,
                                           *matches[i].elseIdx};
            } else {
                BlockKind kind = cls == OpClass::Block ? BlockKind::Block
                                 : cls == OpClass::Loop
                                     ? BlockKind::Loop
                                     : BlockKind::If;
                ends[matches[i].endIdx] = {kind, i};
            }
        }
        ends[static_cast<uint32_t>(body.size()) - 1] = {
            BlockKind::Function, kFunctionEntry};
        return regionEnds_.emplace(f, std::move(ends)).first->second;
    }

    // ----- symbolic scan of instrumented bodies ----------------------

    void
    scanFunction(uint32_t g)
    {
        if (g < base_ + numHooks())
            return; // layout error already reported
        const uint32_t f = g - numHooks();
        if (f >= orig_.numFunctions() ||
            orig_.functions[f].imported())
            return; // function-count mismatch already reported
        const std::vector<Instr> &body = instr_.functions[g].body;
        std::vector<AbsVal> stack;

        auto pop = [&stack]() -> AbsVal {
            if (stack.empty())
                return AbsVal{};
            AbsVal v = stack.back();
            stack.pop_back();
            return v;
        };
        auto popN = [&pop](size_t n) {
            for (size_t k = 0; k < n; ++k)
                pop();
        };
        auto pushUnknown = [&stack](size_t n) {
            stack.insert(stack.end(), n, AbsVal{});
        };

        for (uint32_t i = 0; i < body.size(); ++i) {
            const Instr &in = body[i];
            const wasm::OpInfo &info = wasm::opInfo(in.op);
            switch (info.cls) {
              case OpClass::Const:
                if (in.op == Opcode::I32Const) {
                    stack.push_back(
                        {AbsVal::ConstI32, in.imm.i32v, 0});
                } else if (in.op == Opcode::I64Const) {
                    stack.push_back(
                        {AbsVal::ConstI64, in.imm.i64v, 0});
                } else {
                    pushUnknown(1);
                }
                break;
              case OpClass::LocalGet:
                stack.push_back({AbsVal::LocalVal, 0, in.imm.idx});
                break;
              case OpClass::LocalTee:
                pop();
                stack.push_back({AbsVal::LocalVal, 0, in.imm.idx});
                break;
              case OpClass::LocalSet:
                pop();
                break;
              case OpClass::GlobalGet:
                pushUnknown(1);
                break;
              case OpClass::GlobalSet:
                pop();
                break;
              case OpClass::Unary:
                if (in.op == Opcode::I32WrapI64) {
                    AbsVal v = pop();
                    if (v.kind == AbsVal::LocalVal)
                        stack.push_back(
                            {AbsVal::SplitLo, 0, v.local});
                    else if (v.kind == AbsVal::ShiftedLocal)
                        stack.push_back(
                            {AbsVal::SplitHi, 0, v.local});
                    else
                        pushUnknown(1);
                } else {
                    pop();
                    pushUnknown(1);
                }
                break;
              case OpClass::Binary:
                if (in.op == Opcode::I64ShrU) {
                    AbsVal amount = pop();
                    AbsVal v = pop();
                    if (v.kind == AbsVal::LocalVal &&
                        amount.kind == AbsVal::ConstI64 &&
                        amount.value == 32) {
                        stack.push_back(
                            {AbsVal::ShiftedLocal, 0, v.local});
                    } else {
                        pushUnknown(1);
                    }
                } else {
                    popN(2);
                    pushUnknown(1);
                }
                break;
              case OpClass::Call: {
                uint32_t callee = in.imm.idx;
                if (callee >= base_ && callee < base_ + numHooks()) {
                    recordSite(f, callee - base_, i, stack);
                } else if (callee < instr_.numFunctions()) {
                    const FuncType &t = instr_.funcType(callee);
                    popN(t.params.size());
                    pushUnknown(t.results.size());
                } else {
                    stack.clear();
                }
                break;
              }
              case OpClass::CallIndirect: {
                pop(); // table index
                if (in.imm.idx < instr_.types.size()) {
                    const FuncType &t = instr_.types[in.imm.idx];
                    popN(t.params.size());
                    pushUnknown(t.results.size());
                } else {
                    stack.clear();
                }
                break;
              }
              case OpClass::Drop:
                pop();
                break;
              case OpClass::Select:
                popN(3);
                pushUnknown(1);
                break;
              case OpClass::Load:
                pop();
                pushUnknown(1);
                break;
              case OpClass::Store:
                popN(2);
                break;
              case OpClass::MemorySize:
                pushUnknown(1);
                break;
              case OpClass::MemoryGrow:
                pop();
                pushUnknown(1);
                break;
              case OpClass::Nop:
                break;
              default:
                // Control flow: hook arguments never straddle a
                // block boundary, so forgetting everything is sound.
                stack.clear();
                break;
            }
        }
    }

    /** Record (and immediately sanity-check) one hook call site. */
    void
    recordSite(uint32_t f, uint32_t hook_id, uint32_t instrumented_idx,
               std::vector<AbsVal> &stack)
    {
        const HookSpec &spec = specs_[hook_id];
        size_t arity = lowLevelType(spec, split_).params.size();
        std::vector<AbsVal> args(arity);
        for (size_t k = 0; k < arity; ++k) {
            size_t pos = arity - 1 - k;
            if (!stack.empty()) {
                args[pos] = stack.back();
                stack.pop_back();
            }
        }
        // Hooks return nothing; the stack is simply shorter now.

        if (args.size() < 2 || args[0].kind != AbsVal::ConstI32 ||
            args[1].kind != AbsVal::ConstI32) {
            diags_.error("check.loc.nonconstant",
                         "hook call '" + mangledName(spec) +
                             "' lacks constant (function, "
                             "instruction) location arguments",
                         f);
            return;
        }
        Site site;
        site.spec = &specs_[hook_id];
        site.origFunc = static_cast<uint32_t>(args[0].value);
        site.origInstr = static_cast<uint32_t>(args[1].value);
        site.instrumentedIdx = instrumented_idx;
        site.args.assign(args.begin() + 2, args.end());

        if (site.origFunc != f) {
            diags_.error("check.loc.wrong-function",
                         "hook call '" + mangledName(spec) +
                             "' reports function " +
                             std::to_string(site.origFunc) +
                             " but lives in function " +
                             std::to_string(f),
                         f, site.origInstr);
            return;
        }
        const std::vector<Instr> &obody = orig_.functions[f].body;
        if (site.origInstr != kFunctionEntry &&
            site.origInstr >= obody.size()) {
            diags_.error("check.loc.out-of-range",
                         "hook call '" + mangledName(spec) +
                             "' reports instruction " +
                             std::to_string(site.origInstr) +
                             " beyond the original body (" +
                             std::to_string(obody.size()) +
                             " instructions)",
                         f, site.origInstr);
            return;
        }
        if (!kindAllowed(spec.kind)) {
            diags_.error("check.selective.disabled-kind-site",
                         "instruction instrumented with hook '" +
                             mangledName(spec) +
                             "' of disabled kind '" +
                             name(spec.kind) + "'",
                         f, site.origInstr);
        }
        checkSiteKind(f, site);
        checkSiteArgs(f, site);
        sites_[packLoc({f, site.origInstr})].push_back(std::move(site));
    }

    /** The hook's kind must match the original instruction it claims
     * to observe. */
    void
    checkSiteKind(uint32_t f, const Site &site)
    {
        const HookSpec &spec = *site.spec;
        const std::vector<Instr> &body = orig_.functions[f].body;

        auto mismatch = [&](const std::string &why) {
            diags_.error("check.selective.kind-mismatch",
                         "hook '" + mangledName(spec) + "' at (" +
                             std::to_string(f) + ", " +
                             locString(site.origInstr) + "): " + why,
                         f, site.origInstr);
        };

        if (site.origInstr == kFunctionEntry) {
            bool entry_ok =
                (spec.kind == HookKind::Begin &&
                 spec.block == BlockKind::Function) ||
                (spec.kind == HookKind::Start && orig_.start &&
                 *orig_.start == f);
            if (!entry_ok)
                mismatch("only begin_function/start hooks may target "
                         "the function entry");
            return;
        }

        const Instr &in = body[site.origInstr];
        OpClass cls = wasm::opInfo(in.op).cls;
        switch (spec.kind) {
          case HookKind::Nop:
          case HookKind::Unreachable:
          case HookKind::MemorySize:
          case HookKind::MemoryGrow:
          case HookKind::Drop:
          case HookKind::Select:
          case HookKind::If:
          case HookKind::Br:
          case HookKind::BrIf:
          case HookKind::BrTable:
          case HookKind::Return:
            if (core::hookKindForClass(cls) != spec.kind &&
                !(spec.kind == HookKind::If && cls == OpClass::If) &&
                !(spec.kind == HookKind::Br &&
                  cls == OpClass::BrTable &&
                  planConstIndex(f, site.origInstr)))
                mismatch("original instruction '" +
                         std::string(wasm::name(in.op)) +
                         "' is of a different kind");
            break;
          case HookKind::Load:
          case HookKind::Store:
          case HookKind::Const:
          case HookKind::Unary:
          case HookKind::Binary:
          case HookKind::Local:
          case HookKind::Global:
            if (core::hookKindForClass(cls) != spec.kind ||
                spec.op != in.op)
                mismatch("original instruction '" +
                         std::string(wasm::name(in.op)) +
                         "' does not match the hook's opcode");
            break;
          case HookKind::Call:
            if (cls != OpClass::Call && cls != OpClass::CallIndirect) {
                mismatch("original instruction '" +
                         std::string(wasm::name(in.op)) +
                         "' is not a call");
            } else if (!spec.post &&
                       spec.indirect != (cls == OpClass::CallIndirect) &&
                       !(cls == OpClass::CallIndirect &&
                         !spec.indirect &&
                         planCallTarget(f, site.origInstr))) {
                // Exception: a verified plan claim narrows the
                // indirect call_pre to the direct variant.
                mismatch("call_pre direct/indirect flavor does not "
                         "match the instruction");
            }
            break;
          case HookKind::Begin: {
            OpClass want = cls;
            bool ok = (spec.block == BlockKind::Block &&
                       want == OpClass::Block) ||
                      (spec.block == BlockKind::Loop &&
                       want == OpClass::Loop) ||
                      (spec.block == BlockKind::If &&
                       want == OpClass::If) ||
                      (spec.block == BlockKind::Else &&
                       want == OpClass::Else);
            if (!ok)
                mismatch("begin hook block kind '" +
                         std::string(name(spec.block)) +
                         "' does not open at '" +
                         std::string(wasm::name(in.op)) + "'");
            break;
          }
          case HookKind::End: {
            const auto &ends = regionEnds(f);
            auto it = ends.find(site.origInstr);
            if (it == ends.end()) {
                mismatch("end hook targets an instruction that closes "
                         "no region");
            } else if (it->second.kind != spec.block) {
                mismatch("end hook block kind '" +
                         std::string(name(spec.block)) +
                         "' but the region closing here is a '" +
                         std::string(name(it->second.kind)) + "'");
            }
            break;
          }
          case HookKind::Start:
            mismatch("start hook not at the start function's entry");
            break;
        }
    }

    /** Argument shape at the site: end hooks name the right begin,
     * i64 operands are split into same-source (low, high) pairs. */
    void
    checkSiteArgs(uint32_t f, const Site &site)
    {
        const HookSpec &spec = *site.spec;

        if (spec.kind == HookKind::End &&
            site.origInstr != kFunctionEntry) {
            const auto &ends = regionEnds(f);
            auto it = ends.find(site.origInstr);
            if (it != ends.end() && !site.args.empty()) {
                const AbsVal &b = site.args[0];
                if (b.kind != AbsVal::ConstI32 ||
                    static_cast<uint32_t>(b.value) !=
                        it->second.begin) {
                    diags_.error(
                        "check.end.wrong-begin",
                        "end hook's begin argument does not name the "
                        "matching block begin (expected " +
                            locString(it->second.begin) + ")",
                        f, site.origInstr);
                }
            }
        }

        if (!split_)
            return;
        const std::vector<ValType> unsplit =
            lowLevelType(spec, false).params;
        size_t ai = 0;
        for (size_t p = 2; p < unsplit.size(); ++p) {
            if (unsplit[p] != ValType::I64) {
                ++ai;
                continue;
            }
            if (ai + 1 >= site.args.size())
                break; // arity mismatch already reported via types
            const AbsVal &lo = site.args[ai];
            const AbsVal &hi = site.args[ai + 1];
            bool split_pair = lo.kind == AbsVal::SplitLo &&
                              hi.kind == AbsVal::SplitHi &&
                              lo.local == hi.local;
            bool const_pair = lo.kind == AbsVal::ConstI32 &&
                              hi.kind == AbsVal::ConstI32;
            if (!split_pair && !const_pair) {
                diags_.error(
                    "check.i64.unsplit",
                    "i64 operand of hook '" + mangledName(spec) +
                        "' is not passed as a (low, high) i32 pair "
                        "derived from one value",
                    f, site.origInstr);
            } else if (const_pair && spec.kind == HookKind::Const &&
                       spec.op == Opcode::I64Const &&
                       site.origInstr != kFunctionEntry) {
                uint64_t v = orig_.functions[f]
                                 .body[site.origInstr]
                                 .imm.i64v;
                if (static_cast<uint32_t>(lo.value) !=
                        static_cast<uint32_t>(v) ||
                    static_cast<uint32_t>(hi.value) !=
                        static_cast<uint32_t>(v >> 32)) {
                    diags_.error(
                        "check.i64.const-halves",
                        "statically split i64.const halves do not "
                        "recombine to the original constant",
                        f, site.origInstr);
                }
            }
            ai += 2;
        }
    }

    // ----- coverage: enabled classes are fully instrumented ----------

    bool
    hasSite(uint32_t f, uint32_t instr,
            const std::function<bool(const Site &)> &pred) const
    {
        auto it = sites_.find(packLoc({f, instr}));
        if (it == sites_.end())
            return false;
        return std::any_of(it->second.begin(), it->second.end(), pred);
    }

    void
    requireSite(uint32_t f, uint32_t instr, const std::string &what,
                const std::function<bool(const Site &)> &pred)
    {
        if (!hasSite(f, instr, pred)) {
            diags_.error("check.selective.missing-hook",
                         "enabled hook '" + what +
                             "' missing at this instruction",
                         f, instr);
        }
    }

    void
    requireEndSitesForTraversal(uint32_t f,
                                const std::vector<ControlFrame> &frames)
    {
        for (const ControlFrame &fr : frames) {
            uint32_t end_idx =
                fr.kind == BlockKind::If && fr.elseIdx ? *fr.elseIdx
                                                       : fr.endIdx;
            BlockKind kind = fr.kind;
            requireSite(f, end_idx, "end_" + std::string(name(kind)),
                        [kind](const Site &s) {
                            return s.spec->kind == HookKind::End &&
                                   s.spec->block == kind;
                        });
        }
    }

    void
    checkCoverage(uint32_t f)
    {
        // A plan-declared dead function carries no hooks at all, not
        // even entry hooks; verifyPlan() has already re-proved the
        // claim against the call graph.
        if (planDeadFunc(f))
            return;

        const Function &func = orig_.functions[f];
        const std::vector<Instr> &body = func.body;
        AbstractState state(orig_, f);

        if (hooks_.has(HookKind::Begin)) {
            requireSite(f, kFunctionEntry, "begin_function",
                        [](const Site &s) {
                            return s.spec->kind == HookKind::Begin &&
                                   s.spec->block == BlockKind::Function;
                        });
        }
        if (hooks_.has(HookKind::Start) && orig_.start &&
            *orig_.start == f) {
            requireSite(f, kFunctionEntry, "start",
                        [](const Site &s) {
                            return s.spec->kind == HookKind::Start;
                        });
        }

        for (uint32_t i = 0; i < body.size(); ++i) {
            const Instr &in = body[i];
            OpClass cls = wasm::opInfo(in.op).cls;
            bool live = state.reachable();
            if (planSkips(f, i)) {
                // Hook omission licensed (and re-verified) by the
                // plan: the instruction is CFG-unreachable, which is
                // strictly stronger than per-block liveness.
                state.apply(in, i);
                continue;
            }
            if (live) {
                checkCoverageAt(f, i, in, cls, state);
            } else if (cls == OpClass::Else &&
                       !state.frames().back().deadEntry &&
                       hooks_.has(HookKind::Begin)) {
                // A dead then-region whose `if` was entered live still
                // guards a reachable else-region (instrumenter's
                // special case).
                requireSite(f, i, "begin_else", [](const Site &s) {
                    return s.spec->kind == HookKind::Begin &&
                           s.spec->block == BlockKind::Else;
                });
            }
            state.apply(in, i);
        }
    }

    void
    checkCoverageAt(uint32_t f, uint32_t i, const Instr &in, OpClass cls,
                    const AbstractState &state)
    {
        auto simple = [&](HookKind kind, const char *what) {
            if (hooks_.has(kind)) {
                requireSite(f, i, what, [kind](const Site &s) {
                    return s.spec->kind == kind;
                });
            }
        };
        auto perOp = [&](HookKind kind) {
            if (hooks_.has(kind)) {
                Opcode op = in.op;
                requireSite(f, i, wasm::name(in.op),
                            [kind, op](const Site &s) {
                                return s.spec->kind == kind &&
                                       s.spec->op == op;
                            });
            }
        };
        auto begin = [&](BlockKind block, const char *what) {
            if (hooks_.has(HookKind::Begin) &&
                !planElidesBegin(f, i)) {
                requireSite(f, i, what, [block](const Site &s) {
                    return s.spec->kind == HookKind::Begin &&
                           s.spec->block == block;
                });
            }
        };

        switch (cls) {
          case OpClass::Nop:
            simple(HookKind::Nop, "nop");
            break;
          case OpClass::Unreachable:
            simple(HookKind::Unreachable, "unreachable");
            break;
          case OpClass::MemorySize:
            simple(HookKind::MemorySize, "memory.size");
            break;
          case OpClass::MemoryGrow:
            simple(HookKind::MemoryGrow, "memory.grow");
            break;
          case OpClass::Block:
            begin(BlockKind::Block, "begin_block");
            break;
          case OpClass::Loop:
            begin(BlockKind::Loop, "begin_loop");
            break;
          case OpClass::If:
            simple(HookKind::If, "if_cond");
            begin(BlockKind::If, "begin_if");
            break;
          case OpClass::Else:
            if (hooks_.has(HookKind::End)) {
                requireSite(f, i, "end_if", [](const Site &s) {
                    return s.spec->kind == HookKind::End &&
                           s.spec->block == BlockKind::If;
                });
            }
            begin(BlockKind::Else, "begin_else");
            break;
          case OpClass::End:
            if (hooks_.has(HookKind::End) && !planElidesEnd(f, i)) {
                BlockKind kind = state.frames().back().kind;
                requireSite(f, i,
                            "end_" + std::string(name(kind)),
                            [kind](const Site &s) {
                                return s.spec->kind == HookKind::End &&
                                       s.spec->block == kind;
                            });
            }
            break;
          case OpClass::Br:
            simple(HookKind::Br, "br");
            if (hooks_.has(HookKind::End)) {
                requireEndSitesForTraversal(
                    f, state.traversedFrames(in.imm.idx));
            }
            break;
          case OpClass::BrIf:
            simple(HookKind::BrIf, "br_if");
            if (hooks_.has(HookKind::End)) {
                requireEndSitesForTraversal(
                    f, state.traversedFrames(in.imm.idx));
            }
            break;
          case OpClass::BrTable:
            if (const uint32_t *cidx = planConstIndex(f, i)) {
                // Narrowed by the plan: a plain br hook replaces the
                // table dispatch, and the end hooks for the (single,
                // statically known) taken target are emitted directly.
                if (hooks_.has(HookKind::BrTable)) {
                    requireSite(f, i, "br (narrowed br_table)",
                                [](const Site &s) {
                                    return s.spec->kind == HookKind::Br;
                                });
                }
                if (hooks_.has(HookKind::End)) {
                    size_t sel = std::min<size_t>(
                        *cidx, in.table.size() - 1);
                    requireEndSitesForTraversal(
                        f, state.traversedFrames(in.table[sel]));
                }
                break;
            }
            // Emitted when br_table OR end hooks are enabled: the
            // side table drives the runtime-selected end hooks.
            if (hooks_.has(HookKind::BrTable) ||
                hooks_.has(HookKind::End)) {
                requireSite(f, i, "br_table", [](const Site &s) {
                    return s.spec->kind == HookKind::BrTable;
                });
            }
            break;
          case OpClass::Return: {
            if (hooks_.has(HookKind::Return)) {
                std::vector<ValType> results =
                    orig_.funcType(f).results;
                requireSite(f, i, "return",
                            [&results](const Site &s) {
                                return s.spec->kind ==
                                           HookKind::Return &&
                                       s.spec->types == results;
                            });
            }
            if (hooks_.has(HookKind::End)) {
                requireEndSitesForTraversal(
                    f, state.allFramesInnermostFirst());
            }
            break;
          }
          case OpClass::Call:
          case OpClass::CallIndirect: {
            if (!hooks_.has(HookKind::Call))
                break;
            bool indirect = cls == OpClass::CallIndirect;
            const FuncType &type = indirect
                                       ? orig_.types.at(in.imm.idx)
                                       : orig_.funcType(in.imm.idx);
            // A verified constant-target claim narrows the expected
            // call_pre flavor to direct (no table-index argument).
            bool expect_indirect =
                indirect && !planCallTarget(f, i);
            requireSite(f, i,
                        expect_indirect ? "call_pre_indirect"
                        : indirect ? "call_pre (narrowed call_indirect)"
                                   : "call_pre",
                        [&type, expect_indirect](const Site &s) {
                            return s.spec->kind == HookKind::Call &&
                                   !s.spec->post &&
                                   s.spec->indirect ==
                                       expect_indirect &&
                                   s.spec->types == type.params;
                        });
            requireSite(f, i, "call_post", [&type](const Site &s) {
                return s.spec->kind == HookKind::Call &&
                       s.spec->post &&
                       s.spec->types == type.results;
            });
            break;
          }
          case OpClass::Drop: {
            if (!hooks_.has(HookKind::Drop))
                break;
            std::optional<ValType> t = state.top(0);
            requireSite(f, i, "drop", [t](const Site &s) {
                return s.spec->kind == HookKind::Drop &&
                       (!t || s.spec->types ==
                                  std::vector<ValType>{*t});
            });
            break;
          }
          case OpClass::Select: {
            if (!hooks_.has(HookKind::Select))
                break;
            std::optional<ValType> t = state.top(1);
            requireSite(f, i, "select", [t](const Site &s) {
                return s.spec->kind == HookKind::Select &&
                       (!t || s.spec->types ==
                                  std::vector<ValType>{*t});
            });
            break;
          }
          case OpClass::LocalGet:
          case OpClass::LocalSet:
          case OpClass::LocalTee:
            perOp(HookKind::Local);
            break;
          case OpClass::GlobalGet:
          case OpClass::GlobalSet:
            perOp(HookKind::Global);
            break;
          case OpClass::Load:
            perOp(HookKind::Load);
            break;
          case OpClass::Store:
            perOp(HookKind::Store);
            break;
          case OpClass::Const:
            perOp(HookKind::Const);
            break;
          case OpClass::Unary:
            perOp(HookKind::Unary);
            break;
          case OpClass::Binary:
            perOp(HookKind::Binary);
            break;
        }
    }

    // ----- optimization-plan (manifest) verification ------------------

    bool
    planDeadFunc(uint32_t f) const
    {
        return plan_ && plan_->deadFunctions.count(f) != 0;
    }

    /** Whether the plan licenses omitting every hook at (f, i) —
     * either a per-site skip or a whole-function dead claim. */
    bool
    planSkips(uint32_t f, uint32_t i) const
    {
        return plan_ &&
               (plan_->deadFunctions.count(f) != 0 ||
                plan_->skips.count(packLoc({f, i})) != 0);
    }

    bool
    planElidesBegin(uint32_t f, uint32_t i) const
    {
        return plan_ && plan_->elidedBegins.count(packLoc({f, i})) != 0;
    }

    bool
    planElidesEnd(uint32_t f, uint32_t i) const
    {
        return plan_ && plan_->elidedEnds.count(packLoc({f, i})) != 0;
    }

    /** Constant br_table index claimed by the plan at (f, i), if any. */
    const uint32_t *
    planConstIndex(uint32_t f, uint32_t i) const
    {
        if (!plan_)
            return nullptr;
        auto it = plan_->constBrTableIndex.find(packLoc({f, i}));
        return it != plan_->constBrTableIndex.end() ? &it->second
                                                    : nullptr;
    }

    /** Unique call_indirect target claimed by the plan at (f, i). */
    const core::HookOptimizationPlan::CallTargetClaim *
    planCallTarget(uint32_t f, uint32_t i) const
    {
        if (!plan_)
            return nullptr;
        auto it = plan_->constCallTargets.find(packLoc({f, i}));
        return it != plan_->constCallTargets.end() ? &it->second
                                                   : nullptr;
    }

    /** True for a defined-function location inside the body; emits
     * @p code otherwise. */
    bool
    validPlanLoc(Location loc, const char *code, const char *claim)
    {
        if (loc.func >= orig_.numFunctions() ||
            orig_.functions[loc.func].imported()) {
            diags_.error(code,
                         std::string(claim) +
                             " claim names function " +
                             std::to_string(loc.func) +
                             ", which is not a defined function",
                         loc.func);
            return false;
        }
        if (loc.instr >= orig_.functions[loc.func].body.size()) {
            diags_.error(code,
                         std::string(claim) +
                             " claim names instruction " +
                             std::to_string(loc.instr) +
                             " beyond the function body",
                         loc.func, loc.instr);
            return false;
        }
        return true;
    }

    /**
     * Re-prove every claim of the optimization plan against the
     * original module. The manifest is untrusted input: an
     * instrumented binary may legitimately omit hooks *only* where
     * the omission is statically unobservable, so each licensed
     * deviation must independently re-verify (check.manifest.*
     * errors otherwise). Verified claims are then used as exemptions
     * by the coverage and metadata checks.
     */
    void
    verifyPlan()
    {
        const core::HookOptimizationPlan &plan = *plan_;
        auto unpack = [](uint64_t packed) {
            return Location{static_cast<uint32_t>(packed >> 32),
                            static_cast<uint32_t>(packed)};
        };

        // Dead functions must be defined and dead under the *refined*
        // call graph (per-site call_indirect resolution) — the same
        // graph the optimizer widened the elision with, re-derived
        // here from the original module alone.
        std::optional<interproc::RefinedCallGraph> rcg;
        auto refined = [&]() -> interproc::RefinedCallGraph & {
            if (!rcg)
                rcg.emplace(orig_);
            return *rcg;
        };
        if (!plan.deadFunctions.empty()) {
            std::vector<uint32_t> dead(plan.deadFunctions.begin(),
                                       plan.deadFunctions.end());
            std::sort(dead.begin(), dead.end());
            for (uint32_t f : dead) {
                if (f >= orig_.numFunctions() ||
                    orig_.functions[f].imported()) {
                    diags_.error("check.manifest.bad-dead-function",
                                 "dead-function claim names function " +
                                     std::to_string(f) +
                                     ", which is not a defined "
                                     "function",
                                 f);
                } else if (refined().reachable(f)) {
                    diags_.error("check.manifest.bad-dead-function",
                                 "dead-function claim names function " +
                                     std::to_string(f) +
                                     ", which is reachable from the "
                                     "module's roots (refined call "
                                     "graph)",
                                 f);
                }
            }
        }

        // Narrowed call_indirect sites must re-resolve — through the
        // checker's own refined graph — to a constant index and the
        // same unique target the manifest claims.
        std::vector<std::pair<uint64_t,
                              core::HookOptimizationPlan::
                                  CallTargetClaim>>
            callNarrows(plan.constCallTargets.begin(),
                        plan.constCallTargets.end());
        std::sort(callNarrows.begin(), callNarrows.end(),
                  [](const auto &a, const auto &b) {
                      return a.first < b.first;
                  });
        for (const auto &[packed, claim] : callNarrows) {
            Location loc = unpack(packed);
            if (planSkips(loc.func, loc.instr))
                continue; // skip/dead wins; the claim is moot
            if (!validPlanLoc(loc, "check.manifest.bad-call-target",
                              "call-target"))
                continue;
            const Instr &in =
                orig_.functions[loc.func].body[loc.instr];
            if (wasm::opInfo(in.op).cls != OpClass::CallIndirect) {
                diags_.error("check.manifest.bad-call-target",
                             "call-target claim targets a "
                             "non-call_indirect instruction",
                             loc.func, loc.instr);
                continue;
            }
            const interproc::CallSite *site =
                refined().siteAt(loc.func, loc.instr);
            if (!site ||
                site->kind != interproc::SiteKind::IndirectConst ||
                *site->constIndex != claim.tableIndex ||
                site->targets.size() != 1 ||
                site->targets[0] != claim.target) {
                diags_.error(
                    "check.manifest.bad-call-target",
                    "call-target claim (index " +
                        std::to_string(claim.tableIndex) +
                        " -> function " +
                        std::to_string(claim.target) +
                        ") is not proven by the refined call graph",
                    loc.func, loc.instr);
            }
        }

        // Skips must be CFG-unreachable and never of `else` class: the
        // else instruction is only CFG-reachable via then-region
        // fallthrough, but its begin_else hook sits at the top of the
        // (possibly live) else-region.
        std::vector<uint64_t> skips(plan.skips.begin(),
                                    plan.skips.end());
        std::sort(skips.begin(), skips.end());
        std::optional<Cfg> cfg;
        std::vector<bool> cfgReach;
        for (uint64_t packed : skips) {
            Location loc = unpack(packed);
            if (planDeadFunc(loc.func))
                continue; // subsumed by the (verified) dead claim
            if (!validPlanLoc(loc, "check.manifest.bad-skip", "skip"))
                continue;
            const Instr &in =
                orig_.functions[loc.func].body[loc.instr];
            if (wasm::opInfo(in.op).cls == OpClass::Else) {
                diags_.error(
                    "check.manifest.bad-skip",
                    "skip claim targets an `else`, whose begin_else "
                    "hook guards the else-region even when the "
                    "instruction itself is CFG-unreachable",
                    loc.func, loc.instr);
                continue;
            }
            if (!cfg || cfg->funcIdx() != loc.func) {
                cfg.emplace(orig_, loc.func);
                cfgReach = reachableBlocks(*cfg);
            }
            if (cfgReach[cfg->blockOf(loc.instr)]) {
                diags_.error("check.manifest.bad-skip",
                             "skip claim targets a CFG-reachable "
                             "instruction",
                             loc.func, loc.instr);
            }
        }

        // Narrowed br_tables must have a constant index the checker's
        // own constant propagation re-derives with the same value.
        std::vector<std::pair<uint64_t, uint32_t>> narrows(
            plan.constBrTableIndex.begin(),
            plan.constBrTableIndex.end());
        std::sort(narrows.begin(), narrows.end());
        uint32_t factsFunc = 0;
        std::optional<passes::ConstFacts> facts;
        for (const auto &[packed, idx] : narrows) {
            Location loc = unpack(packed);
            if (planSkips(loc.func, loc.instr))
                continue; // skip wins; the claim is moot
            if (!validPlanLoc(loc, "check.manifest.bad-const-index",
                              "const-index"))
                continue;
            const Instr &in =
                orig_.functions[loc.func].body[loc.instr];
            if (wasm::opInfo(in.op).cls != OpClass::BrTable) {
                diags_.error("check.manifest.bad-const-index",
                             "const-index claim targets a non-br_table "
                             "instruction",
                             loc.func, loc.instr);
                continue;
            }
            if (!facts || factsFunc != loc.func) {
                facts = passes::constantFacts(orig_, loc.func);
                factsFunc = loc.func;
            }
            auto it = facts->brTableIndex.find(packed);
            if (it == facts->brTableIndex.end() || it->second != idx) {
                diags_.error(
                    "check.manifest.bad-const-index",
                    "const-index claim (index " + std::to_string(idx) +
                        ") is not proven by constant propagation",
                    loc.func, loc.instr);
            }
        }

        // Elided begin/end pairs must bracket empty blocks/loops.
        std::vector<uint64_t> elides(plan.elidedBegins.begin(),
                                     plan.elidedBegins.end());
        std::sort(elides.begin(), elides.end());
        uint32_t matchFunc = 0;
        std::vector<core::BlockMatch> matches;
        for (uint64_t packed : elides) {
            Location loc = unpack(packed);
            if (!validPlanLoc(loc, "check.manifest.bad-elide",
                              "elided-block"))
                continue;
            const Instr &in =
                orig_.functions[loc.func].body[loc.instr];
            OpClass cls = wasm::opInfo(in.op).cls;
            if (cls != OpClass::Block && cls != OpClass::Loop) {
                diags_.error("check.manifest.bad-elide",
                             "elided-block claim begins at a "
                             "non-block/loop instruction",
                             loc.func, loc.instr);
                continue;
            }
            if (matches.empty() || matchFunc != loc.func) {
                matches = core::matchBlocks(
                    orig_.functions[loc.func].body);
                matchFunc = loc.func;
            }
            if (matches[loc.instr].endIdx != loc.instr + 1) {
                diags_.error("check.manifest.bad-elide",
                             "elided block is not empty (its end is "
                             "not the next instruction)",
                             loc.func, loc.instr);
                continue;
            }
            if (!plan.elidedEnds.count(
                    packLoc({loc.func, loc.instr + 1}))) {
                diags_.error("check.manifest.bad-elide",
                             "elided block's end is not in the elided "
                             "set (begin/end must pair up)",
                             loc.func, loc.instr);
            }
        }
        std::vector<uint64_t> elideEnds(plan.elidedEnds.begin(),
                                        plan.elidedEnds.end());
        std::sort(elideEnds.begin(), elideEnds.end());
        for (uint64_t packed : elideEnds) {
            Location loc = unpack(packed);
            if (loc.instr == 0 ||
                !plan.elidedBegins.count(
                    packLoc({loc.func, loc.instr - 1}))) {
                diags_.error("check.manifest.bad-elide",
                             "elided end has no paired elided begin at "
                             "the preceding instruction",
                             loc.func, loc.instr);
            }
        }
    }

    // ----- side-table / branch-target metadata -----------------------

    void
    checkMetadata(const core::StaticInfo &info)
    {
        for (uint32_t f = 0; f < orig_.numFunctions(); ++f) {
            if (!orig_.functions[f].imported())
                checkFunctionMetadata(info, f);
        }
    }

    std::vector<core::EndedBlock>
    expectedEnded(uint32_t f, const std::vector<ControlFrame> &frames)
    {
        std::vector<core::EndedBlock> out;
        for (const ControlFrame &fr : frames) {
            uint32_t end_idx =
                fr.kind == BlockKind::If && fr.elseIdx ? *fr.elseIdx
                                                       : fr.endIdx;
            uint32_t begin_idx =
                fr.kind == BlockKind::Else && fr.elseIdx ? *fr.elseIdx
                                                         : fr.beginIdx;
            out.push_back(core::EndedBlock{
                fr.kind, Location{f, end_idx}, Location{f, begin_idx}});
        }
        return out;
    }

    bool
    endedMatches(const std::vector<core::EndedBlock> &actual,
                 const std::vector<core::EndedBlock> &expected)
    {
        if (actual.size() != expected.size())
            return false;
        for (size_t k = 0; k < actual.size(); ++k) {
            if (actual[k].kind != expected[k].kind ||
                !(actual[k].end == expected[k].end) ||
                !(actual[k].begin == expected[k].begin))
                return false;
        }
        return true;
    }

    void
    checkFunctionMetadata(const core::StaticInfo &info, uint32_t f)
    {
        const std::vector<Instr> &body = orig_.functions[f].body;
        AbstractState state(orig_, f);
        for (uint32_t i = 0; i < body.size(); ++i) {
            const Instr &in = body[i];
            OpClass cls = wasm::opInfo(in.op).cls;
            bool live = state.reachable();
            Location loc{f, i};

            if (live && (cls == OpClass::Br || cls == OpClass::BrIf)) {
                const core::BranchTarget *bt = info.findBrTarget(loc);
                uint32_t resolved = state.resolveLabel(in.imm.idx);
                if (!bt) {
                    diags_.error("check.sidetable.br-target",
                                 "no resolved branch target recorded "
                                 "for this branch",
                                 f, i);
                } else if (bt->label != in.imm.idx ||
                           !(bt->location == Location{f, resolved})) {
                    diags_.error(
                        "check.sidetable.br-target",
                        "recorded branch target (label " +
                            std::to_string(bt->label) + " -> instr " +
                            locString(bt->location.instr) +
                            ") disagrees with the abstract control "
                            "stack (label " +
                            std::to_string(in.imm.idx) + " -> instr " +
                            locString(resolved) + ")",
                        f, i);
                }
            }

            if (live && cls == OpClass::BrTable) {
                const core::BrTableInfo *tbl = info.findBrTable(loc);
                if (!tbl) {
                    diags_.error("check.sidetable.missing",
                                 "no side table recorded for this "
                                 "br_table",
                                 f, i);
                } else {
                    checkBrTable(f, i, in, *tbl, state);
                }
                if (const uint32_t *cidx = planConstIndex(f, i)) {
                    // Narrowed dispatch also records the statically
                    // taken target under brTargets (the plain br hook
                    // at this site resolves through it).
                    size_t sel = std::min<size_t>(
                        *cidx, in.table.size() - 1);
                    uint32_t label = in.table[sel];
                    uint32_t resolved = state.resolveLabel(label);
                    const core::BranchTarget *bt =
                        info.findBrTarget(loc);
                    if (!bt) {
                        diags_.error(
                            "check.sidetable.br-target",
                            "no branch target recorded for this "
                            "plan-narrowed br_table",
                            f, i);
                    } else if (bt->label != label ||
                               !(bt->location ==
                                 Location{f, resolved})) {
                        diags_.error(
                            "check.sidetable.br-target",
                            "recorded narrowed br_table target "
                            "(label " +
                                std::to_string(bt->label) +
                                " -> instr " +
                                locString(bt->location.instr) +
                                ") disagrees with the constant-index "
                                "resolution (label " +
                                std::to_string(label) + " -> instr " +
                                locString(resolved) + ")",
                            f, i);
                    }
                }
            }

            if (cls == OpClass::End || cls == OpClass::Else) {
                const core::BlockEndInfo *be = info.findBlockEnd(loc);
                const auto &ends = regionEnds(f);
                auto it = ends.find(i);
                if (!be) {
                    diags_.error("check.sidetable.block-end",
                                 "no block-end info recorded", f, i);
                } else if (it != ends.end() &&
                           (be->kind != it->second.kind ||
                            !(be->begin ==
                              Location{f, it->second.begin}))) {
                    diags_.error("check.sidetable.block-end",
                                 "recorded block-end info disagrees "
                                 "with the block structure",
                                 f, i);
                }
            }

            state.apply(in, i);
        }
    }

    void
    checkBrTable(uint32_t f, uint32_t i, const Instr &in,
                 const core::BrTableInfo &tbl, const AbstractState &state)
    {
        if (tbl.cases.size() + 1 != in.table.size()) {
            diags_.error(
                "check.sidetable.case-count",
                "side table has " + std::to_string(tbl.cases.size()) +
                    " cases for a br_table with " +
                    std::to_string(in.table.size() - 1) +
                    " non-default targets",
                f, i);
            return;
        }
        auto checkEntry = [&](const core::BrTableEntry &entry,
                              uint32_t label, const char *what) {
            uint32_t resolved = state.resolveLabel(label);
            bool target_ok =
                entry.target.label == label &&
                entry.target.location == Location{f, resolved};
            bool ended_ok = endedMatches(
                entry.ended,
                expectedEnded(f, state.traversedFrames(label)));
            if (!target_ok || !ended_ok) {
                diags_.error(
                    "check.sidetable.entry",
                    std::string(what) +
                        " entry does not cover its target (label " +
                        std::to_string(label) + " -> instr " +
                        locString(resolved) + ")",
                    f, i);
            }
        };
        for (size_t k = 0; k + 1 < in.table.size(); ++k)
            checkEntry(tbl.cases[k], in.table[k],
                       ("case " + std::to_string(k)).c_str());
        checkEntry(tbl.defaultCase, in.table.back(), "default");
    }

    // ----- state ------------------------------------------------------

    const Module &orig_;
    const Module &instr_;
    CheckOptions opts_;
    const core::StaticInfo *info_;
    /** Effective optimization plan (StaticInfo's wins over the
     * CheckOptions one); null when checking unoptimized output. */
    const core::HookOptimizationPlan *plan_ = nullptr;

    Diagnostics diags_;
    uint32_t base_ = 0;
    std::vector<HookSpec> specs_;
    /** Whether each hook import's name parsed to a real spec. */
    std::vector<bool> parsed_;
    bool split_ = true;
    HookSet hooks_;
    /** Hook call sites keyed by packed original location. */
    std::unordered_map<uint64_t, std::vector<Site>> sites_;
    /** Per-function end/else region shapes (lazy). */
    std::unordered_map<uint32_t,
                       std::unordered_map<uint32_t, RegionEnd>>
        regionEnds_;
};

} // namespace

Diagnostics
checkInstrumentation(const Module &original, const Module &instrumented,
                     const CheckOptions &opts)
{
    return Checker(original, instrumented, opts, nullptr).run();
}

Diagnostics
checkInstrumentation(const core::StaticInfo &info,
                     const Module &instrumented)
{
    CheckOptions opts;
    opts.importModule = info.importModule;
    return Checker(info.original, instrumented, opts, &info).run();
}

Diagnostics
checkRangeManifest(const Module &original,
                   const std::string &manifest_text,
                   unsigned num_threads)
{
    passes::RangeClaims claims;
    std::string err;
    if (!passes::rangeClaimsFromManifest(manifest_text, &claims,
                                         &err)) {
        Diagnostics ds;
        ds.error("check.range.bad-manifest",
                 "cannot parse range manifest: " + err);
        return ds;
    }
    return passes::checkRangeClaims(original, claims, num_threads);
}

} // namespace wasabi::static_analysis
