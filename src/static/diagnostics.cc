#include "static/diagnostics.h"

#include <algorithm>
#include <cstdio>

#include "core/control_stack.h"

namespace wasabi::static_analysis {

const char *
name(Severity s)
{
    switch (s) {
      case Severity::Note: return "note";
      case Severity::Warning: return "warning";
      case Severity::Error: return "error";
    }
    return "?";
}

size_t
Diagnostics::errorCount() const
{
    return static_cast<size_t>(
        std::count_if(all_.begin(), all_.end(), [](const Diagnostic &d) {
            return d.severity == Severity::Error;
        }));
}

bool
Diagnostics::hasCode(const std::string &code) const
{
    return std::any_of(all_.begin(), all_.end(),
                       [&code](const Diagnostic &d) {
                           return d.code == code;
                       });
}

void
Diagnostics::merge(const Diagnostics &other)
{
    all_.insert(all_.end(), other.all_.begin(), other.all_.end());
}

namespace {

/** Render an instruction index, mapping the sentinel to "entry". */
std::string
instrToString(uint32_t instr)
{
    if (instr == core::kFunctionEntry)
        return "entry";
    return std::to_string(instr);
}

void
appendEscaped(std::string &out, const std::string &s)
{
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
}

} // namespace

std::string
toString(const Diagnostic &d)
{
    std::string out = name(d.severity);
    out += " ";
    out += d.code;
    if (d.func) {
        out += " (func " + std::to_string(*d.func);
        if (d.instr)
            out += ", instr " + instrToString(*d.instr);
        out += ")";
    }
    out += ": ";
    out += d.message;
    return out;
}

std::string
toString(const Diagnostics &ds)
{
    std::string out;
    for (const Diagnostic &d : ds.all()) {
        out += toString(d);
        out += "\n";
    }
    return out;
}

std::string
toJson(const Diagnostics &ds)
{
    std::string out = "[";
    bool first = true;
    for (const Diagnostic &d : ds.all()) {
        if (!first)
            out += ",";
        first = false;
        out += "\n  {\"severity\": \"";
        out += name(d.severity);
        out += "\", \"code\": \"";
        appendEscaped(out, d.code);
        out += "\"";
        if (d.func)
            out += ", \"func\": " + std::to_string(*d.func);
        if (d.instr) {
            // The function-entry sentinel is not a real index; emit -1.
            out += ", \"instr\": ";
            out += *d.instr == core::kFunctionEntry
                       ? std::string("-1")
                       : std::to_string(*d.instr);
        }
        out += ", \"message\": \"";
        appendEscaped(out, d.message);
        out += "\"}";
    }
    out += first ? "]" : "\n]";
    return out;
}

} // namespace wasabi::static_analysis
