/**
 * @file
 * The module report behind `wasabi analyze`: per-function control-flow
 * statistics (basic blocks, edges, natural-loop back edges, statically
 * unreachable blocks) computed with the CFG + dataflow framework, plus
 * a call-graph summary with dead (never statically reachable)
 * functions. Used to size instrumentation workloads (how many
 * locations each hook kind will touch) and as a smoke test that the
 * static subsystem agrees with the validator's view of the module.
 */

#ifndef WASABI_STATIC_ANALYZE_H
#define WASABI_STATIC_ANALYZE_H

#include <string>
#include <vector>

#include "wasm/module.h"

namespace wasabi::static_analysis {

/** Control-flow statistics of one defined function. */
struct FunctionStats {
    uint32_t funcIdx = 0;
    uint32_t numInstrs = 0;
    uint32_t numBlocks = 0;      ///< incl. the synthetic exit block
    uint32_t numEdges = 0;
    uint32_t numBackEdges = 0;   ///< loops (head dominates tail)
    uint32_t numUnreachable = 0; ///< blocks unreachable from entry
    bool dead = false;           ///< not reachable in the call graph
};

/** Whole-module summary. */
struct ModuleReport {
    uint32_t numFunctions = 0;
    uint32_t numImportedFunctions = 0;
    uint32_t numInstructions = 0;
    uint32_t numCallEdges = 0;
    std::vector<FunctionStats> functions; ///< defined functions only
    std::vector<uint32_t> deadFunctions;
};

/** Analyze a valid module (call validateModule first). */
ModuleReport analyzeModule(const wasm::Module &m);

/** Human-readable table. */
std::string toString(const ModuleReport &r);

/** Machine-readable JSON object. */
std::string toJson(const ModuleReport &r);

/** Graphviz rendering of one function's CFG or of the call graph. */
std::string cfgDot(const wasm::Module &m, uint32_t func_idx);
std::string callGraphDot(const wasm::Module &m);

/** Refined call graph (per-site call_indirect edges) as Graphviz. */
std::string refinedCallGraphDot(const wasm::Module &m);

/**
 * Per-function effect summaries (interprocedural solver over the SCC
 * condensation of the refined call graph) as a JSON object. The output
 * is deterministic: byte-identical for any @p num_threads.
 */
std::string summariesJson(const wasm::Module &m, unsigned num_threads = 1);

/**
 * Value-range facts (interval abstract interpretation, argument seeds
 * propagated top-down over the SCC condensation) as a JSON object.
 * Deterministic: byte-identical for any @p num_threads.
 */
std::string rangesJson(const wasm::Module &m, unsigned num_threads = 1);

/** One function's CFG with per-block locals intervals as Graphviz. */
std::string rangesDot(const wasm::Module &m, uint32_t func_idx);

} // namespace wasabi::static_analysis

#endif // WASABI_STATIC_ANALYZE_H
