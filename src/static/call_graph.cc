#include "static/call_graph.h"

#include <algorithm>

#include "static/dot_util.h"
#include "static/interproc/table_layout.h"
#include "wasm/opcode.h"

namespace wasabi::static_analysis {

using wasm::OpClass;

StaticCallGraph::StaticCallGraph(const wasm::Module &m)
{
    const uint32_t n = m.numFunctions();
    callees_.resize(n);
    callers_.resize(n);

    // Functions exposed through the (at most one, MVP) table, per
    // signature type index: conservative call_indirect targets. The
    // layout resolver validates segment contents — out-of-range
    // indices are diagnosed there and dropped here instead of being
    // silently folded in (and corrupting the caller lists).
    const std::vector<uint32_t> table_funcs =
        interproc::computeTableLayout(m).segmentFuncs;

    for (uint32_t f = 0; f < n; ++f) {
        const wasm::Function &func = m.functions[f];
        if (func.imported())
            continue;
        for (const wasm::Instr &instr : func.body) {
            OpClass cls = wasm::opInfo(instr.op).cls;
            if (cls == OpClass::Call) {
                if (instr.imm.idx < n)
                    callees_[f].push_back(instr.imm.idx);
            } else if (cls == OpClass::CallIndirect) {
                const wasm::FuncType &sig = m.types.at(instr.imm.idx);
                for (uint32_t t : table_funcs) {
                    if (m.funcType(t) == sig)
                        callees_[f].push_back(t);
                }
            }
        }
        std::sort(callees_[f].begin(), callees_[f].end());
        callees_[f].erase(
            std::unique(callees_[f].begin(), callees_[f].end()),
            callees_[f].end());
        for (uint32_t c : callees_[f])
            callers_[c].push_back(f);
    }
    for (uint32_t f = 0; f < n; ++f) {
        std::sort(callers_[f].begin(), callers_[f].end());
        callers_[f].erase(
            std::unique(callers_[f].begin(), callers_[f].end()),
            callers_[f].end());
    }

    // Roots: exports, start, and — if the table itself is visible to
    // the host — every table-exposed function.
    for (uint32_t f = 0; f < n; ++f) {
        if (!m.functions[f].exportNames.empty())
            roots_.push_back(f);
    }
    if (m.start)
        roots_.push_back(*m.start);
    bool table_exported =
        !m.tables.empty() && (!m.tables[0].exportNames.empty() ||
                              m.tables[0].imported());
    if (table_exported) {
        roots_.insert(roots_.end(), table_funcs.begin(),
                      table_funcs.end());
    }
    std::sort(roots_.begin(), roots_.end());
    roots_.erase(std::unique(roots_.begin(), roots_.end()),
                 roots_.end());

    // Reachability from the roots (plain BFS).
    reachable_.assign(n, false);
    std::vector<uint32_t> worklist = roots_;
    for (uint32_t r : roots_)
        reachable_[r] = true;
    while (!worklist.empty()) {
        uint32_t f = worklist.back();
        worklist.pop_back();
        for (uint32_t c : callees_[f]) {
            if (!reachable_[c]) {
                reachable_[c] = true;
                worklist.push_back(c);
            }
        }
    }
}

std::vector<uint32_t>
StaticCallGraph::deadFunctions() const
{
    std::vector<uint32_t> dead;
    for (uint32_t f = 0; f < reachable_.size(); ++f) {
        if (!reachable_[f])
            dead.push_back(f);
    }
    return dead;
}

size_t
StaticCallGraph::numEdges() const
{
    size_t edges = 0;
    for (const std::vector<uint32_t> &c : callees_)
        edges += c.size();
    return edges;
}

std::string
StaticCallGraph::toDot(const wasm::Module &m) const
{
    std::vector<DotNode> nodes;
    std::vector<DotEdge> edges;
    for (uint32_t f = 0; f < callees_.size(); ++f) {
        const wasm::Function &func = m.functions[f];
        std::string id = "f" + std::to_string(f);
        std::string label = func.debugName.empty()
                                ? id
                                : escapeDotLabel(func.debugName);
        nodes.push_back({id, label, /*dashed=*/!reachable_[f]});
        for (uint32_t c : callees_[f])
            edges.push_back({id, "f" + std::to_string(c), ""});
    }
    return renderDigraph("callgraph", nodes, edges);
}

} // namespace wasabi::static_analysis
