#include "static/interproc/ipcp.h"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <thread>

#include "static/interproc/refined_call_graph.h"
#include "static/interproc/scc.h"
#include "static/interproc/summaries.h"
#include "wasm/opcode.h"

namespace wasabi::static_analysis::interproc {

using passes::Interval;
using wasm::Module;
using wasm::OpClass;
using wasm::Opcode;

namespace {

/** Same pinning rule as the range-analysis argument seeding: a
 * function whose full caller set the module cannot enumerate keeps
 * top arguments. */
std::vector<char>
pinnedFunctions(const Module &m, const RefinedCallGraph &cg,
                const SccGraph &scc)
{
    std::vector<char> pinned(m.numFunctions(), 0);
    for (uint32_t f : cg.roots())
        pinned[f] = 1;
    for (const CallSite &site : cg.sites()) {
        if (site.kind == SiteKind::Direct) {
            // Direct self calls make a singleton SCC recursive.
            if (!site.targets.empty() && site.targets[0] == site.func)
                pinned[site.func] = 1;
            continue;
        }
        for (uint32_t t : site.targets)
            pinned[t] = 1;
    }
    for (uint32_t sid = 0; sid < scc.numSccs(); ++sid) {
        if (scc.members[sid].size() > 1) {
            for (uint32_t f : scc.members[sid])
                pinned[f] = 1;
        }
    }
    return pinned;
}

/**
 * Termination proof, bottom-up over the condensation: a function
 * terminates when it is defined, loop-free, call_indirect-free, not
 * (even mutually) recursive, and every direct callee terminates.
 * Purity alone does not bound execution — a pure infinite loop must
 * not be folded away.
 */
std::vector<char>
terminatingFunctions(const Module &m, const RefinedCallGraph &cg,
                     const SccGraph &scc)
{
    std::vector<char> term(m.numFunctions(), 0);
    for (uint32_t sid = 0; sid < scc.numSccs(); ++sid) {
        if (scc.members[sid].size() > 1)
            continue; // mutual recursion
        const uint32_t f = scc.members[sid][0];
        const wasm::Function &fn = m.functions[f];
        if (fn.imported() || fn.body.empty())
            continue;
        const std::vector<uint32_t> &callees = cg.callees(f);
        if (std::find(callees.begin(), callees.end(), f) !=
            callees.end())
            continue; // direct self recursion
        bool ok = true;
        for (const wasm::Instr &ins : fn.body) {
            const OpClass cls = wasm::opInfo(ins.op).cls;
            if (cls == OpClass::Loop || cls == OpClass::CallIndirect) {
                ok = false;
                break;
            }
            if (cls == OpClass::Call && !term[ins.imm.idx]) {
                ok = false;
                break;
            }
        }
        term[f] = ok;
    }
    return term;
}

/**
 * Walk the condensation DAG with @p workers threads, calling
 * @p solve_scc once per SCC. Bottom-up (callees first) when
 * @p bottom_up, top-down (callers first) otherwise. Results published
 * by one SCC are read by dependents only after the queue mutex
 * ordered the writes — the same discipline as the summary and range
 * drivers, and the reason any worker count yields the same result.
 */
void
walkCondensation(const SccGraph &scc, bool bottom_up, unsigned workers,
                 const std::function<void(uint32_t)> &solve_scc)
{
    const uint32_t num_sccs = scc.numSccs();
    if (num_sccs == 0)
        return;
    if (workers <= 1 || num_sccs == 1) {
        // Tarjan ids are reverse-topological: ascending is bottom-up.
        if (bottom_up) {
            for (uint32_t sid = 0; sid < num_sccs; ++sid)
                solve_scc(sid);
        } else {
            for (uint32_t sid = num_sccs; sid-- > 0;)
                solve_scc(sid);
        }
        return;
    }

    const auto &deps = bottom_up ? scc.succs : scc.preds;
    const auto &dependents = bottom_up ? scc.preds : scc.succs;
    std::mutex mu;
    std::condition_variable cv;
    std::deque<uint32_t> ready;
    std::vector<uint32_t> pending(num_sccs);
    uint32_t solved = 0;
    for (uint32_t sid = 0; sid < num_sccs; ++sid) {
        pending[sid] = static_cast<uint32_t>(deps[sid].size());
        if (pending[sid] == 0)
            ready.push_back(sid);
    }

    auto worker = [&] {
        std::unique_lock<std::mutex> lock(mu);
        while (solved < num_sccs) {
            if (ready.empty()) {
                cv.wait(lock, [&] {
                    return !ready.empty() || solved == num_sccs;
                });
                continue;
            }
            uint32_t sid = ready.front();
            ready.pop_front();
            lock.unlock();
            solve_scc(sid);
            lock.lock();
            ++solved;
            for (uint32_t d : dependents[sid]) {
                if (--pending[d] == 0)
                    ready.push_back(d);
            }
            cv.notify_all();
        }
    };

    std::vector<std::thread> pool;
    unsigned count = std::min<unsigned>(workers, num_sccs);
    pool.reserve(count);
    for (unsigned t = 0; t < count; ++t)
        pool.emplace_back(worker);
    for (std::thread &t : pool)
        t.join();
}

void
appendInterval(std::string &out, const Interval &iv)
{
    out += "[" + std::to_string(iv.lo) + ", " + std::to_string(iv.hi) +
           "]";
}

} // namespace

ModuleIpcp
ipcpSolve(const Module &m, unsigned num_threads)
{
    ModuleIpcp result;
    const uint32_t n = m.numFunctions();
    result.functions.resize(n);
    if (n == 0)
        return result;

    RefinedCallGraph cg(m);
    SccGraph scc = condense(
        n, [&cg](uint32_t f) -> const std::vector<uint32_t> & {
            return cg.callees(f);
        });
    std::vector<char> pinned = pinnedFunctions(m, cg, scc);
    std::vector<char> term = terminatingFunctions(m, cg, scc);
    std::vector<EffectSummary> summaries =
        functionSummaries(m, cg, num_threads == 0 ? 1 : num_threads);

    const unsigned workers =
        num_threads == 0
            ? std::max(1u, std::thread::hardware_concurrency())
            : num_threads;

    // Phase A: bottom-up returns under top arguments. An entry stays
    // nullopt (reads as top) until its function's solve finalized, so
    // a consumer only ever sees sound over-approximations — within a
    // recursive SCC the members' mutual reads simply stay top.
    std::vector<std::optional<Interval>> retsA(n);
    walkCondensation(scc, /*bottom_up=*/true, workers, [&](uint32_t sid) {
        for (uint32_t f : scc.members[sid]) {
            const wasm::Function &fn = m.functions[f];
            if (fn.imported() || fn.body.empty())
                continue;
            std::vector<Interval> top(m.funcType(f).params.size(),
                                      Interval::top());
            passes::FunctionValueFlow vf =
                passes::functionValueFlow(m, f, top, &retsA);
            if (vf.analyzed && vf.returnSeen)
                retsA[f] = vf.ret;
        }
    });

    // Phase B: top-down arguments. Mirrors the moduleRanges driver:
    // joined caller contributions gate on the condensation so every
    // seed is read only after all callers finalized.
    std::vector<std::vector<Interval>> argsOut(n);
    std::vector<char> bAnalyzed(n, 0);
    std::vector<std::vector<Interval>> argSeed(n);
    std::mutex seedMu;
    walkCondensation(scc, /*bottom_up=*/false, workers, [&](uint32_t sid) {
        std::map<uint32_t, std::vector<Interval>> contrib;
        for (uint32_t f : scc.members[sid]) {
            const wasm::Function &fn = m.functions[f];
            const size_t np = m.funcType(f).params.size();
            std::vector<Interval> args(np, Interval::top());
            if (!pinned[f] && !fn.imported() && !fn.body.empty()) {
                std::lock_guard<std::mutex> lock(seedMu);
                if (!argSeed[f].empty())
                    args = argSeed[f];
                // No recorded caller: never invoked; top stays sound.
            }
            argsOut[f] = args;
            if (fn.imported() || fn.body.empty())
                continue;
            passes::FunctionValueFlow vf =
                passes::functionValueFlow(m, f, args, &retsA);
            if (!vf.analyzed) {
                // Iteration cap: still account for this function's
                // calls — degrade every callee's seed to top so no
                // callee is seeded from only its other callers.
                for (uint32_t c : cg.callees(f)) {
                    std::vector<Interval> targs(
                        m.funcType(c).params.size(), Interval::top());
                    auto [it, inserted] =
                        contrib.try_emplace(c, std::move(targs));
                    if (!inserted)
                        it->second.assign(it->second.size(),
                                          Interval::top());
                }
                continue;
            }
            bAnalyzed[f] = 1;
            for (auto &[callee, cargs] : vf.callArgs) {
                auto [it, inserted] = contrib.try_emplace(callee, cargs);
                if (!inserted) {
                    for (size_t k = 0; k < cargs.size(); ++k)
                        it->second[k] =
                            passes::hull(it->second[k], cargs[k]);
                }
            }
        }
        if (!contrib.empty()) {
            std::lock_guard<std::mutex> lock(seedMu);
            for (auto &[callee, args] : contrib) {
                std::vector<Interval> &seed = argSeed[callee];
                if (seed.empty()) {
                    seed = args;
                } else {
                    for (size_t k = 0; k < seed.size(); ++k)
                        seed[k] = passes::hull(seed[k], args[k]);
                }
            }
        }
    });

    // Phase C: bottom-up returns again, now under the phase-B
    // arguments — the lattice the optimizer consumes.
    std::vector<std::optional<Interval>> retsC(n);
    std::vector<char> cAnalyzed(n, 0);
    walkCondensation(scc, /*bottom_up=*/true, workers, [&](uint32_t sid) {
        for (uint32_t f : scc.members[sid]) {
            const wasm::Function &fn = m.functions[f];
            if (fn.imported() || fn.body.empty())
                continue;
            passes::FunctionValueFlow vf =
                passes::functionValueFlow(m, f, argsOut[f], &retsC);
            if (!vf.analyzed)
                continue;
            cAnalyzed[f] = 1;
            if (vf.returnSeen)
                retsC[f] = vf.ret;
        }
    });

    for (uint32_t f = 0; f < n; ++f) {
        FunctionIpcp &fi = result.functions[f];
        const wasm::Function &fn = m.functions[f];
        fi.defined = !fn.imported() && !fn.body.empty();
        fi.pinned = pinned[f] != 0;
        fi.pure = fi.defined && summaries[f].effectFree();
        fi.terminates = term[f] != 0;
        fi.analyzed = fi.defined && bAnalyzed[f] && cAnalyzed[f];
        fi.args = argsOut[f];
        const wasm::FuncType &type = m.funcType(f);
        if (retsC[f] && type.results.size() == 1 &&
            type.results[0] == wasm::ValType::I32) {
            fi.ret = *retsC[f];
            fi.retKnown = true;
        }
    }
    return result;
}

std::string
ipcpToJson(const Module &m, const ModuleIpcp &ipcp)
{
    std::string out = "{\n  \"functions\": [";
    for (uint32_t f = 0; f < ipcp.functions.size(); ++f) {
        const FunctionIpcp &fi = ipcp.functions[f];
        out += f ? ",\n    " : "\n    ";
        out += "{\"func\": " + std::to_string(f);
        if (!m.functions[f].debugName.empty())
            out += ", \"name\": \"" + m.functions[f].debugName + "\"";
        out += std::string(", \"defined\": ") +
               (fi.defined ? "true" : "false");
        if (!fi.defined) {
            out += "}";
            continue;
        }
        out += std::string(", \"pinned\": ") +
               (fi.pinned ? "true" : "false");
        out += std::string(", \"pure\": ") + (fi.pure ? "true" : "false");
        out += std::string(", \"terminates\": ") +
               (fi.terminates ? "true" : "false");
        out += std::string(", \"analyzed\": ") +
               (fi.analyzed ? "true" : "false");
        out += ", \"args\": [";
        for (size_t k = 0; k < fi.args.size(); ++k) {
            if (k)
                out += ", ";
            appendInterval(out, fi.args[k]);
        }
        out += "], \"ret\": ";
        if (fi.retKnown)
            appendInterval(out, fi.ret);
        else
            out += "null";
        out += "}";
    }
    out += ipcp.functions.empty() ? "]\n" : "\n  ]\n";
    out += "}\n";
    return out;
}

} // namespace wasabi::static_analysis::interproc
