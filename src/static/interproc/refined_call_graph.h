/**
 * @file
 * The refined call graph: per-site `call_indirect` resolution on top
 * of the seed StaticCallGraph's whole-table approximation.
 *
 * Each call site is classified:
 *  - Direct: a plain `call` with one known callee.
 *  - IndirectConst: the table index operand is a compile-time constant
 *    (PR-2 constprop lattice), the element layout is exact, and the
 *    table is not host-visible — the site resolves to the unique
 *    element-segment target.
 *  - IndirectTyped: the exact slot layout is known; targets are the
 *    type-matching functions actually placed in slots.
 *  - IndirectUnknown: host-visible table or unknown layout; targets
 *    fall back to the type-matched segment union (and, because the
 *    host can insert arbitrary exports, consumers must treat the
 *    callee set as open).
 *  - IndirectNone: no possible target — the call always traps
 *    (constant index out of range / null slot / signature mismatch,
 *    or no type-matching table entry at all).
 *
 * Every refined callee set is a subset of the seed graph's for the
 * same site and the root set is identical, so refined reachability is
 * a subset of — and refined dead-function detection a superset of —
 * the seed graph's. That monotonicity is what licenses widening the
 * hook optimizer's dead-function elision to this graph.
 */

#ifndef WASABI_STATIC_INTERPROC_REFINED_CALL_GRAPH_H
#define WASABI_STATIC_INTERPROC_REFINED_CALL_GRAPH_H

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "static/interproc/table_layout.h"
#include "wasm/module.h"

namespace wasabi::static_analysis::interproc {

enum class SiteKind : uint8_t {
    Direct,
    IndirectConst,
    IndirectTyped,
    IndirectUnknown,
    IndirectNone,
};

/** Name, e.g. "direct" or "indirect-const". */
const char *name(SiteKind k);

/** One call site of a defined function, with its resolved targets. */
struct CallSite {
    uint32_t func = 0;
    uint32_t instr = 0;
    SiteKind kind = SiteKind::Direct;

    /** The constant table index (IndirectConst only). */
    std::optional<uint32_t> constIndex;

    /** Possible callees (sorted, deduplicated; empty for
     * IndirectNone). */
    std::vector<uint32_t> targets;
};

class RefinedCallGraph {
  public:
    explicit RefinedCallGraph(const wasm::Module &m);

    const TableLayout &table() const { return table_; }

    /** All call sites in (func, instr) order. */
    const std::vector<CallSite> &sites() const { return sites_; }

    /** The site at (func, instr), or nullptr. */
    const CallSite *siteAt(uint32_t func, uint32_t instr) const;

    /** Callees of @p func_idx (sorted, deduplicated). */
    const std::vector<uint32_t> &callees(uint32_t func_idx) const
    {
        return callees_.at(func_idx);
    }

    /** Callers of @p func_idx (sorted, deduplicated). */
    const std::vector<uint32_t> &callers(uint32_t func_idx) const
    {
        return callers_.at(func_idx);
    }

    /** Root set (same as StaticCallGraph: exports, start, and every
     * segment function when the table is host-visible). */
    const std::vector<uint32_t> &roots() const { return roots_; }

    bool reachable(uint32_t func_idx) const
    {
        return reachable_.at(func_idx);
    }

    /** Functions unreachable from any root under refinement; always a
     * superset of StaticCallGraph::deadFunctions(). */
    std::vector<uint32_t> deadFunctions() const;

    size_t numFunctions() const { return callees_.size(); }
    size_t numEdges() const;

    /** Graphviz rendering with one edge per (site, target): constant
     * sites bold with their index, unresolved sites dashed, dead
     * functions dashed. */
    std::string toDot(const wasm::Module &m) const;

  private:
    TableLayout table_;
    std::vector<CallSite> sites_;
    std::unordered_map<uint64_t, size_t> siteIndex_;
    std::vector<std::vector<uint32_t>> callees_;
    std::vector<std::vector<uint32_t>> callers_;
    std::vector<uint32_t> roots_;
    std::vector<bool> reachable_;
};

} // namespace wasabi::static_analysis::interproc

#endif // WASABI_STATIC_INTERPROC_REFINED_CALL_GRAPH_H
