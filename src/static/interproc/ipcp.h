/**
 * @file
 * Interprocedural sparse constant/range propagation (SCCP over the
 * refined call graph's SCC condensation, joined with the PR-7 uint32
 * interval domain).
 *
 * Each function gets an argument lattice (one interval per i32
 * parameter) and a return lattice (one interval when the function has
 * exactly one i32 result). Functions whose arguments the module cannot
 * fully account for — host-reachable roots, targets of any indirect
 * call site, members of recursive SCCs — are *pinned*: their argument
 * lattice is top and stays top. Everything else is seeded purely from
 * the joined argument intervals of its (direct) callers.
 *
 * The solve is three deterministic phases over the condensation DAG:
 *  A. bottom-up return pass: per-function solve with top arguments,
 *     consuming callee returns as they finalize (callees first);
 *  B. top-down argument pass: per-function solve with seeded
 *     arguments, publishing hull-joined argument intervals to callee
 *     seeds (callers first), consuming phase-A returns;
 *  C. bottom-up return pass again, now under the phase-B arguments —
 *     the returns the optimizer actually consumes.
 * Joins are commutative and each phase is a barrier, so the result is
 * byte-identical at any thread count (same argument as the effect
 * summaries and the range-analysis seed drivers).
 *
 * Consumers: the `ipo-const` opt pass (fold calls to constant-
 * returning pure+terminating callees; propagate constant arguments
 * into private callees), `wasabi analyze --ipcp`, and the
 * lint.interproc.const-return lint.
 */

#ifndef WASABI_STATIC_INTERPROC_IPCP_H
#define WASABI_STATIC_INTERPROC_IPCP_H

#include <cstdint>
#include <string>
#include <vector>

#include "static/passes/range.h"
#include "wasm/module.h"

namespace wasabi::static_analysis::interproc {

/** Interprocedural facts for one function. */
struct FunctionIpcp {
    /** Has a body (false for imports). All other fields are
     * meaningless when false. */
    bool defined = false;

    /** Both per-function solves (phases B and C) converged. Argument
     * intervals are valid regardless — they are derived from the
     * callers, not from this function's own solve. */
    bool analyzed = false;

    /** Arguments pinned to top: root, indirect-call target, or member
     * of a recursive SCC (including direct self calls). */
    bool pinned = false;

    /** Effect-free per the PR-3 summary closure: nothing written, no
     * trap, no host escape. */
    bool pure = false;

    /** Provably terminates: loop-free, call_indirect-free body whose
     * direct callees all terminate (recursion excluded). */
    bool terminates = false;

    /** Joined i32 argument intervals (non-i32 parameters are top).
     * Top for pinned and never-called functions. */
    std::vector<passes::Interval> args;

    /** Hull of every returned value; valid iff retKnown. */
    passes::Interval ret;

    /** The function has exactly one i32 result, phase C converged,
     * and at least one normal exit was reached. */
    bool retKnown = false;
};

/** Module-wide ipcp facts, by function index. */
struct ModuleIpcp {
    std::vector<FunctionIpcp> functions;
};

/**
 * Solve the interprocedural constant/range lattices of validated
 * module @p m. @p num_threads = 0 picks a hardware default; the
 * result is byte-identical for any thread count.
 */
ModuleIpcp ipcpSolve(const wasm::Module &m, unsigned num_threads = 0);

/** Deterministic JSON rendering (the `wasabi analyze --ipcp`
 * payload): one object per function, ascending. */
std::string ipcpToJson(const wasm::Module &m, const ModuleIpcp &ipcp);

} // namespace wasabi::static_analysis::interproc

#endif // WASABI_STATIC_INTERPROC_IPCP_H
