/**
 * @file
 * Static resolution of the (at most one, MVP) function table's element
 * layout: which function occupies which slot after instantiation, and
 * whether that layout is exact enough to refine `call_indirect` sites.
 *
 * Unlike the seed StaticCallGraph, which silently folded every segment
 * into one function set, this resolver reports structured diagnostics
 * (lint.table.* codes) for out-of-range function indices, overlapping
 * or duplicate segments, and non-constant offsets — and records
 * whether the table is host-visible (imported or exported), in which
 * case the host may mutate it via `Table.set` and no slot content is
 * trustworthy for narrowing.
 */

#ifndef WASABI_STATIC_INTERPROC_TABLE_LAYOUT_H
#define WASABI_STATIC_INTERPROC_TABLE_LAYOUT_H

#include <cstdint>
#include <optional>
#include <vector>

#include "static/diagnostics.h"
#include "wasm/module.h"

namespace wasabi::static_analysis::interproc {

/** Stable lint codes for element-segment findings. @{ */
inline constexpr const char *kLintTableFuncOutOfRange =
    "lint.table.func-out-of-range";
inline constexpr const char *kLintTableOverlap = "lint.table.overlap";
inline constexpr const char *kLintTableNonConstOffset =
    "lint.table.non-const-offset";
inline constexpr const char *kLintTableSegmentOutOfRange =
    "lint.table.segment-out-of-range";
/** @} */

/** The statically resolved element layout of table 0. */
struct TableLayout {
    /** The module declares a table. */
    bool hasTable = false;

    /** The table is imported or exported: the host can observe and
     * mutate it (`Table.get`/`Table.set`), so slot contents are not
     * trustworthy for call_indirect narrowing. */
    bool hostVisible = false;

    /** Every active segment had a constant in-range offset, so
     * `slots` is the exact post-instantiation layout. */
    bool exact = true;

    /** Slot -> defined/imported function index (nullopt = null entry).
     * Sized to the table's declared minimum; meaningful iff `exact`. */
    std::vector<std::optional<uint32_t>> slots;

    /** Every valid function index referenced by any segment (sorted,
     * deduplicated) — the conservative whole-table target set. */
    std::vector<uint32_t> segmentFuncs;

    /** Structured lint.table.* findings (never errors: a hostile or
     * unvalidated module degrades precision, not correctness). */
    Diagnostics diags;
};

/** Resolve the element layout of @p m (validated or not; invalid
 * segment data is diagnosed and dropped rather than trusted). */
TableLayout computeTableLayout(const wasm::Module &m);

} // namespace wasabi::static_analysis::interproc

#endif // WASABI_STATIC_INTERPROC_TABLE_LAYOUT_H
