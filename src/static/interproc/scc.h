/**
 * @file
 * Tarjan SCC condensation of the refined call graph. The condensation
 * is the DAG the bottom-up summary solver walks: each SCC is one
 * solver unit (its members' summaries are identical — every member
 * reaches every other through paths that stay inside the SCC), and
 * Tarjan's pop order gives SCC ids in reverse topological order, so
 * processing ids 0..numSccs()-1 visits callees before callers.
 */

#ifndef WASABI_STATIC_INTERPROC_SCC_H
#define WASABI_STATIC_INTERPROC_SCC_H

#include <cstdint>
#include <functional>
#include <vector>

namespace wasabi::static_analysis::interproc {

/** The condensation of a directed graph over nodes 0..n-1. */
struct SccGraph {
    /** Node -> SCC id. Ids are in reverse topological order: every
     * edge goes from a higher id (caller) to a lower id (callee),
     * so ascending id order is bottom-up. */
    std::vector<uint32_t> sccOf;

    /** Per SCC: member nodes, ascending. */
    std::vector<std::vector<uint32_t>> members;

    /** Per SCC: successor (callee) SCCs, sorted, deduplicated, never
     * including the SCC itself. */
    std::vector<std::vector<uint32_t>> succs;

    /** Per SCC: predecessor (caller) SCCs, sorted, deduplicated. */
    std::vector<std::vector<uint32_t>> preds;

    uint32_t numSccs() const
    {
        return static_cast<uint32_t>(members.size());
    }
};

/**
 * Condense the graph with @p n nodes whose successors are given by
 * @p succs_of (iterative Tarjan — no recursion, safe for arbitrarily
 * deep call chains). Deterministic for a given graph.
 */
SccGraph
condense(uint32_t n,
         const std::function<const std::vector<uint32_t> &(uint32_t)>
             &succs_of);

} // namespace wasabi::static_analysis::interproc

#endif // WASABI_STATIC_INTERPROC_SCC_H
