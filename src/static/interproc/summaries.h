/**
 * @file
 * Per-function effect summaries, solved bottom-up over the refined
 * call graph's SCC condensation — in parallel, the same way
 * instrumentation is parallel across functions (paper §3).
 *
 * The summary lattice is a finite product of monotone components
 * (booleans ordered false < true, sets ordered by inclusion), so the
 * least fixpoint exists and is unique. One SCC is one solver unit:
 * within an SCC every member reaches every other via paths that stay
 * inside the SCC, so the per-SCC fixpoint is a single union over the
 * members' direct effects plus the (already final) summaries of
 * callee SCCs — no iteration needed. Workers pick up an SCC only once
 * all its callee SCCs are solved (dependency counting over the
 * condensation DAG); since each unit reads only finalized results and
 * writes only its own rows, the outcome is the unique least fixpoint
 * regardless of scheduling — which is what makes `--threads=1` and
 * `--threads=N` byte-identical.
 */

#ifndef WASABI_STATIC_INTERPROC_SUMMARIES_H
#define WASABI_STATIC_INTERPROC_SUMMARIES_H

#include <cstdint>
#include <string>
#include <vector>

#include "static/interproc/refined_call_graph.h"
#include "static/interproc/scc.h"
#include "wasm/module.h"

namespace wasabi::static_analysis::interproc {

/** What one function (transitively) may do. For imported functions —
 * and for calls through a host-visible table — the body is unknown:
 * `callsImport` is set and subsumes any memory/global effect the host
 * code might have. */
struct EffectSummary {
    bool readsMemory = false;
    bool writesMemory = false;
    bool growsMemory = false;
    /** May execute a trapping instruction (unreachable, div/rem,
     * float->int truncation, memory access, call_indirect). */
    bool mayTrap = false;
    /** May transfer control outside the module. */
    bool callsImport = false;

    /** Global indices read/written (sorted, deduplicated). */
    std::vector<uint32_t> globalsRead;
    std::vector<uint32_t> globalsWritten;

    /** Transitive callee closure: every function some execution may
     * enter from this one (sorted; includes self iff recursive). */
    std::vector<uint32_t> callees;

    bool operator==(const EffectSummary &other) const = default;

    /** No observable effect beyond computing values: nothing written,
     * no trap, no escape to the host. */
    bool
    effectFree() const
    {
        return !writesMemory && !growsMemory && !mayTrap &&
               !callsImport && globalsWritten.empty();
    }
};

/**
 * Solve summaries for every function of validated module @p m with
 * @p num_threads workers (clamped to at least 1). Deterministic:
 * the result is the unique least fixpoint, independent of the worker
 * count and scheduling.
 */
std::vector<EffectSummary>
functionSummaries(const wasm::Module &m, const RefinedCallGraph &cg,
                  unsigned num_threads = 1);

/** Convenience overload building the refined graph internally. */
std::vector<EffectSummary>
functionSummaries(const wasm::Module &m, unsigned num_threads = 1);

/** Deterministic JSON rendering (the `wasabi analyze --summaries`
 * payload): one object per function, ascending, with sorted sets. */
std::string
summariesToJson(const wasm::Module &m, const RefinedCallGraph &cg,
                const std::vector<EffectSummary> &summaries);

} // namespace wasabi::static_analysis::interproc

#endif // WASABI_STATIC_INTERPROC_SUMMARIES_H
