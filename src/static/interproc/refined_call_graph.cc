#include "static/interproc/refined_call_graph.h"

#include <algorithm>

#include "core/static_info.h"
#include "static/dot_util.h"
#include "static/passes/constprop.h"
#include "wasm/opcode.h"

namespace wasabi::static_analysis::interproc {

using wasm::Module;
using wasm::OpClass;

const char *
name(SiteKind k)
{
    switch (k) {
      case SiteKind::Direct: return "direct";
      case SiteKind::IndirectConst: return "indirect-const";
      case SiteKind::IndirectTyped: return "indirect-typed";
      case SiteKind::IndirectUnknown: return "indirect-unknown";
      case SiteKind::IndirectNone: return "indirect-none";
    }
    return "?";
}

namespace {

std::vector<uint32_t>
typeMatched(const Module &m, const std::vector<uint32_t> &funcs,
            const wasm::FuncType &sig)
{
    std::vector<uint32_t> out;
    for (uint32_t t : funcs) {
        if (m.funcType(t) == sig)
            out.push_back(t);
    }
    return out;
}

} // namespace

RefinedCallGraph::RefinedCallGraph(const Module &m)
    : table_(computeTableLayout(m))
{
    const uint32_t n = m.numFunctions();
    callees_.resize(n);
    callers_.resize(n);

    // Functions actually placed in a slot (exact layouts only),
    // sorted — strictly tighter than the whole segment union.
    std::vector<uint32_t> slot_funcs;
    if (table_.exact) {
        for (const std::optional<uint32_t> &s : table_.slots) {
            if (s)
                slot_funcs.push_back(*s);
        }
        std::sort(slot_funcs.begin(), slot_funcs.end());
        slot_funcs.erase(
            std::unique(slot_funcs.begin(), slot_funcs.end()),
            slot_funcs.end());
    }

    for (uint32_t f = 0; f < n; ++f) {
        const wasm::Function &func = m.functions[f];
        if (func.imported())
            continue;
        // Constant table indices from the PR-2 constprop lattice are
        // only needed when some call_indirect could use them.
        std::optional<passes::ConstFacts> facts;
        for (uint32_t i = 0; i < func.body.size(); ++i) {
            const wasm::Instr &instr = func.body[i];
            OpClass cls = wasm::opInfo(instr.op).cls;
            if (cls != OpClass::Call && cls != OpClass::CallIndirect)
                continue;

            CallSite site;
            site.func = f;
            site.instr = i;
            if (cls == OpClass::Call) {
                site.kind = SiteKind::Direct;
                if (instr.imm.idx < n)
                    site.targets.push_back(instr.imm.idx);
            } else {
                const wasm::FuncType &sig = m.types.at(instr.imm.idx);
                if (!facts)
                    facts = passes::constantFacts(m, f);
                auto it = facts->callIndirectIndex.find(
                    core::packLoc({f, i}));
                std::optional<uint32_t> cidx;
                if (it != facts->callIndirectIndex.end())
                    cidx = it->second;

                if (table_.hostVisible || !table_.exact) {
                    // The host can mutate (or pre-populate) the
                    // table: nothing stronger than the type-matched
                    // segment union, and even that set is open.
                    site.kind = SiteKind::IndirectUnknown;
                    site.targets =
                        typeMatched(m, table_.segmentFuncs, sig);
                } else if (cidx) {
                    site.constIndex = cidx;
                    std::optional<uint32_t> target;
                    if (*cidx < table_.slots.size())
                        target = table_.slots[*cidx];
                    if (target && m.funcType(*target) == sig) {
                        site.kind = SiteKind::IndirectConst;
                        site.targets.push_back(*target);
                    } else {
                        // Out of range, null slot, or signature
                        // mismatch: the call always traps.
                        site.kind = SiteKind::IndirectNone;
                    }
                } else {
                    site.targets = typeMatched(m, slot_funcs, sig);
                    site.kind = site.targets.empty()
                                    ? SiteKind::IndirectNone
                                    : SiteKind::IndirectTyped;
                }
            }
            for (uint32_t t : site.targets)
                callees_[f].push_back(t);
            siteIndex_[core::packLoc({f, i})] = sites_.size();
            sites_.push_back(std::move(site));
        }
        std::sort(callees_[f].begin(), callees_[f].end());
        callees_[f].erase(
            std::unique(callees_[f].begin(), callees_[f].end()),
            callees_[f].end());
        for (uint32_t c : callees_[f])
            callers_[c].push_back(f);
    }
    for (uint32_t f = 0; f < n; ++f) {
        std::sort(callers_[f].begin(), callers_[f].end());
        callers_[f].erase(
            std::unique(callers_[f].begin(), callers_[f].end()),
            callers_[f].end());
    }

    // Roots: identical to StaticCallGraph, so refined reachability is
    // comparable (and provably a subset).
    for (uint32_t f = 0; f < n; ++f) {
        if (!m.functions[f].exportNames.empty())
            roots_.push_back(f);
    }
    if (m.start)
        roots_.push_back(*m.start);
    if (table_.hasTable && table_.hostVisible) {
        roots_.insert(roots_.end(), table_.segmentFuncs.begin(),
                      table_.segmentFuncs.end());
    }
    std::sort(roots_.begin(), roots_.end());
    roots_.erase(std::unique(roots_.begin(), roots_.end()),
                 roots_.end());

    reachable_.assign(n, false);
    std::vector<uint32_t> worklist = roots_;
    for (uint32_t r : roots_)
        reachable_[r] = true;
    while (!worklist.empty()) {
        uint32_t f = worklist.back();
        worklist.pop_back();
        for (uint32_t c : callees_[f]) {
            if (!reachable_[c]) {
                reachable_[c] = true;
                worklist.push_back(c);
            }
        }
    }
}

const CallSite *
RefinedCallGraph::siteAt(uint32_t func, uint32_t instr) const
{
    auto it = siteIndex_.find(core::packLoc({func, instr}));
    return it == siteIndex_.end() ? nullptr : &sites_[it->second];
}

std::vector<uint32_t>
RefinedCallGraph::deadFunctions() const
{
    std::vector<uint32_t> dead;
    for (uint32_t f = 0; f < reachable_.size(); ++f) {
        if (!reachable_[f])
            dead.push_back(f);
    }
    return dead;
}

size_t
RefinedCallGraph::numEdges() const
{
    size_t edges = 0;
    for (const std::vector<uint32_t> &c : callees_)
        edges += c.size();
    return edges;
}

std::string
RefinedCallGraph::toDot(const Module &m) const
{
    std::vector<DotNode> nodes;
    std::vector<DotEdge> edges;
    for (uint32_t f = 0; f < callees_.size(); ++f) {
        const wasm::Function &func = m.functions[f];
        DotNode node;
        node.id = "f" + std::to_string(f);
        node.label = func.debugName.empty()
                         ? "f" + std::to_string(f)
                         : escapeDotLabel(func.debugName);
        node.dashed = !reachable_[f];
        nodes.push_back(std::move(node));
    }
    for (const CallSite &s : sites_) {
        for (uint32_t t : s.targets) {
            DotEdge e;
            e.from = "f" + std::to_string(s.func);
            e.to = "f" + std::to_string(t);
            e.label = "i" + std::to_string(s.instr);
            if (s.kind == SiteKind::IndirectConst) {
                e.bold = true;
                e.label += " [" + std::to_string(*s.constIndex) + "]";
            } else if (s.kind == SiteKind::IndirectUnknown) {
                e.dashed = true;
            }
            edges.push_back(std::move(e));
        }
    }
    return renderDigraph("refined_callgraph", nodes, edges);
}

} // namespace wasabi::static_analysis::interproc
