#include "static/interproc/table_layout.h"

#include <algorithm>

#include "wasm/opcode.h"

namespace wasabi::static_analysis::interproc {

using wasm::ElementSegment;
using wasm::Module;
using wasm::Opcode;

namespace {

/** The segment's offset if it is a plain `i32.const k; end`. */
std::optional<uint32_t>
constOffset(const ElementSegment &seg)
{
    if (seg.offset.size() != 2 ||
        seg.offset[0].op != Opcode::I32Const ||
        seg.offset[1].op != Opcode::End)
        return std::nullopt;
    return seg.offset[0].imm.i32v;
}

} // namespace

TableLayout
computeTableLayout(const Module &m)
{
    TableLayout layout;
    layout.hasTable = !m.tables.empty();
    if (layout.hasTable) {
        const wasm::Table &t = m.tables[0];
        layout.hostVisible = t.imported() || !t.exportNames.empty();
        layout.slots.resize(t.limits.min);
    }
    // An imported table's instantiation-time size (and prior contents)
    // are the host's business; the declared minimum is only a lower
    // bound on what exists, not on what is null.
    if (layout.hasTable && m.tables[0].imported())
        layout.exact = false;

    const uint32_t num_funcs = m.numFunctions();
    for (uint32_t s = 0; s < m.elements.size(); ++s) {
        const ElementSegment &seg = m.elements[s];

        // Collect the target set first: valid indices feed the
        // conservative type-matched union even when the exact slot
        // layout is unknown.
        for (uint32_t k = 0; k < seg.funcIdxs.size(); ++k) {
            uint32_t fn = seg.funcIdxs[k];
            if (fn >= num_funcs) {
                layout.diags.warning(
                    kLintTableFuncOutOfRange,
                    "element segment " + std::to_string(s) +
                        " entry " + std::to_string(k) +
                        " names function " + std::to_string(fn) +
                        ", but the module has only " +
                        std::to_string(num_funcs) +
                        " functions; entry ignored");
                continue;
            }
            layout.segmentFuncs.push_back(fn);
        }

        std::optional<uint32_t> off = constOffset(seg);
        if (!off) {
            layout.diags.add(
                Severity::Note, kLintTableNonConstOffset,
                "element segment " + std::to_string(s) +
                    " has a non-constant offset expression; the "
                    "slot layout is unknown statically");
            layout.exact = false;
            continue;
        }
        if (static_cast<uint64_t>(*off) + seg.funcIdxs.size() >
            layout.slots.size()) {
            layout.diags.warning(
                kLintTableSegmentOutOfRange,
                "element segment " + std::to_string(s) +
                    " (offset " + std::to_string(*off) + ", " +
                    std::to_string(seg.funcIdxs.size()) +
                    " entries) extends past the table's declared "
                    "minimum size " +
                    std::to_string(layout.slots.size()) +
                    "; instantiation would trap");
            layout.exact = false;
            continue;
        }
        for (uint32_t k = 0; k < seg.funcIdxs.size(); ++k) {
            uint32_t fn = seg.funcIdxs[k];
            if (fn >= num_funcs)
                continue; // diagnosed above
            uint32_t slot = *off + k;
            if (layout.slots[slot]) {
                layout.diags.warning(
                    kLintTableOverlap,
                    "element segment " + std::to_string(s) +
                        " overwrites table slot " +
                        std::to_string(slot) + " (function " +
                        std::to_string(*layout.slots[slot]) +
                        " -> " + std::to_string(fn) +
                        "); later segments win at instantiation");
            }
            layout.slots[slot] = fn;
        }
    }

    std::sort(layout.segmentFuncs.begin(), layout.segmentFuncs.end());
    layout.segmentFuncs.erase(std::unique(layout.segmentFuncs.begin(),
                                          layout.segmentFuncs.end()),
                              layout.segmentFuncs.end());
    return layout;
}

} // namespace wasabi::static_analysis::interproc
