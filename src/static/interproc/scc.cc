#include "static/interproc/scc.h"

#include <algorithm>

namespace wasabi::static_analysis::interproc {

namespace {

constexpr uint32_t kUnvisited = 0xFFFFFFFFu;

/** One frame of the explicit Tarjan DFS stack. */
struct Frame {
    uint32_t node;
    uint32_t nextSucc; ///< index into succs_of(node) to resume at
};

} // namespace

SccGraph
condense(uint32_t n,
         const std::function<const std::vector<uint32_t> &(uint32_t)>
             &succs_of)
{
    SccGraph g;
    g.sccOf.assign(n, kUnvisited);

    std::vector<uint32_t> index(n, kUnvisited);
    std::vector<uint32_t> lowlink(n, 0);
    std::vector<bool> on_stack(n, false);
    std::vector<uint32_t> stack;
    std::vector<Frame> dfs;
    uint32_t next_index = 0;

    for (uint32_t root = 0; root < n; ++root) {
        if (index[root] != kUnvisited)
            continue;
        dfs.push_back({root, 0});
        index[root] = lowlink[root] = next_index++;
        stack.push_back(root);
        on_stack[root] = true;

        while (!dfs.empty()) {
            Frame &fr = dfs.back();
            const std::vector<uint32_t> &succs = succs_of(fr.node);
            if (fr.nextSucc < succs.size()) {
                uint32_t w = succs[fr.nextSucc++];
                if (index[w] == kUnvisited) {
                    dfs.push_back({w, 0});
                    index[w] = lowlink[w] = next_index++;
                    stack.push_back(w);
                    on_stack[w] = true;
                } else if (on_stack[w]) {
                    lowlink[fr.node] =
                        std::min(lowlink[fr.node], index[w]);
                }
                continue;
            }
            // All successors done: maybe close an SCC, then propagate
            // the lowlink to the parent.
            uint32_t v = fr.node;
            dfs.pop_back();
            if (lowlink[v] == index[v]) {
                uint32_t id = g.numSccs();
                g.members.emplace_back();
                while (true) {
                    uint32_t w = stack.back();
                    stack.pop_back();
                    on_stack[w] = false;
                    g.sccOf[w] = id;
                    g.members.back().push_back(w);
                    if (w == v)
                        break;
                }
                std::sort(g.members.back().begin(),
                          g.members.back().end());
            }
            if (!dfs.empty()) {
                uint32_t p = dfs.back().node;
                lowlink[p] = std::min(lowlink[p], lowlink[v]);
            }
        }
    }

    g.succs.resize(g.numSccs());
    g.preds.resize(g.numSccs());
    for (uint32_t v = 0; v < n; ++v) {
        uint32_t from = g.sccOf[v];
        for (uint32_t w : succs_of(v)) {
            uint32_t to = g.sccOf[w];
            if (to != from)
                g.succs[from].push_back(to);
        }
    }
    for (uint32_t s = 0; s < g.numSccs(); ++s) {
        std::sort(g.succs[s].begin(), g.succs[s].end());
        g.succs[s].erase(
            std::unique(g.succs[s].begin(), g.succs[s].end()),
            g.succs[s].end());
        for (uint32_t t : g.succs[s])
            g.preds[t].push_back(s);
    }
    for (uint32_t s = 0; s < g.numSccs(); ++s)
        std::sort(g.preds[s].begin(), g.preds[s].end());
    return g;
}

} // namespace wasabi::static_analysis::interproc
