#include "static/interproc/summaries.h"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>

#include "wasm/opcode.h"

namespace wasabi::static_analysis::interproc {

using wasm::Module;
using wasm::OpClass;
using wasm::Opcode;

namespace {

/** Whether executing @p op can trap (syntactic classification;
 * loads/stores count because of out-of-bounds accesses). */
bool
mayTrapOp(Opcode op, OpClass cls)
{
    if (cls == OpClass::Load || cls == OpClass::Store ||
        cls == OpClass::Unreachable || cls == OpClass::CallIndirect)
        return true;
    switch (op) {
      case Opcode::I32DivS:
      case Opcode::I32DivU:
      case Opcode::I32RemS:
      case Opcode::I32RemU:
      case Opcode::I64DivS:
      case Opcode::I64DivU:
      case Opcode::I64RemS:
      case Opcode::I64RemU:
      case Opcode::I32TruncF32S:
      case Opcode::I32TruncF32U:
      case Opcode::I32TruncF64S:
      case Opcode::I32TruncF64U:
      case Opcode::I64TruncF32S:
      case Opcode::I64TruncF32U:
      case Opcode::I64TruncF64S:
      case Opcode::I64TruncF64U:
        return true;
      default:
        return false;
    }
}

void
sortUnique(std::vector<uint32_t> &v)
{
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
}

/** Union @p from's scalar effects and sets into @p into (the sets are
 * deduplicated once at SCC finalization). */
void
mergeEffects(EffectSummary &into, const EffectSummary &from)
{
    into.readsMemory |= from.readsMemory;
    into.writesMemory |= from.writesMemory;
    into.growsMemory |= from.growsMemory;
    into.mayTrap |= from.mayTrap;
    into.callsImport |= from.callsImport;
    into.globalsRead.insert(into.globalsRead.end(),
                            from.globalsRead.begin(),
                            from.globalsRead.end());
    into.globalsWritten.insert(into.globalsWritten.end(),
                               from.globalsWritten.begin(),
                               from.globalsWritten.end());
}

/** The body-local (non-call) effects of one function. */
EffectSummary
directEffects(const Module &m, const RefinedCallGraph &cg, uint32_t f)
{
    EffectSummary s;
    const wasm::Function &func = m.functions[f];
    if (func.imported()) {
        // The import's body is host code: unknown effects beyond what
        // the lattice tracks, represented by callsImport (+ may-trap).
        s.callsImport = true;
        s.mayTrap = true;
        return s;
    }
    for (uint32_t i = 0; i < func.body.size(); ++i) {
        const wasm::Instr &in = func.body[i];
        OpClass cls = wasm::opInfo(in.op).cls;
        if (mayTrapOp(in.op, cls))
            s.mayTrap = true;
        switch (cls) {
          case OpClass::Load:
            s.readsMemory = true;
            break;
          case OpClass::Store:
            s.writesMemory = true;
            break;
          case OpClass::MemoryGrow:
            s.growsMemory = true;
            break;
          case OpClass::GlobalGet:
            s.globalsRead.push_back(in.imm.idx);
            break;
          case OpClass::GlobalSet:
            s.globalsWritten.push_back(in.imm.idx);
            break;
          case OpClass::CallIndirect: {
            const CallSite *site = cg.siteAt(f, i);
            // Through a host-visible table the callee set is open
            // (the host may insert any function it owns).
            if (!site || site->kind == SiteKind::IndirectUnknown)
                s.callsImport = true;
            break;
          }
          default:
            break;
        }
    }
    sortUnique(s.globalsRead);
    sortUnique(s.globalsWritten);
    return s;
}

} // namespace

std::vector<EffectSummary>
functionSummaries(const Module &m, const RefinedCallGraph &cg,
                  unsigned num_threads)
{
    const uint32_t n = m.numFunctions();
    std::vector<EffectSummary> summaries(n);
    if (n == 0)
        return summaries;

    SccGraph scc = condense(
        n, [&cg](uint32_t f) -> const std::vector<uint32_t> & {
            return cg.callees(f);
        });
    const uint32_t num_sccs = scc.numSccs();

    // One SCC = one solver unit; only reads finalized callee-SCC rows
    // and writes its own members' rows.
    auto solveScc = [&](uint32_t sid) {
        const std::vector<uint32_t> &members = scc.members[sid];
        EffectSummary sum;
        bool self_edge = false;
        for (uint32_t f : members) {
            mergeEffects(sum, directEffects(m, cg, f));
            for (uint32_t c : cg.callees(f)) {
                if (scc.sccOf[c] == sid) {
                    self_edge = true;
                    continue; // effects covered by the member merge
                }
                const EffectSummary &callee = summaries[c];
                mergeEffects(sum, callee);
                sum.callees.push_back(c);
                sum.callees.insert(sum.callees.end(),
                                   callee.callees.begin(),
                                   callee.callees.end());
            }
        }
        // In a non-trivial SCC every member reaches every member via a
        // non-empty in-SCC path; a singleton is in its own closure iff
        // it calls itself.
        if (members.size() > 1 || self_edge) {
            sum.callees.insert(sum.callees.end(), members.begin(),
                               members.end());
        }
        sortUnique(sum.globalsRead);
        sortUnique(sum.globalsWritten);
        sortUnique(sum.callees);
        for (uint32_t f : members)
            summaries[f] = sum;
    };

    unsigned workers = std::max(1u, num_threads);
    if (workers == 1) {
        // Tarjan ids are reverse-topological: ascending is bottom-up.
        for (uint32_t sid = 0; sid < num_sccs; ++sid)
            solveScc(sid);
        return summaries;
    }

    // Parallel bottom-up walk of the condensation DAG: an SCC becomes
    // ready once all its callee SCCs are solved. Results are published
    // under the queue mutex, so readers are ordered after writers.
    std::mutex mu;
    std::condition_variable cv;
    std::deque<uint32_t> ready;
    std::vector<uint32_t> pending(num_sccs);
    uint32_t solved = 0;
    for (uint32_t sid = 0; sid < num_sccs; ++sid) {
        pending[sid] = static_cast<uint32_t>(scc.succs[sid].size());
        if (pending[sid] == 0)
            ready.push_back(sid);
    }

    auto worker = [&] {
        std::unique_lock<std::mutex> lock(mu);
        while (solved < num_sccs) {
            if (ready.empty()) {
                cv.wait(lock, [&] {
                    return !ready.empty() || solved == num_sccs;
                });
                continue;
            }
            uint32_t sid = ready.front();
            ready.pop_front();
            lock.unlock();
            solveScc(sid);
            lock.lock();
            ++solved;
            for (uint32_t p : scc.preds[sid]) {
                if (--pending[p] == 0)
                    ready.push_back(p);
            }
            cv.notify_all();
        }
    };

    std::vector<std::thread> pool;
    unsigned count = std::min<unsigned>(workers, num_sccs);
    pool.reserve(count);
    for (unsigned t = 0; t < count; ++t)
        pool.emplace_back(worker);
    for (std::thread &t : pool)
        t.join();
    return summaries;
}

std::vector<EffectSummary>
functionSummaries(const Module &m, unsigned num_threads)
{
    RefinedCallGraph cg(m);
    return functionSummaries(m, cg, num_threads);
}

namespace {

void
appendSet(std::string &out, const char *key,
          const std::vector<uint32_t> &v)
{
    out += std::string(",\"") + key + "\":[";
    for (size_t i = 0; i < v.size(); ++i) {
        if (i)
            out += ",";
        out += std::to_string(v[i]);
    }
    out += "]";
}

} // namespace

std::string
summariesToJson(const Module &m, const RefinedCallGraph &cg,
                const std::vector<EffectSummary> &summaries)
{
    auto flag = [](bool b) { return b ? "true" : "false"; };
    std::string out = "{\"functions\":[";
    for (uint32_t f = 0; f < summaries.size(); ++f) {
        const EffectSummary &s = summaries[f];
        if (f)
            out += ",";
        out += "{\"func\":" + std::to_string(f);
        out += std::string(",\"imported\":") +
               flag(m.functions[f].imported());
        out += std::string(",\"reachable\":") + flag(cg.reachable(f));
        out += std::string(",\"readsMemory\":") + flag(s.readsMemory);
        out +=
            std::string(",\"writesMemory\":") + flag(s.writesMemory);
        out += std::string(",\"growsMemory\":") + flag(s.growsMemory);
        out += std::string(",\"mayTrap\":") + flag(s.mayTrap);
        out += std::string(",\"callsImport\":") + flag(s.callsImport);
        appendSet(out, "globalsRead", s.globalsRead);
        appendSet(out, "globalsWritten", s.globalsWritten);
        appendSet(out, "callees", s.callees);
        out += "}";
    }
    out += "]}";
    return out;
}

} // namespace wasabi::static_analysis::interproc
