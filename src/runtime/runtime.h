/**
 * @file
 * The Wasabi runtime (paper Figure 2, right side): generates one host
 * function per monomorphic low-level hook, decodes its arguments
 * (joining split i64 halves), enriches them with static information
 * (branch targets, instruction immediates, br_table side tables), and
 * dispatches to the high-level hooks of the registered analyses.
 */

#ifndef WASABI_RUNTIME_RUNTIME_H
#define WASABI_RUNTIME_RUNTIME_H

#include <memory>
#include <string>

#include "core/instrument.h"
#include "interp/engine/intrinsic.h"
#include "interp/interpreter.h"
#include "obs/profile.h"
#include "runtime/analysis.h"

namespace wasabi::runtime {

/**
 * Connects an instrumented module with a set of analyses.
 *
 * Typical use (rewrite mode):
 * @code
 *   MyAnalysis analysis;
 *   auto r = core::instrument(module,
 *                             WasabiRuntime::requiredHooks({&analysis}));
 *   WasabiRuntime rt(r.info);
 *   rt.addAnalysis(&analysis);
 *   auto inst = rt.instantiate(r.module);
 *   interp::Interpreter().invokeExport(*inst, "main", args);
 * @endcode
 *
 * Engine-intrinsic mode (DESIGN.md §13) runs the *original* module on
 * the fast engine, which dispatches hooks straight from its inner
 * loop — no rewriting, no low-level hook imports:
 * @code
 *   auto info = core::buildIntrinsicInfo(module, hooks);
 *   WasabiRuntime rt(info);
 *   rt.addAnalysis(&analysis);
 *   auto inst = rt.instantiateIntrinsic(module);
 *   interp::Interpreter().invokeExport(*inst, "main", args);
 * @endcode
 *
 * The runtime must outlive every instance it instantiated (both modes
 * keep non-owning back-references for dispatch).
 */
class WasabiRuntime : public interp::engine::IntrinsicSink {
  public:
    explicit WasabiRuntime(std::shared_ptr<const core::StaticInfo> info);

    /** Register an analysis (not owned; must outlive the runtime).
     * @p name labels the analysis in profile output; empty means
     * "analysis <index>". */
    void addAnalysis(Analysis *analysis, std::string name = "");

    /** Attach a profile collector (not owned; may be null to detach).
     * When attached and enabled, every dispatch is counted and timed
     * per hook kind and attributed per analysis. */
    void setProfiler(obs::ProfileCollector *profiler);

    /** Union of the analyses' hook sets — the set to instrument for. */
    static HookSet
    requiredHooks(std::initializer_list<const Analysis *> analyses);

    /**
     * Bind every hook import into @p linker. Additional (non-hook)
     * imports of the original program can be registered on the same
     * linker before or after.
     */
    void bindHooks(interp::Linker &linker);

    /** Convenience: bind hooks into a fresh linker (merged with
     * @p extra) and instantiate the instrumented module. Validates
     * first that every hook import the module declares has exactly
     * the low-level type the runtime will dispatch with
     * (@throws interp::LinkError otherwise — a mis-typed hook import
     * must fail at link time, not corrupt dispatch later). */
    std::unique_ptr<interp::Instance>
    instantiate(const wasm::Module &instrumented_module,
                const interp::Linker &extra = {});

    /** Shared-module variant (no module copy): the instance shares
     * @p instrumented_module with its other instances — the
     * multi-tenant serving path. */
    std::unique_ptr<interp::Instance>
    instantiate(std::shared_ptr<const wasm::Module> instrumented_module,
                const interp::Linker &extra = {});

    /** The link-time hook-import type check, exposed for callers that
     * bind hooks into their own linker. @throws interp::LinkError */
    void validateHookImports(const wasm::Module &instrumented_module) const;

    /**
     * Engine-intrinsic mode: instantiate the *original* (un-rewritten)
     * module and attach this runtime as the fast engine's hook sink
     * before the start function runs. The runtime's StaticInfo must
     * come from core::buildIntrinsicInfo.
     * @throws std::invalid_argument if the StaticInfo was produced by
     * the rewriting instrumenter, or if @p original_module already
     * carries rewrite-mode hook imports (combining both modes would
     * double-instrument — a usage error, never silent).
     */
    std::unique_ptr<interp::Instance>
    instantiateIntrinsic(const wasm::Module &original_module,
                         const interp::Linker &extra = {});

    /** Shared-module variant of instantiateIntrinsic (no copy). */
    std::unique_ptr<interp::Instance>
    instantiateIntrinsic(std::shared_ptr<const wasm::Module> original_module,
                         const interp::Linker &extra = {});

    /** Attach intrinsic hooks to an existing instance (invalidates its
     * cached fast-engine translations). Same guards as
     * instantiateIntrinsic. */
    void attachIntrinsic(interp::Instance &inst);

    /** Detach intrinsic hooks from @p inst (invalidates translations;
     * subsequent runs execute uninstrumented). */
    void detachIntrinsic(interp::Instance &inst);

    /** Fast-engine hook dispatch (engine-intrinsic mode). */
    void onHook(interp::Instance &inst,
                const interp::engine::HookSite &site,
                std::span<const wasm::Value> top,
                std::span<const wasm::Value> stash) override;

    const core::StaticInfo &info() const { return *info_; }

    /** Number of low-level hook invocations dispatched so far. */
    uint64_t hookInvocations() const { return invocations_; }

  private:
    /** Pre-resolved dispatch state for one low-level hook, computed
     * once at bind time so the per-invocation path is allocation-lean. */
    struct BoundHook {
        core::HookSpec spec;
        /** Logical (unsplit) dynamic argument types. */
        std::vector<wasm::ValType> argTypes;
        /** Raw (wire) parameter count the low-level hook must be
         * called with: 2 location args + the dynamic args with i64s
         * split if the module was instrumented that way. Checked on
         * every dispatch before any raw_args element is read. */
        size_t expectedRawArgs = 2;
    };

    void dispatch(const BoundHook &hook, interp::Instance &inst,
                  std::span<const wasm::Value> raw_args);

    /** Decode raw hook args (after the 2 location args) into logical
     * values, joining (low, high) i64 pairs when splitI64 is on. */
    void decodeArgs(const BoundHook &hook,
                    std::span<const wasm::Value> raw,
                    std::vector<wasm::Value> &out) const;

    /** @throws std::invalid_argument if @p m imports rewrite-mode
     * hooks — combining the two instrumentation modes would fire
     * every hook twice. */
    void requireUnrewritten(const wasm::Module &m) const;

    /** The mode-independent tail of a hook invocation: counts it,
     * times it, and fans out to every subscribed analysis. Both
     * dispatch() (rewrite mode) and onHook() (intrinsic mode) end
     * here, so per-kind accounting is identical across modes. */
    void fire(const core::HookSpec &spec, interp::Instance &inst,
              core::Location loc, std::span<const wasm::Value> dyn);

    std::shared_ptr<const core::StaticInfo> info_;
    std::vector<Analysis *> analyses_;
    std::vector<std::string> analysisNames_;
    std::vector<std::shared_ptr<BoundHook>> bound_;
    uint64_t invocations_ = 0;
    obs::ProfileCollector *profiler_ = nullptr;
};

} // namespace wasabi::runtime

#endif // WASABI_RUNTIME_RUNTIME_H
