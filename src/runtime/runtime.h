/**
 * @file
 * The Wasabi runtime (paper Figure 2, right side): generates one host
 * function per monomorphic low-level hook, decodes its arguments
 * (joining split i64 halves), enriches them with static information
 * (branch targets, instruction immediates, br_table side tables), and
 * dispatches to the high-level hooks of the registered analyses.
 */

#ifndef WASABI_RUNTIME_RUNTIME_H
#define WASABI_RUNTIME_RUNTIME_H

#include <memory>

#include "core/instrument.h"
#include "interp/interpreter.h"
#include "runtime/analysis.h"

namespace wasabi::runtime {

/**
 * Connects an instrumented module with a set of analyses.
 *
 * Typical use:
 * @code
 *   MyAnalysis analysis;
 *   auto r = core::instrument(module,
 *                             WasabiRuntime::requiredHooks({&analysis}));
 *   WasabiRuntime rt(r.info);
 *   rt.addAnalysis(&analysis);
 *   auto inst = rt.instantiate(r.module);
 *   interp::Interpreter().invokeExport(*inst, "main", args);
 * @endcode
 */
class WasabiRuntime {
  public:
    explicit WasabiRuntime(std::shared_ptr<const core::StaticInfo> info);

    /** Register an analysis (not owned; must outlive the runtime). */
    void addAnalysis(Analysis *analysis);

    /** Union of the analyses' hook sets — the set to instrument for. */
    static HookSet
    requiredHooks(std::initializer_list<const Analysis *> analyses);

    /**
     * Bind every hook import into @p linker. Additional (non-hook)
     * imports of the original program can be registered on the same
     * linker before or after.
     */
    void bindHooks(interp::Linker &linker);

    /** Convenience: bind hooks into a fresh linker (merged with
     * @p extra) and instantiate the instrumented module. */
    std::unique_ptr<interp::Instance>
    instantiate(const wasm::Module &instrumented_module,
                const interp::Linker &extra = {});

    const core::StaticInfo &info() const { return *info_; }

    /** Number of low-level hook invocations dispatched so far. */
    uint64_t hookInvocations() const { return invocations_; }

  private:
    /** Pre-resolved dispatch state for one low-level hook, computed
     * once at bind time so the per-invocation path is allocation-lean. */
    struct BoundHook {
        core::HookSpec spec;
        /** Logical (unsplit) dynamic argument types. */
        std::vector<wasm::ValType> argTypes;
    };

    void dispatch(const BoundHook &hook, interp::Instance &inst,
                  std::span<const wasm::Value> raw_args);

    /** Decode raw hook args (after the 2 location args) into logical
     * values, joining (low, high) i64 pairs when splitI64 is on. */
    void decodeArgs(const BoundHook &hook,
                    std::span<const wasm::Value> raw,
                    std::vector<wasm::Value> &out) const;

    std::shared_ptr<const core::StaticInfo> info_;
    std::vector<Analysis *> analyses_;
    std::vector<std::shared_ptr<BoundHook>> bound_;
    uint64_t invocations_ = 0;
};

} // namespace wasabi::runtime

#endif // WASABI_RUNTIME_RUNTIME_H
