#include "runtime/runtime.h"

#include <cassert>
#include <stdexcept>

#include "interp/engine/code.h"

namespace wasabi::runtime {

using core::HookSpec;
using core::StaticInfo;
using interp::Instance;
using interp::Linker;
using wasm::Value;
using wasm::ValType;

WasabiRuntime::WasabiRuntime(std::shared_ptr<const StaticInfo> info)
    : info_(std::move(info))
{
}

void
WasabiRuntime::addAnalysis(Analysis *analysis, std::string name)
{
    analyses_.push_back(analysis);
    analysisNames_.push_back(std::move(name));
    if (profiler_)
        profiler_->setAnalysisNames(analysisNames_);
}

void
WasabiRuntime::setProfiler(obs::ProfileCollector *profiler)
{
    profiler_ = profiler;
    if (profiler_)
        profiler_->setAnalysisNames(analysisNames_);
}

HookSet
WasabiRuntime::requiredHooks(std::initializer_list<const Analysis *> analyses)
{
    HookSet set;
    for (const Analysis *a : analyses)
        set |= a->hooks();
    return set;
}

void
WasabiRuntime::bindHooks(Linker &linker)
{
    for (const HookSpec &spec : info_->hooks) {
        auto bound = std::make_shared<BoundHook>();
        bound->spec = spec;
        // Resolve the logical argument types once; the dispatch path
        // runs per executed instruction and must not recompute them.
        wasm::FuncType logical =
            core::lowLevelType(spec, /*split_i64=*/false);
        bound->argTypes.assign(logical.params.begin() + 2,
                               logical.params.end());
        // Raw arity as dispatched on the wire: the split-i64 type's
        // parameter count. Checked before reading any raw argument.
        bound->expectedRawArgs =
            core::lowLevelType(spec, info_->splitI64).params.size();
        bound_.push_back(bound);
        linker.func(info_->importModule, mangledName(spec),
                    [this, bound](Instance &inst,
                                  std::span<const Value> args,
                                  std::vector<Value> &) {
                        dispatch(*bound, inst, args);
                    });
    }
}

void
WasabiRuntime::validateHookImports(
    const wasm::Module &instrumented_module) const
{
    for (const wasm::Function &f : instrumented_module.functions) {
        if (!f.imported() || f.import->module != info_->importModule)
            continue;
        const core::HookSpec *spec = nullptr;
        for (const core::HookSpec &s : info_->hooks) {
            if (mangledName(s) == f.import->name) {
                spec = &s;
                break;
            }
        }
        if (!spec) {
            throw interp::LinkError(
                "module imports unknown wasabi hook \"" +
                info_->importModule + "." + f.import->name + "\"");
        }
        const wasm::FuncType &declared =
            instrumented_module.types.at(f.typeIdx);
        wasm::FuncType expected =
            core::lowLevelType(*spec, info_->splitI64);
        if (!(declared == expected)) {
            throw interp::LinkError(
                "hook import \"" + info_->importModule + "." +
                f.import->name + "\" has type " + toString(declared) +
                " but the runtime dispatches it as " +
                toString(expected) +
                " (module instrumented with different options?)");
        }
    }
}

std::unique_ptr<Instance>
WasabiRuntime::instantiate(const wasm::Module &instrumented_module,
                           const Linker &extra)
{
    return instantiate(
        std::make_shared<const wasm::Module>(instrumented_module), extra);
}

std::unique_ptr<Instance>
WasabiRuntime::instantiate(
    std::shared_ptr<const wasm::Module> instrumented_module,
    const Linker &extra)
{
    validateHookImports(*instrumented_module);
    Linker linker;
    linker.merge(extra);
    bindHooks(linker);
    return Instance::instantiate(std::move(instrumented_module), linker);
}

void
WasabiRuntime::decodeArgs(const BoundHook &hook,
                          std::span<const Value> raw,
                          std::vector<Value> &out) const
{
    size_t k = 0;
    out.reserve(hook.argTypes.size());
    for (ValType t : hook.argTypes) {
        if (t == ValType::I64 && info_->splitI64) {
            uint64_t lo = raw[k].i32();
            uint64_t hi = raw[k + 1].i32();
            out.push_back(Value::makeI64((hi << 32) | lo));
            k += 2;
        } else {
            // Raw hook params arrive with their wire type; re-tag so
            // analyses see a properly typed Value.
            out.push_back(Value(t, raw[k].bits));
            k += 1;
        }
    }
    assert(k == raw.size());
}

void
WasabiRuntime::dispatch(const BoundHook &hook, Instance &inst,
                        std::span<const Value> raw_args)
{
    const HookSpec &spec = hook.spec;
    // Arity guard before any raw_args element is read: a hook called
    // with the wrong argument count (hand-edited module, stale
    // StaticInfo, mismatched splitI64) must trap with a diagnostic,
    // not read past the caller's argument span.
    if (raw_args.size() != hook.expectedRawArgs) {
        throw interp::Trap(
            interp::TrapKind::HostError,
            "wasabi hook arity mismatch: \"" + mangledName(spec) +
                "\" dispatched with " +
                std::to_string(raw_args.size()) +
                " raw argument(s), expected " +
                std::to_string(hook.expectedRawArgs));
    }
    Location loc{raw_args[0].i32(), raw_args[1].i32()};
    std::vector<Value> dyn;
    decodeArgs(hook, raw_args.subspan(2), dyn);
    fire(spec, inst, loc, dyn);
}

void
WasabiRuntime::fire(const HookSpec &spec, Instance &inst, Location loc,
                    std::span<const Value> dyn)
{
    ++invocations_;
    const bool prof = profiler_ && profiler_->enabled();
    const uint64_t t_begin = prof ? profiler_->now() : 0;

    auto forEach = [this, &spec, prof](HookKind kind, auto &&fn) {
        (void)spec;
        for (size_t i = 0; i < analyses_.size(); ++i) {
            Analysis *a = analyses_[i];
            if (!a->hooks().has(kind))
                continue;
            if (prof) {
                uint64_t t0 = profiler_->now();
                fn(*a);
                profiler_->addAnalysisHook(i, kind,
                                           profiler_->now() - t0);
            } else {
                fn(*a);
            }
        }
    };

    switch (spec.kind) {
      case HookKind::Start:
        forEach(HookKind::Start,
                [&](Analysis &a) { a.onStart(loc); });
        break;
      case HookKind::Nop:
        forEach(HookKind::Nop, [&](Analysis &a) { a.onNop(loc); });
        break;
      case HookKind::Unreachable:
        forEach(HookKind::Unreachable,
                [&](Analysis &a) { a.onUnreachable(loc); });
        break;
      case HookKind::If:
        forEach(HookKind::If, [&](Analysis &a) {
            a.onIf(loc, dyn[0].i32() != 0);
        });
        break;
      case HookKind::Br: {
        core::BranchTarget target =
            info_->brTargets.at(core::packLoc(loc));
        forEach(HookKind::Br,
                [&](Analysis &a) { a.onBr(loc, target); });
        break;
      }
      case HookKind::BrIf: {
        core::BranchTarget target =
            info_->brTargets.at(core::packLoc(loc));
        bool cond = dyn[0].i32() != 0;
        forEach(HookKind::BrIf, [&](Analysis &a) {
            a.onBrIf(loc, target, cond);
        });
        break;
      }
      case HookKind::BrTable: {
        const core::BrTableInfo &table =
            info_->brTables.at(core::packLoc(loc));
        uint32_t index = dyn[0].i32();
        const core::BrTableEntry &selected =
            index < table.cases.size() ? table.cases[index]
                                       : table.defaultCase;
        std::vector<core::BranchTarget> targets;
        targets.reserve(table.cases.size());
        for (const core::BrTableEntry &e : table.cases)
            targets.push_back(e.target);
        forEach(HookKind::BrTable, [&](Analysis &a) {
            a.onBrTable(loc, targets, table.defaultCase.target, index);
        });
        // The blocks left by the selected entry are only known now;
        // fire their end hooks at runtime (paper §2.4.5).
        for (const core::EndedBlock &e : selected.ended) {
            forEach(HookKind::End, [&](Analysis &a) {
                a.onEnd(e.end, e.kind, e.begin);
            });
        }
        break;
      }
      case HookKind::Begin:
        forEach(HookKind::Begin,
                [&](Analysis &a) { a.onBegin(loc, spec.block); });
        break;
      case HookKind::End: {
        Location begin{loc.func, dyn[0].i32()};
        forEach(HookKind::End, [&](Analysis &a) {
            a.onEnd(loc, spec.block, begin);
        });
        break;
      }
      case HookKind::Const:
        forEach(HookKind::Const, [&](Analysis &a) {
            a.onConst(loc, spec.op, dyn[0]);
        });
        break;
      case HookKind::Unary:
        forEach(HookKind::Unary, [&](Analysis &a) {
            a.onUnary(loc, spec.op, dyn[0], dyn[1]);
        });
        break;
      case HookKind::Binary:
        forEach(HookKind::Binary, [&](Analysis &a) {
            a.onBinary(loc, spec.op, dyn[0], dyn[1], dyn[2]);
        });
        break;
      case HookKind::Drop:
        forEach(HookKind::Drop,
                [&](Analysis &a) { a.onDrop(loc, dyn[0]); });
        break;
      case HookKind::Select:
        forEach(HookKind::Select, [&](Analysis &a) {
            a.onSelect(loc, dyn[0].i32() != 0, dyn[1], dyn[2]);
        });
        break;
      case HookKind::Local: {
        uint32_t index = info_->instrAt(loc).imm.idx;
        forEach(HookKind::Local, [&](Analysis &a) {
            a.onLocal(loc, spec.op, index, dyn[0]);
        });
        break;
      }
      case HookKind::Global: {
        uint32_t index = info_->instrAt(loc).imm.idx;
        forEach(HookKind::Global, [&](Analysis &a) {
            a.onGlobal(loc, spec.op, index, dyn[0]);
        });
        break;
      }
      case HookKind::Load: {
        MemArg memarg{dyn[0].i32(), info_->instrAt(loc).imm.mem.offset};
        forEach(HookKind::Load, [&](Analysis &a) {
            a.onLoad(loc, spec.op, memarg, dyn[1]);
        });
        break;
      }
      case HookKind::Store: {
        MemArg memarg{dyn[0].i32(), info_->instrAt(loc).imm.mem.offset};
        forEach(HookKind::Store, [&](Analysis &a) {
            a.onStore(loc, spec.op, memarg, dyn[1]);
        });
        break;
      }
      case HookKind::MemorySize:
        forEach(HookKind::MemorySize, [&](Analysis &a) {
            a.onMemorySize(loc, dyn[0].i32());
        });
        break;
      case HookKind::MemoryGrow:
        forEach(HookKind::MemoryGrow, [&](Analysis &a) {
            a.onMemoryGrow(loc, dyn[0].i32(), dyn[1].i32());
        });
        break;
      case HookKind::Call: {
        if (spec.post) {
            forEach(HookKind::Call, [&](Analysis &a) {
                a.onCallPost(loc, dyn);
            });
            break;
        }
        uint32_t func = 0;
        std::optional<uint32_t> table_index;
        std::span<const Value> args(dyn);
        if (spec.indirect) {
            uint32_t idx = dyn[0].i32();
            table_index = idx;
            args = args.subspan(1);
            // Resolve the runtime table index to the actually called
            // function, reported in the original index space (§2.3).
            func = Analysis::kUnresolvedFunc;
            if (idx < inst.table().size()) {
                if (std::optional<uint32_t> f = inst.table().get(idx))
                    func = info_->unmapFuncIdx(*f);
            }
        } else {
            // A direct call_pre hook can also sit at a plan-narrowed
            // call_indirect site: it carries no table-index argument,
            // but the plan proved the constant index and the unique
            // target statically (imm.idx would be a type index there).
            const core::HookOptimizationPlan::CallTargetClaim *claim =
                nullptr;
            if (info_->optimization) {
                auto it = info_->optimization->constCallTargets.find(
                    core::packLoc(loc));
                if (it != info_->optimization->constCallTargets.end())
                    claim = &it->second;
            }
            if (claim) {
                func = claim->target;
                table_index = claim->tableIndex;
            } else {
                func = info_->instrAt(loc).imm.idx;
            }
        }
        forEach(HookKind::Call, [&](Analysis &a) {
            a.onCallPre(loc, func, args, table_index);
        });
        break;
      }
      case HookKind::Return:
        forEach(HookKind::Return,
                [&](Analysis &a) { a.onReturn(loc, dyn); });
        break;
    }

    if (prof)
        profiler_->addDispatch(spec.kind, profiler_->now() - t_begin);
}

// ----- engine-intrinsic mode (DESIGN.md §13) ---------------------------

void
WasabiRuntime::onHook(Instance &inst, const interp::engine::HookSite &site,
                      std::span<const Value> top,
                      std::span<const Value> stash)
{
    // The hook stream must be byte-identical to rewrite mode: the same
    // HookSpec, location, and dynamic-argument order the instrumenter
    // would have arranged for the monomorphic low-level hook call.
    HookSpec spec;
    spec.kind = site.kind;
    spec.op = site.op;
    spec.indirect = site.indirect;
    spec.post = site.post;
    spec.block = site.block;

    // End hooks of blocks left by a taken branch: rewrite mode emits
    // one low-level call per traversed frame, after the branch's own
    // hook, so each is its own fire() (its own invocation).
    auto fireEnds = [&] {
        for (const core::EndedBlock &e : site.ended) {
            HookSpec end;
            end.kind = HookKind::End;
            end.block = e.kind;
            const Value begin = Value::makeI32(e.begin.instr);
            fire(end, inst, e.end, std::span<const Value>(&begin, 1));
        }
    };

    switch (site.kind) {
      case HookKind::Br:
        if (info_->instrumentedHooks.has(HookKind::Br))
            fire(spec, inst, site.loc, {});
        fireEnds();
        return;
      case HookKind::BrIf:
        if (info_->instrumentedHooks.has(HookKind::BrIf))
            fire(spec, inst, site.loc, top);
        if (top[0].i32() != 0)
            fireEnds(); // end hooks fire only if the branch is taken
        return;
      case HookKind::Return:
        if (info_->instrumentedHooks.has(HookKind::Return))
            fire(spec, inst, site.loc, top);
        fireEnds();
        return;
      case HookKind::BrTable:
        // One dispatch, like rewrite mode: the ends of the selected
        // entry come from the br_table side table inside fire().
        fire(spec, inst, site.loc, top);
        return;
      case HookKind::End: {
        const Value begin = Value::makeI32(site.index);
        fire(spec, inst, site.loc, std::span<const Value>(&begin, 1));
        return;
      }
      case HookKind::Call: {
        if (site.post || !site.indirect) {
            fire(spec, inst, site.loc, top);
            return;
        }
        // call_indirect pre: the table index (stack top) is the first
        // dynamic argument, then the call arguments in order.
        std::vector<Value> dyn;
        dyn.reserve(top.size());
        dyn.push_back(top.back());
        dyn.insert(dyn.end(), top.begin(), top.end() - 1);
        fire(spec, inst, site.loc, dyn);
        return;
      }
      case HookKind::Load: {
        const Value dyn[2] = {stash[0], top[0]}; // (addr, value)
        fire(spec, inst, site.loc, std::span<const Value>(dyn, 2));
        return;
      }
      case HookKind::Store: {
        const Value dyn[2] = {stash[0], stash[1]}; // (addr, value)
        fire(spec, inst, site.loc, std::span<const Value>(dyn, 2));
        return;
      }
      case HookKind::MemoryGrow: {
        const Value dyn[2] = {stash[0], top[0]}; // (delta, prev)
        fire(spec, inst, site.loc, std::span<const Value>(dyn, 2));
        return;
      }
      case HookKind::Select: {
        // (cond, first, second); the stash holds [first, second, cond].
        const Value dyn[3] = {stash[2], stash[0], stash[1]};
        fire(spec, inst, site.loc, std::span<const Value>(dyn, 3));
        return;
      }
      case HookKind::Unary: {
        const Value dyn[2] = {stash[0], top[0]}; // (input, result)
        fire(spec, inst, site.loc, std::span<const Value>(dyn, 2));
        return;
      }
      case HookKind::Binary: {
        const Value dyn[3] = {stash[0], stash[1], top[0]};
        fire(spec, inst, site.loc, std::span<const Value>(dyn, 3));
        return;
      }
      case HookKind::Local:
      case HookKind::Global:
        // get/tee observe the pushed result; set observes the stashed
        // operand (already popped by the time the hook runs).
        fire(spec, inst, site.loc, site.peek != 0 ? top : stash);
        return;
      default:
        // Start, Nop, Unreachable, If, Begin, Const, Drop, MemorySize:
        // the stack-top span is exactly the dynamic argument list.
        fire(spec, inst, site.loc, top);
        return;
    }
}

void
WasabiRuntime::attachIntrinsic(Instance &inst)
{
    if (!info_->hooks.empty()) {
        throw std::invalid_argument(
            "wasabi: this StaticInfo was produced by the rewriting "
            "instrumenter (it declares low-level hook imports); "
            "engine-intrinsic mode needs core::buildIntrinsicInfo — "
            "combining both modes would instrument every site twice");
    }
    requireUnrewritten(inst.module());
    inst.engineCode().setIntrinsicHooks(info_->instrumentedHooks, this);
}

void
WasabiRuntime::detachIntrinsic(Instance &inst)
{
    inst.engineCode().setIntrinsicHooks(HookSet{}, nullptr);
}

void
WasabiRuntime::requireUnrewritten(const wasm::Module &m) const
{
    for (const wasm::Function &f : m.functions) {
        if (f.imported() && f.import->module == info_->importModule) {
            throw std::invalid_argument(
                "wasabi: module already imports rewrite-mode hooks (\"" +
                info_->importModule + "." + f.import->name +
                "\"); attaching engine-intrinsic hooks on top would "
                "fire every hook twice — choose one instrumentation "
                "mode");
        }
    }
}

std::unique_ptr<Instance>
WasabiRuntime::instantiateIntrinsic(const wasm::Module &original_module,
                                    const Linker &extra)
{
    return instantiateIntrinsic(
        std::make_shared<const wasm::Module>(original_module), extra);
}

std::unique_ptr<Instance>
WasabiRuntime::instantiateIntrinsic(
    std::shared_ptr<const wasm::Module> original_module,
    const Linker &extra)
{
    // A rewrite-instrumented module must be rejected up front — its
    // unresolved hook imports would otherwise surface as a confusing
    // LinkError before attachIntrinsic could diagnose the real error.
    requireUnrewritten(*original_module);
    // Attach before the start function runs so its hooks are observed,
    // matching rewrite mode (whose hooks are imports, live from the
    // first instruction).
    return Instance::instantiate(
        std::move(original_module), extra,
        [this](Instance &inst) { attachIntrinsic(inst); });
}

} // namespace wasabi::runtime
