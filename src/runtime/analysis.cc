#include "runtime/analysis.h"

namespace wasabi::runtime {

// All hooks default to no-ops so analyses override only what they
// need; out-of-line definitions anchor the vtable here.

Analysis::~Analysis() = default;

void Analysis::onStart(Location) {}
void Analysis::onNop(Location) {}
void Analysis::onUnreachable(Location) {}
void Analysis::onIf(Location, bool) {}
void Analysis::onBr(Location, BranchTarget) {}
void Analysis::onBrIf(Location, BranchTarget, bool) {}
void
Analysis::onBrTable(Location, std::span<const BranchTarget>, BranchTarget,
                    uint32_t)
{
}
void Analysis::onBegin(Location, BlockKind) {}
void Analysis::onEnd(Location, BlockKind, Location) {}
void Analysis::onConst(Location, wasm::Opcode, wasm::Value) {}
void Analysis::onUnary(Location, wasm::Opcode, wasm::Value, wasm::Value) {}
void
Analysis::onBinary(Location, wasm::Opcode, wasm::Value, wasm::Value,
                   wasm::Value)
{
}
void Analysis::onDrop(Location, wasm::Value) {}
void Analysis::onSelect(Location, bool, wasm::Value, wasm::Value) {}
void Analysis::onLocal(Location, wasm::Opcode, uint32_t, wasm::Value) {}
void Analysis::onGlobal(Location, wasm::Opcode, uint32_t, wasm::Value) {}
void Analysis::onLoad(Location, wasm::Opcode, MemArg, wasm::Value) {}
void Analysis::onStore(Location, wasm::Opcode, MemArg, wasm::Value) {}
void Analysis::onMemorySize(Location, uint32_t) {}
void Analysis::onMemoryGrow(Location, uint32_t, uint32_t) {}
void
Analysis::onCallPre(Location, uint32_t, std::span<const wasm::Value>,
                    std::optional<uint32_t>)
{
}
void Analysis::onCallPost(Location, std::span<const wasm::Value>) {}
void Analysis::onReturn(Location, std::span<const wasm::Value>) {}

} // namespace wasabi::runtime
