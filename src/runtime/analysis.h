/**
 * @file
 * The high-level analysis API — the C++ rendition of the paper's
 * Table 2. An analysis implements a subset of the 23 hooks; the
 * WasabiRuntime invokes them with pre-computed information (resolved
 * branch targets, resolved indirect-call targets, joined i64 values,
 * instruction mnemonics) so that analysis authors never deal with
 * low-level encoding details.
 */

#ifndef WASABI_RUNTIME_ANALYSIS_H
#define WASABI_RUNTIME_ANALYSIS_H

#include <span>
#include <vector>

#include "core/static_info.h"

namespace wasabi::runtime {

using core::BlockKind;
using core::BranchTarget;
using core::HookKind;
using core::HookSet;
using core::Location;

/** Dynamic memory argument of a load/store: the runtime address
 * operand plus the static offset immediate (paper Table 2: memarg). */
struct MemArg {
    uint32_t addr = 0;
    uint32_t offset = 0;

    /** The effective (linear memory) address of the access. */
    uint64_t
    effective() const
    {
        return static_cast<uint64_t>(addr) + offset;
    }
};

/**
 * Base class for dynamic analyses. Override the hooks you need and
 * report them from hooks(); selective instrumentation uses exactly
 * that set (paper §2.4.2), so unimplemented hooks cost nothing.
 *
 * Hooks execute synchronously while the analyzed program runs; they
 * must not invoke the interpreter on the same instance.
 */
class Analysis {
  public:
    virtual ~Analysis();

    /** The hook kinds this analysis implements. */
    virtual HookSet hooks() const = 0;

    /** Called when the module's start function begins executing. */
    virtual void onStart(Location loc);

    virtual void onNop(Location loc);
    virtual void onUnreachable(Location loc);

    /** `if` condition observation (block entry is onBegin). */
    virtual void onIf(Location loc, bool condition);

    virtual void onBr(Location loc, BranchTarget target);
    virtual void onBrIf(Location loc, BranchTarget target,
                        bool condition);
    virtual void onBrTable(Location loc,
                           std::span<const BranchTarget> table,
                           BranchTarget default_target, uint32_t index);

    /** Block entry: kind distinguishes function/block/loop/if/else. */
    virtual void onBegin(Location loc, BlockKind kind);

    /** Block exit; @p begin is the location of the matching begin
     * (instr == core::kFunctionEntry for the function block). */
    virtual void onEnd(Location loc, BlockKind kind, Location begin);

    virtual void onConst(Location loc, wasm::Opcode op, wasm::Value value);
    virtual void onUnary(Location loc, wasm::Opcode op, wasm::Value input,
                         wasm::Value result);
    virtual void onBinary(Location loc, wasm::Opcode op, wasm::Value first,
                          wasm::Value second, wasm::Value result);
    virtual void onDrop(Location loc, wasm::Value value);
    virtual void onSelect(Location loc, bool condition, wasm::Value first,
                          wasm::Value second);

    /** op is local.get/local.set/local.tee. */
    virtual void onLocal(Location loc, wasm::Opcode op, uint32_t index,
                         wasm::Value value);
    /** op is global.get/global.set. */
    virtual void onGlobal(Location loc, wasm::Opcode op, uint32_t index,
                          wasm::Value value);

    virtual void onLoad(Location loc, wasm::Opcode op, MemArg memarg,
                        wasm::Value value);
    virtual void onStore(Location loc, wasm::Opcode op, MemArg memarg,
                         wasm::Value value);
    virtual void onMemorySize(Location loc, uint32_t current_pages);
    virtual void onMemoryGrow(Location loc, uint32_t delta,
                              uint32_t previous_pages);

    /**
     * Before a call. @p func is the callee in the *original* module's
     * function index space (indirect calls are resolved through the
     * table, paper §2.3); @p table_index is set iff the call is
     * indirect. An unresolvable indirect target (about to trap) is
     * reported as kUnresolvedFunc.
     */
    virtual void onCallPre(Location loc, uint32_t func,
                           std::span<const wasm::Value> args,
                           std::optional<uint32_t> table_index);
    virtual void onCallPost(Location loc,
                            std::span<const wasm::Value> results);
    virtual void onReturn(Location loc,
                          std::span<const wasm::Value> results);

    /** Callee reported when an indirect call target cannot be
     * resolved (the call traps immediately afterwards). */
    static constexpr uint32_t kUnresolvedFunc = 0xFFFFFFFF;
};

} // namespace wasabi::runtime

#endif // WASABI_RUNTIME_ANALYSIS_H
