/**
 * @file
 * The `wasabi` command-line tool — the reproduction's equivalent of
 * the original project's CLI (`wasabi input.wasm`), extended with an
 * execution mode since this repository ships its own engine.
 *
 *   wasabi validate  <in.wasm>
 *   wasabi dump      <in.wasm>
 *   wasabi instrument <in.wasm> <out.wasm> [--hooks=h1,h2|all]
 *                     [--threads=N] [--no-split-i64]
 *                     [--optimize-hooks] [--manifest-out=FILE]
 *   wasabi run       <in.wasm> [--entry=name] [--analysis=NAME]
 *                     [--arg=i32:N ...]
 *   wasabi gen       <polybench:NAME[:N] | random:SEED | app:SIZE>
 *                     <out.wasm>
 *   wasabi opt       <in.wasm> --out=FILE [--passes=p1,p2|all]
 *                     [--manifest-out=FILE] [--json[=FILE]]
 *                     [--no-verify]
 *   wasabi check     <orig.wasm> <instrumented.wasm> [--hooks=...]
 *                     [--no-split-i64] [--import-module=NAME]
 *                     [--no-side-tables] [--manifest=FILE] [--json]
 *                     (an opt manifest routes to the optimization
 *                     checker: <orig.wasm> <optimized.wasm>)
 *   wasabi lint      <in.wasm> [--json]
 *   wasabi analyze   <in.wasm> [--json] [--summaries] [--ranges]
 *                     [--manifest-out=FILE] [--threads=N]
 *                     [--dot=callgraph|refined|cfg:FUNC|ranges:FUNC]
 *   wasabi profile   <in.wasm> [--analysis=NAME] [--hooks=...]
 *                     [--entry=NAME] [--arg=...] [--threads=N]
 *                     [--json] [--deterministic] [--out=FILE]
 *                     [--trace-out=FILE]
 *   wasabi profile   --check=FILE
 *   wasabi serve     --socket=PATH | --request=FILE|- [--clients=N]
 *   wasabi help      [<command>]
 *   wasabi --version
 *
 * Analyses: mix, blocks, icov, branch, callgraph, taint, miner, mem.
 *
 * Exit codes: 0 success / no findings, 1 runtime error or invalid
 * module, 2 usage error, 3 `check`/`lint` found findings.
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <thread>
#include <unordered_set>

#include "analyses/instruction_mix.h"
#include "analyses/registry.h"
#include "core/instrument.h"
#include "core/intrinsic_info.h"
#include "interp/engine/code.h"
#include "interp/interpreter.h"
#include "obs/profile.h"
#include "static/analyze.h"
#include "static/check.h"
#include "static/interproc/ipcp.h"
#include "static/passes/pipeline.h"
#include "static/passes/range.h"
#include "static/rewrite/opt.h"
#include "static/rewrite/rewrite.h"
#include "runtime/runtime.h"
#include "serve/server.h"
#include "serve/socket.h"
#include "support/file_io.h"
#include "support/module_io.h"
#include "wasm/decoder.h"
#include "wasm/encoder.h"
#include "wasm/name_section.h"
#include "wasm/printer.h"
#include "wasm/validator.h"
#include "wasm/wat_parser.h"
#include "workloads/polybench.h"
#include "workloads/random_program.h"
#include "workloads/synthetic_app.h"

using namespace wasabi;

// Injected by the build (tools/CMakeLists.txt) from project(VERSION).
#ifndef WASABI_VERSION
#define WASABI_VERSION "unknown"
#endif

namespace {

/** Bad invocation (missing operands) — exits 2, not 1. */
struct UsageError : std::runtime_error {
    using std::runtime_error::runtime_error;
};

// Thin wrappers over the checked I/O layer (support/file_io.h), kept
// so the many call sites below read unchanged. Every write verifies
// the stream after write+flush+close (a full disk or EIO surfaces as
// a structured IoError and exit 1, never a silently truncated
// artifact with exit 0), and module loading reports directories,
// empty files, and truncated binaries precisely instead of falling
// through to a baffling WAT parse error.

std::vector<uint8_t>
readFile(const std::string &path)
{
    return support::readBinaryFile(path);
}

void
writeFile(const std::string &path, const std::vector<uint8_t> &bytes)
{
    support::writeBinaryFile(path, bytes);
}

void
writeTextFile(const std::string &path, const std::string &text)
{
    support::writeTextFile(path, text);
}

/** Load a module from .wasm binary or .wat text (by content). */
wasm::Module
loadModule(const std::string &path)
{
    return support::loadModuleFromFile(path);
}

core::HookSet
parseHooks(const std::string &spec)
{
    if (spec == "all" || spec.empty())
        return core::HookSet::all();
    core::HookSet set;
    size_t pos = 0;
    while (pos < spec.size()) {
        size_t comma = spec.find(',', pos);
        std::string name = spec.substr(pos, comma - pos);
        bool found = false;
        for (int i = 0; i < core::kNumHookKinds; ++i) {
            auto kind = static_cast<core::HookKind>(i);
            if (name == core::name(kind)) {
                set.add(kind);
                found = true;
            }
        }
        if (!found)
            throw std::runtime_error("unknown hook kind: " + name);
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return set;
}

interp::EngineKind
parseEngine(const std::string &spec)
{
    if (spec == "fast")
        return interp::EngineKind::Fast;
    if (spec == "legacy")
        return interp::EngineKind::Legacy;
    throw UsageError("unknown engine '" + spec +
                     "' (expected fast or legacy)");
}

/** How hooks reach the runtime (DESIGN.md §13). */
enum class InstrumentMode {
    Rewrite,  ///< binary rewriting + hook imports (the paper's design)
    Intrinsic ///< fast engine dispatches hooks from its inner loop
};

InstrumentMode
parseInstrumentMode(const std::string &spec)
{
    if (spec == "rewrite")
        return InstrumentMode::Rewrite;
    if (spec == "intrinsic")
        return InstrumentMode::Intrinsic;
    throw UsageError("unknown instrument mode '" + spec +
                     "' (expected rewrite or intrinsic)");
}

const char *
name(InstrumentMode mode)
{
    return mode == InstrumentMode::Rewrite ? "rewrite" : "intrinsic";
}

int
cmdValidate(const std::string &path)
{
    wasm::Module m = loadModule(path);
    if (auto err = wasm::validationError(m)) {
        std::printf("INVALID: %s\n", err->c_str());
        return 1;
    }
    std::printf("OK: %u functions, %zu instructions, %zu types\n",
                m.numFunctions(), m.numInstructions(), m.types.size());
    return 0;
}

int
cmdDump(const std::string &path)
{
    wasm::Module m = loadModule(path);
    std::fputs(wasm::toString(m).c_str(), stdout);
    return 0;
}

int
cmdInstrument(const std::vector<std::string> &args)
{
    std::string in_path, out_path, hooks = "all", manifest_out;
    std::string profile_out;
    bool optimize = false, profile = false;
    core::InstrumentOptions opts;
    for (const std::string &a : args) {
        if (a.rfind("--hooks=", 0) == 0)
            hooks = a.substr(8);
        else if (a.rfind("--threads=", 0) == 0)
            opts.numThreads =
                static_cast<unsigned>(std::stoul(a.substr(10)));
        else if (a == "--no-split-i64")
            opts.splitI64 = false;
        else if (a == "--optimize-hooks")
            optimize = true;
        else if (a.rfind("--manifest-out=", 0) == 0)
            manifest_out = a.substr(15);
        else if (a == "--profile")
            profile = true;
        else if (a.rfind("--profile-out=", 0) == 0)
            profile_out = a.substr(14);
        else if (in_path.empty())
            in_path = a;
        else
            out_path = a;
    }
    if (in_path.empty() || out_path.empty())
        throw UsageError("usage: instrument <in> <out> [opts]");
    if (!manifest_out.empty() && !optimize)
        throw UsageError(
            "--manifest-out requires --optimize-hooks");
    obs::ProfileCollector collector(profile || !profile_out.empty());
    wasm::Module m = [&] {
        obs::ProfileCollector::ScopedPhase p(&collector, "decode");
        return loadModule(in_path);
    }();
    core::HookOptimizationPlan plan;
    if (optimize) {
        if (auto err = wasm::validationError(m))
            throw std::runtime_error(
                "--optimize-hooks needs a valid module: " + *err);
        plan = static_analysis::passes::computePlan(m);
        opts.plan = &plan;
    }
    core::InstrumentResult r = [&] {
        obs::ProfileCollector::ScopedPhase p(&collector, "instrument");
        return core::instrument(m, parseHooks(hooks), opts);
    }();
    collector.recordInstrumentation(r.stats);
    std::vector<uint8_t> out = [&] {
        obs::ProfileCollector::ScopedPhase p(&collector, "encode");
        return wasm::encodeModule(r.module);
    }();
    writeFile(out_path, out);
    std::printf("instrumented %s -> %s\n", in_path.c_str(),
                out_path.c_str());
    std::printf("  hooks generated: %zu (on-demand monomorphization)\n",
                r.info->hooks.size());
    std::printf("  size: %zu -> %zu bytes (%.1f%%)\n",
                readFile(in_path).size(), out.size(),
                100.0 * out.size() / readFile(in_path).size());
    if (optimize) {
        std::printf("  optimization plan: %zu skips, %zu dead "
                    "functions, %zu narrowed br_tables, %zu narrowed "
                    "call_indirects, %zu elided blocks\n",
                    plan.skips.size(), plan.deadFunctions.size(),
                    plan.constBrTableIndex.size(),
                    plan.constCallTargets.size(),
                    plan.elidedBegins.size());
        if (!manifest_out.empty()) {
            writeTextFile(manifest_out,
                          static_analysis::passes::planToManifest(plan));
            std::printf("  manifest: %s (verify with `wasabi check "
                        "--manifest=%s`)\n",
                        manifest_out.c_str(), manifest_out.c_str());
        }
    }
    if (!profile_out.empty())
        writeTextFile(profile_out, collector.toJson());
    else if (profile)
        std::fputs(collector.toText().c_str(), stdout);
    return 0;
}

// Analysis construction and report rendering live in the shared
// registry (analyses/registry.h), used identically by the serve
// daemon.

std::unique_ptr<runtime::Analysis>
makeAnalysis(const std::string &name)
{
    return analyses::makeAnalysis(name);
}

void
printReport(const std::string &name, runtime::Analysis &a,
            const wasm::Module &m)
{
    std::fputs(analyses::analysisReport(name, a, m).c_str(), stdout);
}

/**
 * License bounds-check elision on @p inst's fast-engine code for the
 * range-claim set of @p m: either re-proved from @p manifest_path
 * (claims are never trusted — an unprovable claim is a hard error,
 * since an unchecked access it licensed would be undefined behavior)
 * or derived in-process when the path is empty.
 */
void
applyElisions(const wasm::Module &m, const std::string &manifest_path,
              interp::Instance &inst, interp::EngineKind engine)
{
    if (engine != interp::EngineKind::Fast)
        throw std::runtime_error(
            "bounds-check elision requires --engine=fast");
    static_analysis::passes::RangeClaims claims;
    if (!manifest_path.empty()) {
        std::vector<uint8_t> bytes = readFile(manifest_path);
        std::string text(bytes.begin(), bytes.end());
        std::string error;
        if (!static_analysis::passes::rangeClaimsFromManifest(
                text, &claims, &error))
            throw std::runtime_error("malformed range manifest " +
                                     manifest_path + ": " + error);
        static_analysis::Diagnostics diags =
            static_analysis::passes::checkRangeClaims(m, claims);
        if (!diags.empty())
            throw std::runtime_error(
                "range manifest rejected (claims must re-prove "
                "against the module actually executed):\n" +
                static_analysis::toString(diags));
    } else {
        claims = static_analysis::passes::provableRangeClaims(
            static_analysis::passes::moduleRanges(m));
    }
    std::unordered_set<uint64_t> locs;
    locs.reserve(claims.claims.size());
    for (const static_analysis::passes::RangeClaim &c : claims.claims)
        locs.insert(core::packLoc({c.func, c.instr}));
    inst.engineCode().setElisions(std::move(locs));
}

int
cmdRun(const std::vector<std::string> &args)
{
    std::string path, entry = "main", analysis = "mix", profile_out;
    std::string elide_manifest;
    bool profile = false, elide = false;
    interp::EngineKind engine = interp::EngineKind::Fast;
    InstrumentMode mode = InstrumentMode::Rewrite;
    std::vector<wasm::Value> call_args;
    for (const std::string &a : args) {
        if (a.rfind("--entry=", 0) == 0) {
            entry = a.substr(8);
        } else if (a.rfind("--analysis=", 0) == 0) {
            analysis = a.substr(11);
        } else if (a.rfind("--engine=", 0) == 0) {
            engine = parseEngine(a.substr(9));
        } else if (a.rfind("--instrument-mode=", 0) == 0) {
            mode = parseInstrumentMode(a.substr(18));
        } else if (a == "--profile") {
            profile = true;
        } else if (a.rfind("--profile-out=", 0) == 0) {
            profile_out = a.substr(14);
        } else if (a == "--elide-bounds-checks") {
            elide = true;
        } else if (a.rfind("--elide-manifest=", 0) == 0) {
            elide_manifest = a.substr(17);
        } else if (a.rfind("--arg=i32:", 0) == 0) {
            call_args.push_back(wasm::Value::makeI32(
                static_cast<uint32_t>(std::stoll(a.substr(10)))));
        } else if (a.rfind("--arg=i64:", 0) == 0) {
            call_args.push_back(wasm::Value::makeI64(
                static_cast<uint64_t>(std::stoll(a.substr(10)))));
        } else if (a.rfind("--arg=f64:", 0) == 0) {
            call_args.push_back(
                wasm::Value::makeF64(std::stod(a.substr(10))));
        } else {
            path = a;
        }
    }
    if (path.empty())
        throw UsageError("usage: run <in.wasm> [opts]");
    if (mode == InstrumentMode::Intrinsic &&
        engine == interp::EngineKind::Legacy)
        throw UsageError("--instrument-mode=intrinsic requires "
                         "--engine=fast (the legacy walker cannot "
                         "dispatch intrinsic hooks)");
    obs::ProfileCollector collector(profile || !profile_out.empty());
    collector.setInstrumentMode(name(mode));
    wasm::Module m = [&] {
        obs::ProfileCollector::ScopedPhase p(&collector, "decode");
        return loadModule(path);
    }();
    auto a = makeAnalysis(analysis);
    core::HookSet hook_set =
        runtime::WasabiRuntime::requiredHooks({a.get()});
    core::InstrumentResult r; // rewrite mode only
    std::shared_ptr<const core::StaticInfo> info;
    if (mode == InstrumentMode::Intrinsic) {
        obs::ProfileCollector::ScopedPhase p(&collector, "instrument");
        info = core::buildIntrinsicInfo(m, hook_set);
    } else {
        obs::ProfileCollector::ScopedPhase p(&collector, "instrument");
        r = core::instrument(m, hook_set);
        collector.recordInstrumentation(r.stats);
        info = r.info;
    }
    runtime::WasabiRuntime rt(info);
    rt.addAnalysis(a.get(), analysis);
    if (collector.enabled())
        rt.setProfiler(&collector);
    auto inst = mode == InstrumentMode::Intrinsic
                    ? rt.instantiateIntrinsic(m)
                    : rt.instantiate(r.module);
    const wasm::Module &exec_module =
        mode == InstrumentMode::Intrinsic ? m : r.module;
    if (elide || !elide_manifest.empty())
        applyElisions(exec_module, elide_manifest, *inst, engine);
    interp::Interpreter interp;
    interp.engine = engine;
    auto results = [&] {
        obs::ProfileCollector::ScopedPhase p(&collector, "execute");
        return interp.invokeExport(*inst, entry, call_args);
    }();
    const interp::ExecStats &es = interp.stats();
    collector.setInterpCounters(obs::InterpCounters{
        es.instructions, es.calls, es.memoryOps, es.memoryOpsElided,
        es.traps});
    std::printf("%s(", entry.c_str());
    for (size_t i = 0; i < call_args.size(); ++i)
        std::printf("%s%s", i ? ", " : "",
                    toString(call_args[i]).c_str());
    std::printf(") = ");
    for (const wasm::Value &v : results)
        std::printf("%s ", toString(v).c_str());
    std::printf("\n\n--- %s analysis ---\n", analysis.c_str());
    printReport(analysis, *a, m);
    if (!profile_out.empty())
        writeTextFile(profile_out, collector.toJson());
    else if (profile)
        std::fputs(collector.toText().c_str(), stdout);
    return 0;
}

int
cmdProfile(const std::vector<std::string> &args)
{
    std::string path, entry, analysis = "mix", out_path, trace_out;
    std::string check_path, elide_manifest;
    bool json = false, deterministic = false, elide = false;
    interp::EngineKind engine = interp::EngineKind::Fast;
    InstrumentMode mode = InstrumentMode::Rewrite;
    core::InstrumentOptions iopts;
    std::string hooks;
    std::vector<wasm::Value> call_args;
    for (const std::string &a : args) {
        if (a.rfind("--entry=", 0) == 0)
            entry = a.substr(8);
        else if (a.rfind("--analysis=", 0) == 0)
            analysis = a.substr(11);
        else if (a.rfind("--engine=", 0) == 0)
            engine = parseEngine(a.substr(9));
        else if (a.rfind("--instrument-mode=", 0) == 0)
            mode = parseInstrumentMode(a.substr(18));
        else if (a.rfind("--hooks=", 0) == 0)
            hooks = a.substr(8);
        else if (a.rfind("--threads=", 0) == 0)
            iopts.numThreads =
                static_cast<unsigned>(std::stoul(a.substr(10)));
        else if (a == "--json")
            json = true;
        else if (a == "--deterministic")
            deterministic = true;
        else if (a.rfind("--out=", 0) == 0)
            out_path = a.substr(6);
        else if (a.rfind("--trace-out=", 0) == 0)
            trace_out = a.substr(12);
        else if (a.rfind("--check=", 0) == 0)
            check_path = a.substr(8);
        else if (a == "--elide-bounds-checks")
            elide = true;
        else if (a.rfind("--elide-manifest=", 0) == 0)
            elide_manifest = a.substr(17);
        else if (a.rfind("--arg=i32:", 0) == 0)
            call_args.push_back(wasm::Value::makeI32(
                static_cast<uint32_t>(std::stoll(a.substr(10)))));
        else if (a.rfind("--arg=i64:", 0) == 0)
            call_args.push_back(wasm::Value::makeI64(
                static_cast<uint64_t>(std::stoll(a.substr(10)))));
        else if (a.rfind("--arg=f64:", 0) == 0)
            call_args.push_back(
                wasm::Value::makeF64(std::stod(a.substr(10))));
        else
            path = a;
    }

    // Validation mode: check an existing profile JSON against the
    // schema and exit.
    if (!check_path.empty()) {
        std::vector<uint8_t> bytes = readFile(check_path);
        std::string error;
        if (!obs::validateProfileJson(
                std::string(bytes.begin(), bytes.end()), &error)) {
            std::fprintf(stderr, "%s: %s\n", check_path.c_str(),
                         error.c_str());
            return 1;
        }
        std::printf("%s: valid %s v%d\n", check_path.c_str(),
                    obs::kProfileSchemaName, obs::kProfileSchemaVersion);
        return 0;
    }

    if (path.empty())
        throw UsageError(
            "usage: profile <in.wasm> [opts] | profile --check=FILE");
    if (mode == InstrumentMode::Intrinsic &&
        engine == interp::EngineKind::Legacy)
        throw UsageError("--instrument-mode=intrinsic requires "
                         "--engine=fast (the legacy walker cannot "
                         "dispatch intrinsic hooks)");
    obs::ProfileCollector collector;
    collector.setInstrumentMode(name(mode));
    wasm::Module m = [&] {
        obs::ProfileCollector::ScopedPhase p(&collector, "decode");
        return loadModule(path);
    }();
    auto a = makeAnalysis(analysis);
    core::HookSet hook_set =
        hooks.empty() ? runtime::WasabiRuntime::requiredHooks({a.get()})
                      : parseHooks(hooks);
    core::InstrumentResult r; // rewrite mode only
    std::shared_ptr<const core::StaticInfo> info;
    if (mode == InstrumentMode::Intrinsic) {
        obs::ProfileCollector::ScopedPhase p(&collector, "instrument");
        info = core::buildIntrinsicInfo(m, hook_set);
    } else {
        obs::ProfileCollector::ScopedPhase p(&collector, "instrument");
        r = core::instrument(m, hook_set, iopts);
        collector.recordInstrumentation(r.stats);
        info = r.info;
    }
    runtime::WasabiRuntime rt(info);
    rt.addAnalysis(a.get(), analysis);
    rt.setProfiler(&collector);
    auto inst = mode == InstrumentMode::Intrinsic
                    ? rt.instantiateIntrinsic(m)
                    : rt.instantiate(r.module);
    if (elide || !elide_manifest.empty())
        applyElisions(mode == InstrumentMode::Intrinsic ? m : r.module,
                      elide_manifest, *inst, engine);
    // PolyBench workloads export `kernel`, applications `main`; with
    // no explicit --entry try both.
    if (entry.empty()) {
        entry = "main";
        if (!m.findFuncExport(entry) && m.findFuncExport("kernel"))
            entry = "kernel";
    }
    interp::Interpreter interp;
    interp.engine = engine;
    {
        obs::ProfileCollector::ScopedPhase p(&collector, "execute");
        interp.invokeExport(*inst, entry, call_args);
    }
    const interp::ExecStats &es = interp.stats();
    collector.setInterpCounters(obs::InterpCounters{
        es.instructions, es.calls, es.memoryOps, es.memoryOpsElided,
        es.traps});

    if (!trace_out.empty())
        writeTextFile(trace_out, collector.toChromeTrace());
    std::string report = json || !out_path.empty() || deterministic
                             ? collector.toJson(deterministic)
                             : collector.toText();
    if (!out_path.empty())
        writeTextFile(out_path, report);
    else
        std::fputs(report.c_str(), stdout);
    return 0;
}

int
cmdGen(const std::string &spec, const std::string &out_path)
{
    wasm::Module m;
    if (spec.rfind("polybench:", 0) == 0) {
        std::string rest = spec.substr(10);
        int n = 20;
        size_t colon = rest.find(':');
        if (colon != std::string::npos) {
            n = std::stoi(rest.substr(colon + 1));
            rest = rest.substr(0, colon);
        }
        m = workloads::polybench(rest, n).module;
    } else if (spec.rfind("random:", 0) == 0) {
        workloads::RandomProgramOptions opts;
        opts.seed = std::stoull(spec.substr(7));
        m = workloads::randomProgram(opts).module;
    } else if (spec.rfind("app:", 0) == 0) {
        std::string size = spec.substr(4);
        workloads::AppSize s = size == "small"
                                   ? workloads::AppSize::Small
                                   : size == "large"
                                         ? workloads::AppSize::UnrealLike
                                         : workloads::AppSize::PdfkitLike;
        m = workloads::syntheticApp(s).module;
    } else {
        throw std::runtime_error("unknown generator spec: " + spec);
    }
    writeFile(out_path, wasm::encodeModule(m));
    std::printf("wrote %s (%zu bytes)\n", out_path.c_str(),
                wasm::encodeModule(m).size());
    return 0;
}

/** Observable outcome of invoking one export for the `opt`
 * differential gate. */
struct GateOutcome {
    std::vector<wasm::Value> results;
    std::optional<interp::TrapKind> trap;
    std::vector<uint8_t> memory;

    bool operator==(const GateOutcome &other) const = default;
};

std::optional<GateOutcome>
runGateExport(const wasm::Module &m, const std::string &entry,
              interp::EngineKind engine)
{
    GateOutcome out;
    std::unique_ptr<interp::Instance> inst;
    try {
        inst = interp::Instance::instantiate(m, interp::Linker());
    } catch (...) {
        return std::nullopt; // e.g. unresolved imports: gate skipped
    }
    interp::Interpreter interp;
    interp.engine = engine;
    try {
        out.results = interp.invokeExport(*inst, entry, {});
    } catch (const interp::Trap &t) {
        out.trap = t.kind();
    }
    out.memory = inst->memory().raw();
    return out;
}

/**
 * The `wasabi opt` differential-execution gate: every no-argument
 * export must behave identically (results, trap kind, final memory)
 * on the original and the optimized module, on both engines; and the
 * optimized module, instrumented with all hooks, must agree with
 * itself across engines including the hook-invocation stream.
 * Returns the number of exports exercised; throws on any divergence.
 */
size_t
runOptGate(const wasm::Module &orig, const wasm::Module &optimized)
{
    std::vector<std::string> entries;
    for (const wasm::Function &f : orig.functions) {
        if (!f.exportNames.empty() && orig.types[f.typeIdx].params.empty())
            entries.push_back(f.exportNames.front());
    }
    size_t checked = 0;
    for (const std::string &entry : entries) {
        std::optional<GateOutcome> ol =
            runGateExport(orig, entry, interp::EngineKind::Legacy);
        if (!ol)
            return checked; // cannot instantiate: nothing to compare
        std::optional<GateOutcome> of =
            runGateExport(orig, entry, interp::EngineKind::Fast);
        std::optional<GateOutcome> pl =
            runGateExport(optimized, entry, interp::EngineKind::Legacy);
        std::optional<GateOutcome> pf =
            runGateExport(optimized, entry, interp::EngineKind::Fast);
        if (!of || !pl || !pf || !(*ol == *of) || !(*ol == *pl) ||
            !(*ol == *pf))
            throw std::runtime_error(
                "opt verification failed: export \"" + entry +
                "\" diverges between original and optimized module");
        ++checked;
    }
    // Hook-stream gate: instrument the optimized module and require
    // both engines to agree on results and hook invocations.
    core::InstrumentResult r =
        core::instrument(optimized, core::HookSet::all());
    for (const std::string &entry : entries) {
        uint64_t hooks[2] = {0, 0};
        GateOutcome outs[2];
        bool ran = true;
        for (int e = 0; e < 2; ++e) {
            runtime::WasabiRuntime rt(r.info);
            analyses::InstructionMix mix;
            rt.addAnalysis(&mix);
            std::unique_ptr<interp::Instance> inst;
            try {
                inst = rt.instantiate(r.module);
            } catch (...) {
                ran = false;
                break;
            }
            interp::Interpreter interp;
            interp.engine = e == 0 ? interp::EngineKind::Legacy
                                   : interp::EngineKind::Fast;
            try {
                outs[e].results = interp.invokeExport(*inst, entry, {});
            } catch (const interp::Trap &t) {
                outs[e].trap = t.kind();
            }
            outs[e].memory = inst->memory().raw();
            hooks[e] = rt.hookInvocations();
        }
        if (ran && (!(outs[0] == outs[1]) || hooks[0] != hooks[1]))
            throw std::runtime_error(
                "opt verification failed: instrumented export \"" +
                entry + "\" diverges between engines");
    }
    return checked;
}

int
cmdOpt(const std::vector<std::string> &args)
{
    namespace rw = static_analysis::rewrite;
    std::string in_path, out_path, manifest_out, json_out;
    std::string passes_spec = "all";
    bool json = false, verify = true;
    for (const std::string &a : args) {
        if (a.rfind("--out=", 0) == 0)
            out_path = a.substr(6);
        else if (a.rfind("--passes=", 0) == 0)
            passes_spec = a.substr(9);
        else if (a.rfind("--manifest-out=", 0) == 0)
            manifest_out = a.substr(15);
        else if (a == "--json")
            json = true;
        else if (a.rfind("--json=", 0) == 0)
            json_out = a.substr(7);
        else if (a == "--no-verify")
            verify = false;
        else if (in_path.empty())
            in_path = a;
        else
            throw UsageError("opt: unexpected argument '" + a + "'");
    }
    if (in_path.empty() || out_path.empty())
        throw UsageError("usage: opt <in.wasm> --out=FILE [--passes=...]"
                         " [--manifest-out=FILE] [--json[=FILE]]"
                         " [--no-verify]");

    wasm::Module m = loadModule(in_path);
    if (auto err = wasm::validationError(m))
        throw std::runtime_error("opt needs a valid module: " + *err);

    std::vector<std::string> passes;
    try {
        passes = rw::parsePassSpec(passes_spec);
    } catch (const rw::RewriteError &e) {
        throw UsageError(std::string("opt: ") + e.what());
    }

    rw::OptResult r = rw::optimize(m, passes);
    if (auto err = wasm::validationError(r.module))
        throw std::runtime_error(
            "internal error: optimized module fails validation: " + *err);
    std::vector<uint8_t> before_bytes = wasm::encodeModule(m);
    std::vector<uint8_t> after_bytes = wasm::encodeModule(r.module);

    size_t gate_exports = 0;
    if (verify)
        gate_exports = runOptGate(m, r.module);

    writeFile(out_path, after_bytes);
    if (!manifest_out.empty())
        writeTextFile(manifest_out, rw::claimsToManifest(r.claims));

    // Merge before/after per-section sizes by section name.
    std::vector<std::pair<std::string, std::pair<size_t, size_t>>> secs;
    auto accumulate = [&secs](const std::vector<uint8_t> &bytes,
                              bool after) {
        for (const wasm::SectionSize &s : wasm::sectionSizes(bytes)) {
            auto it = std::find_if(secs.begin(), secs.end(),
                                   [&](const auto &e) {
                                       return e.first == s.name;
                                   });
            if (it == secs.end()) {
                secs.push_back({s.name, {0, 0}});
                it = secs.end() - 1;
            }
            (after ? it->second.second : it->second.first) += s.bytes;
        }
    };
    accumulate(before_bytes, false);
    accumulate(after_bytes, true);

    const rw::OptClaims &c = r.claims;
    if (json || !json_out.empty()) {
        std::string j =
            "{\n  \"schema\": \"wasabi-profile\",\n  \"version\": 1,\n"
            "  \"deterministic\": false,\n"
            "  \"runtime\": {\"hookInvocations\": 0, \"perKind\": []},\n"
            "  \"bench\": {\"name\": \"opt\",\n    \"passes\": [";
        for (size_t i = 0; i < c.passes.size(); ++i)
            j += std::string(i ? ", " : "") + "\"" + c.passes[i] + "\"";
        j += "],\n    \"claims\": {\"deadFunctions\": " +
             std::to_string(c.strippedFunctions.size()) +
             ", \"directCalls\": " + std::to_string(c.directCalls.size()) +
             ", \"ipoConstArgs\": " + std::to_string(c.ipoConstArgs.size()) +
             ", \"ipoConstReturns\": " +
             std::to_string(c.ipoConstReturns.size()) +
             ", \"inlinedCalls\": " + std::to_string(c.inlinedCalls.size()) +
             ", \"inlineStripped\": " +
             std::to_string(c.inlineStripped.size()) +
             ", \"tableSlots\": " + std::to_string(c.tableSlots.size()) +
             ", \"tableIndexRewrites\": " +
             std::to_string(c.tableIndexRewrites.size()) +
             ", \"tableStripped\": " +
             std::to_string(c.tableStripped.size()) +
             ", \"constFolds\": " + std::to_string(c.constFolds.size()) +
             ", \"deadStores\": " + std::to_string(c.deadStores.size()) +
             ", \"emptyBlocks\": " + std::to_string(c.emptyBlocks.size()) +
             "},\n    \"beforeBytes\": " +
             std::to_string(before_bytes.size()) +
             ",\n    \"afterBytes\": " + std::to_string(after_bytes.size()) +
             ",\n    \"sections\": [";
        for (size_t i = 0; i < secs.size(); ++i)
            j += std::string(i ? ", " : "") + "{\"section\": \"" +
                 secs[i].first +
                 "\", \"before\": " + std::to_string(secs[i].second.first) +
                 ", \"after\": " + std::to_string(secs[i].second.second) +
                 "}";
        j += "]\n  }\n}\n";
        std::string error;
        if (!obs::validateProfileJson(j, &error))
            throw std::runtime_error("internal error: opt JSON fails "
                                     "schema validation: " +
                                     error);
        if (!json_out.empty())
            writeTextFile(json_out, j);
        else
            std::fputs(j.c_str(), stdout);
        return 0;
    }

    std::printf("optimized %s -> %s\n", in_path.c_str(), out_path.c_str());
    std::printf("  passes:");
    for (const std::string &p : c.passes)
        std::printf(" %s", p.c_str());
    std::printf("\n");
    std::printf("  claims: %zu dead functions, %zu direct calls, "
                "%zu const args, %zu const returns, %zu inlines "
                "(%zu stripped), %zu table slots kept "
                "(%zu rewrites, %zu stripped), %zu const folds, "
                "%zu dead stores, %zu empty blocks\n",
                c.strippedFunctions.size(), c.directCalls.size(),
                c.ipoConstArgs.size(), c.ipoConstReturns.size(),
                c.inlinedCalls.size(), c.inlineStripped.size(),
                c.tableSlots.size(), c.tableIndexRewrites.size(),
                c.tableStripped.size(), c.constFolds.size(),
                c.deadStores.size(), c.emptyBlocks.size());
    std::printf("  size: %zu -> %zu bytes (%.1f%%)\n", before_bytes.size(),
                after_bytes.size(),
                100.0 * static_cast<double>(after_bytes.size()) /
                    static_cast<double>(before_bytes.size()));
    for (const auto &[name, ba] : secs) {
        if (ba.first != ba.second)
            std::printf("    %-10s %6zu -> %6zu bytes\n", name.c_str(),
                        ba.first, ba.second);
    }
    if (verify)
        std::printf("  verified: %zu export(s), both engines, "
                    "instrumented and uninstrumented\n",
                    gate_exports);
    if (!manifest_out.empty())
        std::printf("  manifest: %s (verify with `wasabi check %s %s "
                    "--manifest=%s`)\n",
                    manifest_out.c_str(), in_path.c_str(),
                    out_path.c_str(), manifest_out.c_str());
    return 0;
}

int
cmdCheck(const std::vector<std::string> &args)
{
    std::string orig_path, instr_path, manifest_path;
    static_analysis::CheckOptions opts;
    bool json = false;
    for (const std::string &a : args) {
        if (a.rfind("--hooks=", 0) == 0)
            opts.hooks = parseHooks(a.substr(8));
        else if (a == "--no-split-i64")
            opts.splitI64 = false;
        else if (a.rfind("--import-module=", 0) == 0)
            opts.importModule = a.substr(16);
        else if (a == "--no-side-tables")
            opts.checkSideTables = false;
        else if (a.rfind("--manifest=", 0) == 0)
            manifest_path = a.substr(11);
        else if (a == "--json")
            json = true;
        else if (orig_path.empty())
            orig_path = a;
        else
            instr_path = a;
    }
    std::string manifest_text;
    if (!manifest_path.empty()) {
        std::vector<uint8_t> bytes = readFile(manifest_path);
        manifest_text.assign(bytes.begin(), bytes.end());
    }
    if (static_analysis::passes::isRangeManifest(manifest_text)) {
        // Range-claim manifest: checked against the original module
        // alone — there is no second binary, the claims license
        // engine bounds-check elision on the original itself.
        if (orig_path.empty() || !instr_path.empty())
            throw UsageError("usage: check <orig.wasm> "
                             "--manifest=<range-manifest> [--json]");
        wasm::Module orig = loadModule(orig_path);
        static_analysis::Diagnostics diags =
            static_analysis::checkRangeManifest(orig, manifest_text);
        if (json) {
            std::fputs(static_analysis::toJson(diags).c_str(), stdout);
            std::fputs("\n", stdout);
        } else if (diags.empty()) {
            static_analysis::passes::RangeClaims rc;
            std::string perr;
            static_analysis::passes::rangeClaimsFromManifest(
                manifest_text, &rc, &perr);
            std::printf("OK: all %zu range claim(s) re-proved\n",
                        rc.claims.size());
        } else {
            std::fputs(static_analysis::toString(diags).c_str(),
                       stdout);
            std::printf("%zu finding(s)\n", diags.size());
        }
        return diags.empty() ? 0 : 3;
    }
    if (orig_path.empty() || instr_path.empty()) {
        // A single positional plus --manifest= is only meaningful for
        // a range manifest; anything else here is a broken file, not
        // a usage mistake.
        if (!manifest_path.empty() && !orig_path.empty() &&
            instr_path.empty())
            throw std::runtime_error(
                "manifest " + manifest_path +
                " is not a wasabi-range-manifest (malformed or wrong "
                "schema); two-binary manifests need <orig.wasm> "
                "<instrumented.wasm>");
        throw UsageError(
            "usage: check <orig.wasm> <instrumented.wasm> [opts]");
    }
    if (!manifest_path.empty()) {
        const std::string &text = manifest_text;
        if (static_analysis::rewrite::isOptManifest(text)) {
            // `wasabi opt` manifest: re-prove every optimization claim
            // against the original module and require the replayed
            // result to match the optimized binary byte-for-byte.
            std::string error;
            static_analysis::rewrite::OptClaims claims;
            if (!static_analysis::rewrite::claimsFromManifest(text, claims,
                                                              &error))
                throw std::runtime_error("malformed opt manifest " +
                                         manifest_path + ": " + error);
            wasm::Module orig = loadModule(orig_path);
            static_analysis::Diagnostics diags =
                static_analysis::rewrite::checkOptimization(
                    orig, readFile(instr_path), claims);
            if (json) {
                std::fputs(static_analysis::toJson(diags).c_str(), stdout);
                std::fputs("\n", stdout);
            } else if (diags.empty()) {
                std::printf("OK: all %zu optimization claim(s) re-proved, "
                            "output byte-identical to replay\n",
                            claims.totalClaims());
            } else {
                std::fputs(static_analysis::toString(diags).c_str(),
                           stdout);
                std::printf("%zu finding(s)\n", diags.size());
            }
            return diags.empty() ? 0 : 3;
        }
        std::string error;
        std::optional<core::HookOptimizationPlan> plan =
            static_analysis::passes::planFromManifest(text, &error);
        if (!plan)
            throw std::runtime_error("malformed manifest " +
                                     manifest_path + ": " + error);
        opts.plan = std::move(plan);
    }
    wasm::Module orig = loadModule(orig_path);
    wasm::Module instr = loadModule(instr_path);
    static_analysis::Diagnostics diags =
        static_analysis::checkInstrumentation(orig, instr, opts);
    if (json) {
        std::fputs(static_analysis::toJson(diags).c_str(), stdout);
        std::fputs("\n", stdout);
    } else if (diags.empty()) {
        std::printf("OK: all instrumentation invariants hold\n");
    } else {
        std::fputs(static_analysis::toString(diags).c_str(), stdout);
        std::printf("%zu finding(s)\n", diags.size());
    }
    return diags.empty() ? 0 : 3;
}

int
cmdLint(const std::vector<std::string> &args)
{
    std::string path;
    bool json = false;
    for (const std::string &a : args) {
        if (a == "--json")
            json = true;
        else
            path = a;
    }
    if (path.empty())
        throw UsageError("usage: lint <in.wasm> [--json]");
    wasm::Module m = loadModule(path);
    if (auto err = wasm::validationError(m)) {
        std::fprintf(stderr, "INVALID: %s\n", err->c_str());
        return 1;
    }
    static_analysis::Diagnostics diags =
        static_analysis::passes::lintModule(m);
    if (json) {
        std::fputs(static_analysis::toJson(diags).c_str(), stdout);
        std::fputs("\n", stdout);
    } else if (diags.empty()) {
        std::printf("OK: no findings\n");
    } else {
        std::fputs(static_analysis::toString(diags).c_str(), stdout);
        std::printf("%zu finding(s)\n", diags.size());
    }
    return diags.empty() ? 0 : 3;
}

int
cmdAnalyze(const std::vector<std::string> &args)
{
    std::string path, dot, manifest_out;
    bool json = false, summaries = false, ranges = false, ipcp = false;
    unsigned threads = 1;
    for (const std::string &a : args) {
        if (a == "--json")
            json = true;
        else if (a == "--summaries")
            summaries = true;
        else if (a == "--ranges")
            ranges = true;
        else if (a == "--ipcp")
            ipcp = true;
        else if (a.rfind("--manifest-out=", 0) == 0)
            manifest_out = a.substr(15);
        else if (a.rfind("--threads=", 0) == 0)
            threads = static_cast<unsigned>(std::stoul(a.substr(10)));
        else if (a.rfind("--dot=", 0) == 0)
            dot = a.substr(6);
        else
            path = a;
    }
    if (path.empty())
        throw UsageError("usage: analyze <in.wasm> [opts]");
    wasm::Module m = loadModule(path);
    if (auto err = wasm::validationError(m)) {
        std::fprintf(stderr, "INVALID: %s\n", err->c_str());
        return 1;
    }
    if (summaries) {
        std::fputs(
            static_analysis::summariesJson(m, threads).c_str(), stdout);
        std::fputs("\n", stdout);
        return 0;
    }
    if (ipcp) {
        static_analysis::interproc::ModuleIpcp facts =
            static_analysis::interproc::ipcpSolve(m, threads);
        std::fputs(
            static_analysis::interproc::ipcpToJson(m, facts).c_str(),
            stdout);
        std::fputs("\n", stdout);
        return 0;
    }
    if (ranges && !dot.empty())
        throw UsageError("analyze: --dot cannot be combined with "
                         "--ranges (both write to stdout)");
    if (ranges || !manifest_out.empty()) {
        static_analysis::passes::ModuleRanges mr =
            static_analysis::passes::moduleRanges(m, threads);
        if (!manifest_out.empty())
            writeTextFile(manifest_out,
                          static_analysis::passes::rangeClaimsToManifest(
                              static_analysis::passes::provableRangeClaims(
                                  mr)));
        if (ranges) {
            std::fputs(
                static_analysis::passes::rangesToJson(m, mr).c_str(),
                stdout);
            std::fputs("\n", stdout);
        }
        // --manifest-out goes to a file, so it composes with --dot;
        // fall through to print the requested DOT view.
        if (dot.empty())
            return 0;
    }
    if (!dot.empty()) {
        if (dot == "callgraph") {
            std::fputs(static_analysis::callGraphDot(m).c_str(), stdout);
        } else if (dot == "refined") {
            std::fputs(static_analysis::refinedCallGraphDot(m).c_str(),
                       stdout);
        } else if (dot.rfind("cfg:", 0) == 0) {
            uint32_t f =
                static_cast<uint32_t>(std::stoul(dot.substr(4)));
            if (f >= m.numFunctions() || m.functions[f].imported())
                throw std::runtime_error(
                    "--dot=cfg: not a defined function: " +
                    dot.substr(4));
            std::fputs(static_analysis::cfgDot(m, f).c_str(), stdout);
        } else if (dot.rfind("ranges:", 0) == 0) {
            uint32_t f =
                static_cast<uint32_t>(std::stoul(dot.substr(7)));
            if (f >= m.numFunctions() || m.functions[f].imported())
                throw std::runtime_error(
                    "--dot=ranges: not a defined function: " +
                    dot.substr(7));
            std::fputs(static_analysis::rangesDot(m, f).c_str(),
                       stdout);
        } else {
            throw std::runtime_error("unknown --dot target: " + dot);
        }
        return 0;
    }
    static_analysis::ModuleReport report =
        static_analysis::analyzeModule(m);
    std::fputs(json ? static_analysis::toJson(report).c_str()
                    : static_analysis::toString(report).c_str(),
               stdout);
    if (json)
        std::fputs("\n", stdout);
    return 0;
}

int
cmdServe(const std::vector<std::string> &args)
{
    std::string socket_path, request_path;
    unsigned clients = 1;
    for (const std::string &a : args) {
        if (a.rfind("--socket=", 0) == 0)
            socket_path = a.substr(9);
        else if (a.rfind("--request=", 0) == 0)
            request_path = a.substr(10);
        else if (a.rfind("--clients=", 0) == 0)
            clients = static_cast<unsigned>(std::stoul(a.substr(10)));
        else
            throw UsageError("serve: unexpected argument '" + a + "'");
    }
    if (socket_path.empty() == request_path.empty())
        throw UsageError("usage: serve --socket=PATH | "
                         "serve --request=FILE|- [--clients=N]");
    if (clients == 0 || clients > 64)
        throw UsageError("serve: --clients must be in [1, 64]");

    serve::Server server;
    if (!socket_path.empty())
        return serve::serveUnixSocket(server, socket_path);

    // Driver mode: the full request path (parse, cache, pool, quotas,
    // structured errors) without socket plumbing — what tests and CI
    // script against.
    std::string text;
    if (request_path == "-") {
        text.assign(std::istreambuf_iterator<char>(std::cin),
                    std::istreambuf_iterator<char>());
    } else {
        std::vector<uint8_t> bytes = readFile(request_path);
        text.assign(bytes.begin(), bytes.end());
    }
    std::vector<std::string> lines;
    for (size_t pos = 0; pos < text.size();) {
        size_t nl = text.find('\n', pos);
        if (nl == std::string::npos)
            nl = text.size();
        std::string line = text.substr(pos, nl - pos);
        if (!line.empty() && line != "\r")
            lines.push_back(std::move(line));
        pos = nl + 1;
    }

    if (clients == 1) {
        for (const std::string &line : lines) {
            serve::Server::Handled h = server.handle(line);
            std::printf("%s\n", h.response.c_str());
            if (h.shutdown)
                break;
        }
        return 0;
    }

    // Determinism gate: N concurrent clients replay the same request
    // sequence against one server; every client's responses must
    // agree byte-for-byte. Two request classes are excluded from the
    // comparison because they are *documented* to depend on
    // interleaving: metrics (shared counters) and verbose requests
    // (cache/pool provenance — which client ran cold is a race).
    // Client 0's transcript is printed, so a --clients=8 run is
    // comparable to a --clients=1 run with
    // `grep -v '"op": "metrics"'`.
    std::vector<bool> gated(lines.size(), true);
    for (size_t i = 0; i < lines.size(); ++i) {
        try {
            serve::Request r = serve::parseRequest(lines[i]);
            gated[i] = r.op != "metrics" && !r.verbose;
        } catch (const serve::BadRequest &) {
            // Malformed lines get a deterministic error response.
        }
    }
    std::vector<std::vector<std::string>> transcripts(clients);
    std::vector<std::vector<std::string>> comparable(clients);
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (unsigned c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
            for (size_t i = 0; i < lines.size(); ++i) {
                serve::Server::Handled h = server.handle(lines[i]);
                transcripts[c].push_back(h.response);
                if (gated[i])
                    comparable[c].push_back(h.response);
                if (h.shutdown)
                    break;
            }
        });
    }
    for (std::thread &t : threads)
        t.join();
    for (unsigned c = 1; c < clients; ++c) {
        if (comparable[c] != comparable[0]) {
            std::fprintf(stderr,
                         "wasabi serve: determinism violation: client "
                         "%u's responses diverge from client 0's\n",
                         c);
            return 1;
        }
    }
    for (const std::string &resp : transcripts[0])
        std::printf("%s\n", resp.c_str());
    return 0;
}

void
printUsage(std::FILE *to)
{
    std::fputs(
        "usage: wasabi <command> ...\n"
        "  validate   <in.wasm>\n"
        "  dump       <in.wasm>\n"
        "  instrument <in.wasm> <out.wasm> [--hooks=h1,h2|all]\n"
        "             [--threads=N] [--no-split-i64]\n"
        "             [--optimize-hooks] [--manifest-out=FILE]\n"
        "  run        <in.wasm> [--entry=NAME] [--analysis=mix|blocks|\n"
        "             icov|branch|callgraph|taint|miner|mem]\n"
        "             [--arg=i32:N] [--arg=i64:N] [--arg=f64:X]\n"
        "             [--engine=fast|legacy]\n"
        "             [--instrument-mode=rewrite|intrinsic]\n"
        "             [--profile] [--profile-out=FILE]\n"
        "             [--elide-bounds-checks] [--elide-manifest=FILE]\n"
        "  gen        <polybench:NAME[:N]|random:SEED|app:SIZE> "
        "<out.wasm>\n"
        "  opt        <in.wasm> --out=FILE [--passes=p1,p2|all]\n"
        "             [--manifest-out=FILE] [--json[=FILE]]\n"
        "             [--no-verify]\n"
        "             apply analysis-proven binary transforms\n"
        "             (dead-functions, call-indirect, ipo-const,\n"
        "             inline, table-compact, const-fold, dead-stores,\n"
        "             empty-blocks) with a claim manifest\n"
        "  check      <orig.wasm> <instrumented.wasm> [--hooks=h1,h2]\n"
        "             [--no-split-i64] [--import-module=NAME]\n"
        "             [--no-side-tables] [--manifest=FILE] [--json]\n"
        "             verifies instrumentation invariants; exit 3 if\n"
        "             any are violated\n"
        "  lint       <in.wasm> [--json]\n"
        "             static pass suite findings; exit 3 if any\n"
        "  analyze    <in.wasm> [--json] [--summaries] [--ranges]\n"
        "             [--ipcp] [--manifest-out=FILE] [--threads=N]\n"
        "             [--dot=callgraph|refined|cfg:FUNC|ranges:FUNC]\n"
        "             per-function CFG statistics, dominator-based\n"
        "             loop counts, dead functions, effect summaries,\n"
        "             value-range facts, range-claim manifests and\n"
        "             interprocedural constant/range lattices\n"
        "  profile    <in.wasm> [--analysis=NAME] [--hooks=h1,h2]\n"
        "             [--entry=NAME] [--arg=...] [--threads=N]\n"
        "             [--elide-bounds-checks] [--elide-manifest=FILE]\n"
        "             [--engine=fast|legacy] [--json]\n"
        "             [--instrument-mode=rewrite|intrinsic]\n"
        "             [--deterministic] [--out=FILE]\n"
        "             [--trace-out=FILE]  |  profile --check=FILE\n"
        "             instrument + execute with full observability:\n"
        "             phase times, per-hook-kind dispatch counts,\n"
        "             interpreter counters, Chrome trace output\n"
        "  serve      --socket=PATH | --request=FILE|- [--clients=N]\n"
        "             multi-tenant analysis daemon: line-oriented JSON\n"
        "             requests (run/profile/instrument/analyze/\n"
        "             metrics/shutdown) with a content-hash module\n"
        "             cache, warmed-instance pooling, and per-request\n"
        "             fuel/memory quotas\n"
        "  help       [<command>], --help\n"
        "  --version\n",
        to);
}

/** Detailed per-subcommand help for `wasabi help <command>`.
 * Returns false for an unknown command name. */
bool
printCommandHelp(const std::string &cmd, std::FILE *to)
{
    if (cmd == "validate") {
        std::fputs(
            "wasabi validate <in.wasm>\n"
            "  Decode (or parse, for .wat input) and validate the\n"
            "  module. Exit 0 if valid, 1 otherwise.\n",
            to);
    } else if (cmd == "dump") {
        std::fputs("wasabi dump <in.wasm>\n"
                   "  Print the module in text form.\n",
                   to);
    } else if (cmd == "instrument") {
        std::fputs(
            "wasabi instrument <in.wasm> <out.wasm> [options]\n"
            "  --hooks=h1,h2|all   hook kinds to instrument (default\n"
            "                      all)\n"
            "  --threads=N         parallel per-function\n"
            "                      instrumentation\n"
            "  --no-split-i64      pass i64 hook operands directly\n"
            "                      instead of as (low, high) i32 pairs\n"
            "  --optimize-hooks    run the static pass suite first and\n"
            "                      skip hooks in provably-unreachable\n"
            "                      code, narrow constant-index\n"
            "                      br_table hooks to plain br hooks,\n"
            "                      and elide begin/end pairs of empty\n"
            "                      blocks\n"
            "  --manifest-out=FILE write the JSON optimization\n"
            "                      manifest describing every licensed\n"
            "                      omission (feed it to `wasabi check\n"
            "                      --manifest=FILE`)\n",
            to);
    } else if (cmd == "run") {
        std::fputs(
            "wasabi run <in.wasm> [--entry=NAME] [--analysis=NAME]\n"
            "           [--arg=i32:N] [--arg=i64:N] [--arg=f64:X]\n"
            "           [--engine=fast|legacy]\n"
            "           [--profile] [--profile-out=FILE]\n"
            "  Instrument, instantiate and execute the module with a\n"
            "  dynamic analysis attached (default entry `main`,\n"
            "  default analysis `mix`). Analyses: mix, blocks, icov,\n"
            "  branch, callgraph, taint, miner, mem.\n"
            "  --engine selects the execution engine: `fast` (the\n"
            "  pre-decoded default) or `legacy` (the structured\n"
            "  walker kept as the differential oracle); both are\n"
            "  observationally identical.\n"
            "  --instrument-mode selects how hooks reach the runtime:\n"
            "  `rewrite` (default; binary rewriting + hook imports,\n"
            "  the paper's design) or `intrinsic` (the fast engine\n"
            "  dispatches hooks straight from its inner loop — no\n"
            "  rewriting, lower overhead, byte-identical hook\n"
            "  stream; requires --engine=fast).\n"
            "  --profile prints a profile table after the analysis\n"
            "  report; --profile-out=FILE writes the wasabi-profile\n"
            "  JSON document instead.\n"
            "  --elide-bounds-checks derives the provable range-claim\n"
            "  set of the executed (instrumented) module and runs the\n"
            "  fast engine with those bounds checks elided;\n"
            "  --elide-manifest=FILE re-proves a saved manifest first\n"
            "  and hard-fails if any claim does not re-derive.\n",
            to);
    } else if (cmd == "profile") {
        std::fputs(
            "wasabi profile <in.wasm> [options]\n"
            "wasabi profile --check=FILE\n"
            "  Instrument and execute the module with the\n"
            "  observability layer attached, then report:\n"
            "    - decode/instrument/encode/execute phase wall times\n"
            "    - per-worker-thread instrumentation spans and the\n"
            "      hook-map readers/writer-lock hit/miss/insert counts\n"
            "    - per-hook-kind dispatch counts and cumulative time,\n"
            "      attributed per analysis\n"
            "    - interpreter counters (instructions, calls, memory\n"
            "      ops, traps)\n"
            "  --analysis=NAME    analysis to attach (default mix)\n"
            "  --hooks=h1,h2|all  override the instrumented hook set\n"
            "  --entry=NAME       entry export (default: main, then\n"
            "                     kernel)\n"
            "  --arg=i32:N ...    entry arguments\n"
            "  --threads=N        parallel instrumentation workers\n"
            "  --engine=fast|legacy  execution engine (default fast)\n"
            "  --instrument-mode=rewrite|intrinsic  how hooks reach\n"
            "                     the runtime (default rewrite;\n"
            "                     intrinsic requires --engine=fast\n"
            "                     and skips binary rewriting)\n"
            "  --elide-bounds-checks  run with statically proven\n"
            "                     bounds checks elided (fast engine)\n"
            "  --elide-manifest=FILE  re-prove and apply a saved\n"
            "                     range-claim manifest\n"
            "  --json             emit wasabi-profile JSON (v1)\n"
            "  --deterministic    JSON with timings zeroed and\n"
            "                     schedule-dependent sections omitted;\n"
            "                     byte-identical for any --threads=N\n"
            "  --out=FILE         write the report to FILE\n"
            "  --trace-out=FILE   also write Chrome trace-event JSON\n"
            "                     (load in Perfetto / about:tracing)\n"
            "  --check=FILE       validate FILE against the\n"
            "                     wasabi-profile schema and exit\n",
            to);
    } else if (cmd == "gen") {
        std::fputs(
            "wasabi gen <spec> <out.wasm>\n"
            "  Generate a workload module: polybench:NAME[:N],\n"
            "  random:SEED, or app:small|medium|large.\n",
            to);
    } else if (cmd == "opt") {
        std::fputs(
            "wasabi opt <in.wasm> --out=FILE [options]\n"
            "  Apply analysis-driven binary transforms. Each applied\n"
            "  edit is licensed by a static fact (refined call graph\n"
            "  reachability, unique indirect-call targets, the\n"
            "  constant-propagation lattice, backward liveness,\n"
            "  block matching) and recorded as a claim that\n"
            "  `wasabi check --manifest=` re-proves against the\n"
            "  output binary.\n"
            "  --passes=p1,p2|all   subset of: dead-functions,\n"
            "                       call-indirect, ipo-const, inline,\n"
            "                       table-compact, const-fold,\n"
            "                       dead-stores, empty-blocks\n"
            "                       (always applied in that order;\n"
            "                       default all; unknown names are a\n"
            "                       usage error listing the valid set)\n"
            "  --manifest-out=FILE  write the claim manifest\n"
            "                       (\"wasabi-opt-manifest\" JSON)\n"
            "  --json[=FILE]        size/claim stats in the\n"
            "                       wasabi-profile schema\n"
            "  --no-verify          skip the differential-execution\n"
            "                       gate (original vs optimized, both\n"
            "                       engines, plus instrumented\n"
            "                       hook-stream agreement)\n",
            to);
    } else if (cmd == "check") {
        std::fputs(
            "wasabi check <orig.wasm> <instrumented.wasm> [options]\n"
            "  Statically verify the instrumentation invariants\n"
            "  (monomorphic well-typed hooks, selective completeness\n"
            "  and exclusivity, constant locations, i64 splitting,\n"
            "  side tables, structure preservation). Exit 3 if any\n"
            "  finding, 0 otherwise.\n"
            "  --hooks=h1,h2        hook kinds that were enabled\n"
            "                       (default: inferred from imports)\n"
            "  --no-split-i64       the i64-split ABI was not used\n"
            "  --import-module=NAME hook import module (default\n"
            "                       `wasabi`)\n"
            "  --no-side-tables     skip side-table re-derivation\n"
            "  --manifest=FILE      optimization manifest emitted by\n"
            "                       `instrument --optimize-hooks\n"
            "                       --manifest-out=`; every claimed\n"
            "                       omission is re-proved against the\n"
            "                       original module before it exempts\n"
            "                       a site from completeness. A\n"
            "                       `wasabi opt` manifest is detected\n"
            "                       automatically and routes to the\n"
            "                       optimization checker instead\n"
            "                       (check.opt.* findings); a range\n"
            "                       manifest (`analyze --ranges\n"
            "                       --manifest-out=`) needs only the\n"
            "                       original module and re-proves\n"
            "                       every in-bounds claim\n"
            "                       (check.range.* findings)\n"
            "  --json               machine-readable findings\n",
            to);
    } else if (cmd == "lint") {
        std::fputs(
            "wasabi lint <in.wasm> [--json]\n"
            "  Run the static pass suite (constant propagation,\n"
            "  reachability, dead stores, branch refinement) and\n"
            "  report findings about the program itself:\n"
            "    lint.unreachable.code      CFG-unreachable ranges\n"
            "    lint.deadcode.function     call-graph-dead functions\n"
            "    lint.deadstore.local       stores no load observes\n"
            "    lint.branch.const-condition provably constant br_if/\n"
            "                               if conditions\n"
            "    lint.branch.const-index    provably constant br_table\n"
            "                               indices\n"
            "    lint.block.empty           empty block/loop regions\n"
            "    lint.interproc.*           refined-graph dead\n"
            "                               functions, zero-target or\n"
            "                               unresolvable call_indirect\n"
            "                               sites, effect-free\n"
            "                               functions, never-read\n"
            "                               parameters, and private\n"
            "                               functions that always\n"
            "                               return one constant\n"
            "    lint.range.*               provably out-of-bounds\n"
            "                               accesses, div-by-zero,\n"
            "                               dead guards\n"
            "  Exit 3 if there are findings, 0 otherwise.\n",
            to);
    } else if (cmd == "analyze") {
        std::fputs(
            "wasabi analyze <in.wasm> [--json] [--summaries]\n"
            "               [--ranges] [--ipcp] [--manifest-out=FILE]\n"
            "               [--threads=N]\n"
            "               [--dot=callgraph|refined|cfg:FUNC|\n"
            "                ranges:FUNC]\n"
            "  Static module report: per-function CFG statistics,\n"
            "  dominator-based loop counts, dead functions; or a\n"
            "  Graphviz rendering of the call graph / one CFG.\n"
            "  --summaries solves interprocedural effect summaries\n"
            "  (memory/global effects, may-trap, import escape,\n"
            "  callee closure) over the refined call graph's SCC\n"
            "  condensation with N workers and prints them as JSON;\n"
            "  output is byte-identical for every N.\n"
            "  --ranges runs the value-range abstract interpretation\n"
            "  (interval domain, threshold widening, branch\n"
            "  refinement, interprocedural argument seeding) and\n"
            "  prints per-access address intervals as JSON; output is\n"
            "  byte-identical for every --threads=N.\n"
            "  --ipcp solves the interprocedural sparse constant/\n"
            "  range lattices (SCCP over the refined call graph's SCC\n"
            "  condensation) and prints per-function argument and\n"
            "  return intervals plus pinned/pure/terminates facts as\n"
            "  JSON; byte-identical for every --threads=N.\n"
            "  --manifest-out=FILE writes the provable in-bounds\n"
            "  accesses as a \"wasabi-range-manifest\" claim set for\n"
            "  `wasabi check --manifest=` and `run/profile\n"
            "  --elide-manifest=`.\n"
            "  --dot=refined renders per-site call_indirect edges:\n"
            "  bold = proven unique target, dashed = unresolved;\n"
            "  --dot=ranges:FUNC renders one CFG with per-block\n"
            "  locals intervals.\n",
            to);
    } else if (cmd == "serve") {
        std::fputs(
            "wasabi serve --socket=PATH\n"
            "wasabi serve --request=FILE|- [--clients=N]\n"
            "  Multi-tenant analysis daemon (DESIGN.md §14). Each\n"
            "  request is one JSON object per line; each response is\n"
            "  one JSON line. Ops:\n"
            "    run        execute with an analysis attached\n"
            "               (intrinsic mode): {\"op\": \"run\",\n"
            "               \"module\": \"m.wasm\", \"analysis\":\n"
            "               \"mix\", \"entry\": \"main\", \"args\":\n"
            "               [\"i32:5\"], \"fuel\": 1000000,\n"
            "               \"memoryPages\": 64}\n"
            "    profile    run + wasabi-profile JSON in the response\n"
            "    instrument rewrite the module (needs \"out\": PATH)\n"
            "    analyze    static module facts + content hash\n"
            "    metrics    daemon counters as wasabi-profile JSON:\n"
            "               cache hits/misses, pool hits/misses,\n"
            "               translations, quota trips, per-endpoint\n"
            "               request/error totals\n"
            "    shutdown   stop the daemon / driver loop\n"
            "  Modules are cached by content hash (decode + validate +\n"
            "  static facts happen once per distinct byte string) and\n"
            "  executed on pooled instances whose post-start state is\n"
            "  snapshot/restored between requests, so a warm request\n"
            "  re-uses the fast engine's translations. Per-request\n"
            "  quotas fail with structured serve.quota-exceeded\n"
            "  errors; no request — malformed, trapping, or\n"
            "  over-quota — terminates the daemon.\n"
            "  --request=FILE|-  driver mode: serve the newline-\n"
            "                    separated requests from FILE (or\n"
            "                    stdin) and print responses to stdout\n"
            "  --clients=N       replay the request file from N\n"
            "                    concurrent clients against one\n"
            "                    daemon; exits 1 unless all responses\n"
            "                    agree byte-for-byte (determinism\n"
            "                    gate; metrics and verbose requests\n"
            "                    are excluded — counters and cache/\n"
            "                    pool provenance depend on\n"
            "                    interleaving)\n",
            to);
    } else {
        return false;
    }
    return true;
}

int
usage()
{
    printUsage(stderr);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    std::vector<std::string> args(argv + 2, argv + argc);
    std::string cmd = argv[1];
    if (cmd == "--version" || cmd == "version") {
        std::printf("wasabi %s\n", WASABI_VERSION);
        return 0;
    }
    if (cmd == "help" || cmd == "--help" || cmd == "-h") {
        if (args.empty()) {
            printUsage(stdout);
            return 0;
        }
        if (printCommandHelp(args[0], stdout))
            return 0;
        std::fprintf(stderr, "wasabi: unknown command '%s'\n",
                     args[0].c_str());
        return usage();
    }
    try {
        if (cmd == "validate" && args.size() == 1)
            return cmdValidate(args[0]);
        if (cmd == "dump" && args.size() == 1)
            return cmdDump(args[0]);
        if (cmd == "instrument")
            return cmdInstrument(args);
        if (cmd == "run")
            return cmdRun(args);
        if (cmd == "gen" && args.size() == 2)
            return cmdGen(args[0], args[1]);
        if (cmd == "opt")
            return cmdOpt(args);
        if (cmd == "check")
            return cmdCheck(args);
        if (cmd == "lint")
            return cmdLint(args);
        if (cmd == "analyze")
            return cmdAnalyze(args);
        if (cmd == "profile")
            return cmdProfile(args);
        if (cmd == "serve")
            return cmdServe(args);
        std::fprintf(stderr, "wasabi: unknown command '%s'\n",
                     cmd.c_str());
        return usage();
    } catch (const UsageError &e) {
        std::fprintf(stderr, "wasabi: %s\n", e.what());
        return 2;
    } catch (const support::IoError &e) {
        // Structured I/O failure: the code ("io.read" / "io.write" /
        // "io.short-write" / "io.module") leads, so scripts can match
        // on it; a short write means the artifact is unusable.
        std::fprintf(stderr, "wasabi: error: %s\n", e.what());
        return 1;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "wasabi: %s\n", e.what());
        return 1;
    }
}
