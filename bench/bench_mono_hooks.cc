/**
 * @file
 * Reproduces the **on-demand monomorphization** evaluation of §4.5
 * (RQ4 text): number of low-level hooks generated under full
 * instrumentation per program (paper: 110-122 for PolyBench, 302 for
 * PSPDFKit, 783 for Unreal), against the eager-generation explosion
 * (4^max_args call hooks alone).
 */

#include <cmath>
#include <cstdio>

#include "bench_common.h"

using namespace wasabi;
using namespace wasabi::bench;

namespace {

void
report(const std::string &name, const wasm::Module &m)
{
    core::InstrumentResult r = core::instrument(m, core::HookSet::all());
    // Largest call arity in the program (drives the eager bound).
    size_t max_args = 0;
    for (const wasm::FuncType &t : m.types)
        max_args = std::max(max_args, t.params.size());
    double eager_call_hooks = std::pow(4.0, static_cast<double>(max_args));
    std::printf("%-18s %6zu on-demand hooks   max call arity %2zu -> "
                "eager call hooks alone: 4^%zu = %.3g\n",
                name.c_str(), r.info->hooks.size(), max_args, max_args,
                eager_call_hooks);
}

} // namespace

int
main(int argc, char **argv)
{
    const int n = argc > 1 ? std::atoi(argv[1]) : 20;
    std::printf("=== On-demand monomorphization (RQ4): generated "
                "low-level hooks under full instrumentation ===\n\n");

    size_t lo = SIZE_MAX, hi = 0;
    for (const auto &w : workloads::polybenchSuite(n)) {
        core::InstrumentResult r =
            core::instrument(w.module, core::HookSet::all());
        lo = std::min(lo, r.info->hooks.size());
        hi = std::max(hi, r.info->hooks.size());
    }
    std::printf("PolyBench suite: between %zu and %zu hooks per program "
                "(paper: 110-122)\n",
                lo, hi);

    workloads::Workload pdfkit =
        workloads::syntheticApp(workloads::AppSize::PdfkitLike);
    report(pdfkit.name, pdfkit.module);
    workloads::Workload unreal =
        workloads::syntheticApp(workloads::AppSize::UnrealLike);
    report(unreal.name, unreal.module);
    return 0;
}
