/**
 * @file
 * Reproduces **Figure 8** (RQ4, §4.5): binary size increase (percent
 * of the original size) per selectively-instrumented hook, for the
 * PolyBench mean and the two synthetic applications, plus the
 * "all hooks" configuration (paper: 495% - 743%).
 *
 * A second section measures the analysis-guided optimizer
 * (`wasabi instrument --optimize-hooks`): instrumented size with and
 * without the static hook-optimization plan, for the branch-analysis
 * and coverage-analysis hook configurations.
 */

#include <cstdio>

#include "bench_common.h"
#include "static/passes/pipeline.h"

using namespace wasabi;
using namespace wasabi::bench;

namespace {

double
sizeIncreasePct(const wasm::Module &m, core::HookSet hooks)
{
    size_t base = binarySize(m);
    core::InstrumentResult r = core::instrument(m, hooks);
    size_t inst = binarySize(r.module);
    return 100.0 * (static_cast<double>(inst) - base) / base;
}

struct OptDelta {
    size_t plain = 0;
    size_t optimized = 0;
};

OptDelta
optimizedSizes(const wasm::Module &m, core::HookSet hooks)
{
    OptDelta d;
    d.plain = binarySize(core::instrument(m, hooks).module);
    core::HookOptimizationPlan plan =
        static_analysis::passes::computePlan(m);
    core::InstrumentOptions opts;
    opts.plan = &plan;
    d.optimized = binarySize(core::instrument(m, hooks, opts).module);
    return d;
}

double
savedPct(const OptDelta &d)
{
    return 100.0 *
           (static_cast<double>(d.plain) -
            static_cast<double>(d.optimized)) /
           static_cast<double>(d.plain);
}

} // namespace

int
main(int argc, char **argv)
{
    const int n = argc > 1 ? std::atoi(argv[1]) : 20;

    auto suite = workloads::polybenchSuite(n);
    workloads::Workload pdfkit =
        workloads::syntheticApp(workloads::AppSize::PdfkitLike);
    workloads::Workload unreal =
        workloads::syntheticApp(workloads::AppSize::UnrealLike);

    std::printf("=== Figure 8: binary size increase per instrumented "
                "hook (%% of original size) ===\n\n");
    std::printf("%-12s %16s %16s %16s\n", "hook", "PolyBench(mean)",
                "pspdfkit-like", "unreal-like");

    auto measureSet = [&](core::HookSet set) {
        double poly = 0;
        for (const auto &w : suite)
            poly += sizeIncreasePct(w.module, set);
        poly /= static_cast<double>(suite.size());
        double pdf = sizeIncreasePct(pdfkit.module, set);
        double unr = sizeIncreasePct(unreal.module, set);
        return std::array<double, 3>{poly, pdf, unr};
    };

    for (core::HookKind kind : core::figureOrderHookKinds()) {
        auto v = measureSet(core::HookSet::only(kind));
        std::printf("%-12s %15.1f%% %15.1f%% %15.1f%%\n", name(kind),
                    v[0], v[1], v[2]);
    }
    auto all = measureSet(core::HookSet::all());
    std::printf("%-12s %15.1f%% %15.1f%% %15.1f%%\n", "ALL", all[0],
                all[1], all[2]);
    std::printf("\n(paper: most hooks <10%%; load/store 39-58%%, "
                "begin/end 11-84%%, const 59-71%%, local 128-180%%, "
                "binary 83-190%%; all 495-743%%)\n");

    std::printf("\n=== --optimize-hooks: instrumented size with the "
                "static plan (bytes saved) ===\n\n");
    struct Config {
        const char *name;
        core::HookSet hooks;
    };
    const Config configs[] = {
        {"branch", core::HookSet{core::HookKind::If, core::HookKind::BrIf,
                                 core::HookKind::BrTable,
                                 core::HookKind::Select}},
        {"coverage", core::HookSet{core::HookKind::Begin,
                                   core::HookKind::End}},
    };
    std::printf("%-10s %-14s %12s %12s %9s\n", "config", "workload",
                "plain", "optimized", "saved");
    for (const Config &cfg : configs) {
        size_t poly_plain = 0, poly_opt = 0;
        for (const auto &w : suite) {
            OptDelta d = optimizedSizes(w.module, cfg.hooks);
            poly_plain += d.plain;
            poly_opt += d.optimized;
        }
        OptDelta poly{poly_plain, poly_opt};
        std::printf("%-10s %-14s %12zu %12zu %8.2f%%\n", cfg.name,
                    "polybench-sum", poly.plain, poly.optimized,
                    savedPct(poly));
        OptDelta pdf = optimizedSizes(pdfkit.module, cfg.hooks);
        std::printf("%-10s %-14s %12zu %12zu %8.2f%%\n", cfg.name,
                    "pspdfkit-like", pdf.plain, pdf.optimized,
                    savedPct(pdf));
        OptDelta unr = optimizedSizes(unreal.module, cfg.hooks);
        std::printf("%-10s %-14s %12zu %12zu %8.2f%%\n", cfg.name,
                    "unreal-like", unr.plain, unr.optimized,
                    savedPct(unr));
    }
    std::printf("\n(the plan skips hooks in CFG-unreachable code, "
                "drops hooks from call-graph-dead functions, narrows "
                "constant-index br_tables to plain br hooks, and "
                "elides begin/end pairs of empty blocks)\n");
    return 0;
}
