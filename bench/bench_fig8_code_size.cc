/**
 * @file
 * Reproduces **Figure 8** (RQ4, §4.5): binary size increase (percent
 * of the original size) per selectively-instrumented hook, for the
 * PolyBench mean and the two synthetic applications, plus the
 * "all hooks" configuration (paper: 495% - 743%).
 */

#include <cstdio>

#include "bench_common.h"

using namespace wasabi;
using namespace wasabi::bench;

namespace {

double
sizeIncreasePct(const wasm::Module &m, core::HookSet hooks)
{
    size_t base = binarySize(m);
    core::InstrumentResult r = core::instrument(m, hooks);
    size_t inst = binarySize(r.module);
    return 100.0 * (static_cast<double>(inst) - base) / base;
}

} // namespace

int
main(int argc, char **argv)
{
    const int n = argc > 1 ? std::atoi(argv[1]) : 20;

    auto suite = workloads::polybenchSuite(n);
    workloads::Workload pdfkit =
        workloads::syntheticApp(workloads::AppSize::PdfkitLike);
    workloads::Workload unreal =
        workloads::syntheticApp(workloads::AppSize::UnrealLike);

    std::printf("=== Figure 8: binary size increase per instrumented "
                "hook (%% of original size) ===\n\n");
    std::printf("%-12s %16s %16s %16s\n", "hook", "PolyBench(mean)",
                "pspdfkit-like", "unreal-like");

    auto measureSet = [&](core::HookSet set) {
        double poly = 0;
        for (const auto &w : suite)
            poly += sizeIncreasePct(w.module, set);
        poly /= static_cast<double>(suite.size());
        double pdf = sizeIncreasePct(pdfkit.module, set);
        double unr = sizeIncreasePct(unreal.module, set);
        return std::array<double, 3>{poly, pdf, unr};
    };

    for (core::HookKind kind : core::figureOrderHookKinds()) {
        auto v = measureSet(core::HookSet::only(kind));
        std::printf("%-12s %15.1f%% %15.1f%% %15.1f%%\n", name(kind),
                    v[0], v[1], v[2]);
    }
    auto all = measureSet(core::HookSet::all());
    std::printf("%-12s %15.1f%% %15.1f%% %15.1f%%\n", "ALL", all[0],
                all[1], all[2]);
    std::printf("\n(paper: most hooks <10%%; load/store 39-58%%, "
                "begin/end 11-84%%, const 59-71%%, local 128-180%%, "
                "binary 83-190%%; all 495-743%%)\n");
    return 0;
}
