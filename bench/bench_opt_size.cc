/**
 * @file
 * Size impact of the analysis-driven optimizer (`wasabi opt`): for the
 * PolyBench suite, the two synthetic applications, and a
 * random-program corpus with resolvable indirect calls, run all
 * passes, verify every claim with the manifest checker, and report
 * before/after bytes plus per-pass claim counts. Results are pinned in
 * BENCH_opt_size.json (wasabi-profile v1 schema).
 *
 * Usage: bench_opt_size [N] [--json=FILE]
 */

#include <cstdio>
#include <cstring>

#include "bench_common.h"
#include "static/rewrite/opt.h"

using namespace wasabi;
using namespace wasabi::bench;

namespace {

struct Row {
    std::string name;
    size_t before = 0;
    size_t after = 0;
    size_t claims = 0;
};

Row
measure(const workloads::Workload &w)
{
    namespace rw = static_analysis::rewrite;
    Row row;
    row.name = w.name.empty() ? "anon" : w.name;
    std::vector<uint8_t> before = wasm::encodeModule(w.module);
    rw::OptResult r = rw::optimize(w.module, rw::allOptPasses());
    std::vector<uint8_t> after = wasm::encodeModule(r.module);
    // A bench that reports sizes for an unverified transform would be
    // meaningless: re-prove the claims right here.
    static_analysis::Diagnostics ds =
        rw::checkOptimization(w.module, after, r.claims);
    if (!ds.empty())
        throw std::runtime_error(row.name + ": claim check failed:\n" +
                                 static_analysis::toString(ds));
    row.before = before.size();
    row.after = after.size();
    row.claims = r.claims.totalClaims();
    return row;
}

} // namespace

int
main(int argc, char **argv)
{
    int n = 20;
    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--json=", 7) == 0)
            json_path = argv[i] + 7;
        else
            n = std::atoi(argv[i]);
    }

    std::vector<Row> rows;
    std::vector<double> ratios;

    std::printf("=== wasabi opt: verified size reduction "
                "(all passes) ===\n\n");
    std::printf("%-16s %12s %12s %9s %8s\n", "workload", "before",
                "after", "claims", "size");

    auto add = [&](const workloads::Workload &w) {
        Row row = measure(w);
        ratios.push_back(static_cast<double>(row.after) /
                         static_cast<double>(row.before));
        std::printf("%-16s %12zu %12zu %9zu %7.1f%%\n", row.name.c_str(),
                    row.before, row.after, row.claims,
                    100.0 * ratios.back());
        rows.push_back(std::move(row));
    };

    for (const auto &w : workloads::polybenchSuite(n))
        add(w);
    add(workloads::syntheticApp(workloads::AppSize::Small));
    add(workloads::syntheticApp(workloads::AppSize::PdfkitLike));
    add(workloads::syntheticApp(workloads::AppSize::UnrealLike));
    for (uint64_t seed = 7; seed < 10; ++seed) {
        workloads::RandomProgramOptions opts;
        opts.seed = seed;
        opts.numFunctions = 12;
        opts.indirectCallPct = 25;
        opts.constIndexIndirectPct = 50;
        workloads::Workload w = workloads::randomProgram(opts);
        w.name = "random-" + std::to_string(seed);
        add(w);
    }

    double mean_ratio = geomean(ratios);
    std::printf("\ngeomean size ratio: %.4f (%.1f%% saved), every "
                "claim re-proved by the manifest checker\n",
                mean_ratio, 100.0 * (1.0 - mean_ratio));

    if (!json_path.empty()) {
        std::string per = "[";
        for (size_t i = 0; i < rows.size(); ++i) {
            char buf[256];
            std::snprintf(buf, sizeof buf,
                          "%s\n      {\"workload\": \"%s\", \"before\": "
                          "%zu, \"after\": %zu, \"claims\": %zu}",
                          i ? "," : "", rows[i].name.c_str(),
                          rows[i].before, rows[i].after, rows[i].claims);
            per += buf;
        }
        per += "\n    ]";
        char mean[64];
        std::snprintf(mean, sizeof mean, "%.4f", mean_ratio);
        writeBenchProfileJson(json_path, "opt_size",
                              {{"n", std::to_string(n)},
                               {"passes", "8"},
                               {"perWorkload", per},
                               {"geomeanSizeRatio", mean}});
        std::printf("wrote %s\n", json_path.c_str());
    }
    return 0;
}
