/**
 * @file
 * Reproduces **RQ2** (§4.3): faithfulness of execution. Runs every
 * PolyBench kernel, the synthetic apps and a random-program corpus
 * (our stand-in for the Wasm spec test suite) original vs. fully
 * instrumented, compares results and final memories, and validates
 * every instrumented binary (the wasm-validate check).
 */

#include <cstdio>

#include "bench_common.h"

using namespace wasabi;
using namespace wasabi::bench;

namespace {

struct Tally {
    int total = 0;
    int behaviorOk = 0;
    int validatorOk = 0;
};

void
check(Tally &tally, const workloads::Workload &w)
{
    ++tally.total;

    auto orig_inst =
        interp::Instance::instantiate(w.module, interp::Linker());
    interp::Interpreter i1;
    auto expected = i1.invokeExport(*orig_inst, w.entry, w.args);

    core::InstrumentResult r =
        core::instrument(w.module, core::HookSet::all());
    if (validationError(r.module) == std::nullopt)
        ++tally.validatorOk;
    else
        std::printf("  VALIDATION FAILED: %s\n", w.name.c_str());

    runtime::WasabiRuntime rt(r.info);
    EmptyAnalysis empty(core::HookSet::all());
    rt.addAnalysis(&empty);
    auto inst = rt.instantiate(r.module);
    interp::Interpreter i2;
    auto actual = i2.invokeExport(*inst, w.entry, w.args);
    if (expected == actual &&
        orig_inst->memory().raw() == inst->memory().raw()) {
        ++tally.behaviorOk;
    } else {
        std::printf("  BEHAVIOR MISMATCH: %s\n", w.name.c_str());
    }
}

} // namespace

int
main(int argc, char **argv)
{
    const int n = argc > 1 ? std::atoi(argv[1]) : 12;
    const int corpus = argc > 2 ? std::atoi(argv[2]) : 63;

    std::printf("=== RQ2: faithfulness of execution (original vs. "
                "fully instrumented) ===\n\n");

    Tally poly;
    for (const auto &w : workloads::polybenchSuite(n))
        check(poly, w);
    std::printf("PolyBench (n=%d):        %d/%d behavior identical, "
                "%d/%d validate\n",
                n, poly.behaviorOk, poly.total, poly.validatorOk,
                poly.total);

    Tally apps;
    check(apps, workloads::syntheticApp(workloads::AppSize::Small));
    check(apps, workloads::syntheticApp(workloads::AppSize::PdfkitLike));
    std::printf("Synthetic apps:          %d/%d behavior identical, "
                "%d/%d validate\n",
                apps.behaviorOk, apps.total, apps.validatorOk,
                apps.total);

    // The paper additionally validates 63 spec-suite programs; our
    // stand-in is a 63-program random corpus.
    Tally rnd;
    for (int seed = 1; seed <= corpus; ++seed) {
        workloads::RandomProgramOptions opts;
        opts.seed = static_cast<uint64_t>(seed) * 1000003;
        check(rnd, workloads::randomProgram(opts));
    }
    std::printf("Random corpus (%d):      %d/%d behavior identical, "
                "%d/%d validate\n",
                corpus, rnd.behaviorOk, rnd.total, rnd.validatorOk,
                rnd.total);

    bool all_ok =
        poly.behaviorOk == poly.total && poly.validatorOk == poly.total &&
        apps.behaviorOk == apps.total && apps.validatorOk == apps.total &&
        rnd.behaviorOk == rnd.total && rnd.validatorOk == rnd.total;
    std::printf("\nRQ2 verdict: %s (paper: behavior unchanged on all "
                "programs; all instrumented binaries validate)\n",
                all_ok ? "PASS" : "FAIL");
    return all_ok ? 0 : 1;
}
