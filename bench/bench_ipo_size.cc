/**
 * @file
 * Size impact of the interprocedural optimization layer: for every
 * workload, compare the pre-IPO pass list (dead-functions,
 * call-indirect, const-fold, dead-stores, empty-blocks) against the
 * full list that adds ipo-const, inline, and table-compact. Both
 * pipelines are claim-checked; the full list must shrink the encoded
 * module at least as much on geomean. Results are pinned in
 * BENCH_ipo_size.json (wasabi-profile v1 schema).
 *
 * Usage: bench_ipo_size [N] [--json=FILE]
 */

#include <cstdio>
#include <cstring>

#include "bench_common.h"
#include "static/rewrite/opt.h"

using namespace wasabi;
using namespace wasabi::bench;

namespace {

/** The PR-6 pass list, before the IPO layer existed. */
const std::vector<std::string> kOldPasses = {
    "dead-functions", "call-indirect", "const-fold", "dead-stores",
    "empty-blocks"};

struct Row {
    std::string name;
    size_t before = 0;
    size_t afterOld = 0;
    size_t afterNew = 0;
    size_t ipoClaims = 0;
};

Row
measure(const workloads::Workload &w)
{
    namespace rw = static_analysis::rewrite;
    Row row;
    row.name = w.name.empty() ? "anon" : w.name;
    row.before = wasm::encodeModule(w.module).size();

    rw::OptResult old_r = rw::optimize(w.module, kOldPasses);
    row.afterOld = wasm::encodeModule(old_r.module).size();

    rw::OptResult new_r = rw::optimize(w.module, rw::allOptPasses());
    std::vector<uint8_t> after = wasm::encodeModule(new_r.module);
    // Sizes for an unverified transform would be meaningless:
    // re-prove the full-list claims right here.
    static_analysis::Diagnostics ds =
        rw::checkOptimization(w.module, after, new_r.claims);
    if (!ds.empty())
        throw std::runtime_error(row.name + ": claim check failed:\n" +
                                 static_analysis::toString(ds));
    row.afterNew = after.size();
    row.ipoClaims = new_r.claims.ipoConstArgs.size() +
        new_r.claims.ipoConstReturns.size() +
        new_r.claims.inlinedCalls.size() +
        new_r.claims.inlineStripped.size() +
        new_r.claims.tableSlots.size() +
        new_r.claims.tableIndexRewrites.size() +
        new_r.claims.tableStripped.size();
    return row;
}

} // namespace

int
main(int argc, char **argv)
{
    int n = 20;
    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--json=", 7) == 0)
            json_path = argv[i] + 7;
        else
            n = std::atoi(argv[i]);
    }

    std::vector<Row> rows;
    std::vector<double> old_ratios, new_ratios;

    std::printf("=== wasabi opt: IPO layer size impact "
                "(5-pass list vs full list) ===\n\n");
    std::printf("%-16s %12s %12s %12s %10s\n", "workload", "before",
                "old-5", "full-8", "ipoClaims");

    auto add = [&](const workloads::Workload &w) {
        Row row = measure(w);
        old_ratios.push_back(static_cast<double>(row.afterOld) /
                             static_cast<double>(row.before));
        new_ratios.push_back(static_cast<double>(row.afterNew) /
                             static_cast<double>(row.before));
        std::printf("%-16s %12zu %12zu %12zu %10zu\n", row.name.c_str(),
                    row.before, row.afterOld, row.afterNew,
                    row.ipoClaims);
        rows.push_back(std::move(row));
    };

    for (const auto &w : workloads::polybenchSuite(n))
        add(w);
    add(workloads::syntheticApp(workloads::AppSize::Small));
    add(workloads::syntheticApp(workloads::AppSize::PdfkitLike));
    add(workloads::syntheticApp(workloads::AppSize::UnrealLike));
    for (uint64_t seed = 7; seed < 10; ++seed) {
        workloads::RandomProgramOptions opts;
        opts.seed = seed;
        opts.numFunctions = 12;
        opts.indirectCallPct = 25;
        opts.constIndexIndirectPct = 50;
        workloads::Workload w = workloads::randomProgram(opts);
        w.name = "random-" + std::to_string(seed);
        add(w);
    }

    double old_mean = geomean(old_ratios);
    double new_mean = geomean(new_ratios);
    std::printf("\ngeomean size ratio: old list %.4f, full list %.4f "
                "(IPO layer saves another %.2f%%); every full-list "
                "claim re-proved by the manifest checker\n",
                old_mean, new_mean, 100.0 * (old_mean - new_mean));
    if (new_mean > old_mean) {
        std::fprintf(stderr,
                     "FAIL: full pass list shrinks less than the old "
                     "list on geomean (%.4f > %.4f)\n",
                     new_mean, old_mean);
        return 1;
    }

    if (!json_path.empty()) {
        std::string per = "[";
        for (size_t i = 0; i < rows.size(); ++i) {
            char buf[320];
            std::snprintf(
                buf, sizeof buf,
                "%s\n      {\"workload\": \"%s\", \"before\": %zu, "
                "\"afterOldPasses\": %zu, \"afterFullPasses\": %zu, "
                "\"ipoClaims\": %zu}",
                i ? "," : "", rows[i].name.c_str(), rows[i].before,
                rows[i].afterOld, rows[i].afterNew, rows[i].ipoClaims);
            per += buf;
        }
        per += "\n    ]";
        char old_buf[64], new_buf[64];
        std::snprintf(old_buf, sizeof old_buf, "%.4f", old_mean);
        std::snprintf(new_buf, sizeof new_buf, "%.4f", new_mean);
        writeBenchProfileJson(json_path, "ipo_size",
                              {{"n", std::to_string(n)},
                               {"oldPasses", "5"},
                               {"fullPasses", "8"},
                               {"perWorkload", per},
                               {"geomeanSizeRatioOldPasses", old_buf},
                               {"geomeanSizeRatioFullPasses", new_buf}});
        std::printf("wrote %s\n", json_path.c_str());
    }
    return 0;
}
