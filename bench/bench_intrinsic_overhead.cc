/**
 * @file
 * Figure-9-style overhead comparison of the two instrumentation modes
 * (DESIGN.md §13): for each selectively instrumented hook kind, the
 * runtime of (a) the AOT-rewritten module and (b) the engine-intrinsic
 * run, both relative to the uninstrumented fast-engine baseline, with
 * an empty analysis attached. Intrinsic mode dispatches hooks straight
 * from the fast engine's inner loop — no low-level hook imports, no
 * host-call transitions, no i64 splitting — so its overhead should sit
 * strictly below rewrite mode, most visibly for the memory-access and
 * call hook kinds where rewrite mode pays one host call per event.
 */

#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "core/intrinsic_info.h"
#include "wasm/builder.h"

using namespace wasabi;
using namespace wasabi::bench;

namespace {

double
median3(double a, double b, double c)
{
    if (a > b)
        std::swap(a, b);
    if (b > c)
        std::swap(b, c);
    if (a > b)
        std::swap(a, b);
    return b;
}

/** Median-of-3 seconds of the AOT-rewritten module on the fast engine
 * (one instrumentation shared across the repetitions). */
double
rewriteSeconds(const workloads::Workload &w, core::HookSet hooks)
{
    core::InstrumentResult r = core::instrument(w.module, hooks);
    runtime::WasabiRuntime rt(r.info);
    EmptyAnalysis empty(hooks);
    rt.addAnalysis(&empty);
    interp::Interpreter interp;
    interp.engine = interp::EngineKind::Fast;
    auto once = [&] {
        auto inst = rt.instantiate(r.module);
        return timeSeconds(
            [&] { interp.invokeExport(*inst, w.entry, w.args); });
    };
    return median3(once(), once(), once());
}

/** Median-of-3 seconds of the original module with engine-intrinsic
 * hooks (one side-table build shared across the repetitions). */
double
intrinsicSeconds(const workloads::Workload &w, core::HookSet hooks)
{
    auto info = core::buildIntrinsicInfo(w.module, hooks);
    runtime::WasabiRuntime rt(info);
    EmptyAnalysis empty(hooks);
    rt.addAnalysis(&empty);
    interp::Interpreter interp;
    interp.engine = interp::EngineKind::Fast;
    auto once = [&] {
        auto inst = rt.instantiateIntrinsic(w.module);
        return timeSeconds(
            [&] { interp.invokeExport(*inst, w.entry, w.args); });
    };
    return median3(once(), once(), once());
}

/** Median-of-5 uninstrumented fast-engine seconds. */
double
baselineSeconds(const workloads::Workload &w)
{
    std::vector<double> t;
    for (int i = 0; i < 5; ++i)
        t.push_back(runOriginalSeconds(w, interp::EngineKind::Fast));
    std::sort(t.begin(), t.end());
    return t[2];
}

/** A loop that is almost nothing but direct calls — the workload on
 * which the per-call cost of the two modes actually dominates (the
 * PolyBench kernels and even the synthetic app execute too few calls
 * per retired instruction to lift call-hook overhead above noise). */
workloads::Workload
callHeavyWorkload(int iterations)
{
    wasm::ModuleBuilder mb;
    const wasm::FuncType callee_ty({wasm::ValType::I32, wasm::ValType::I32},
                                   {wasm::ValType::I32});
    uint32_t callee =
        mb.addFunction(callee_ty, "", [](wasm::FunctionBuilder &f) {
            f.localGet(0).localGet(1).op(wasm::Opcode::I32Add);
        });
    const wasm::FuncType main_ty({}, {wasm::ValType::I32});
    mb.addFunction(main_ty, "kernel", [&](wasm::FunctionBuilder &f) {
        uint32_t i = f.addLocal(wasm::ValType::I32);
        uint32_t acc = f.addLocal(wasm::ValType::I32);
        f.forLoop(i, 0, iterations, [&] {
            f.localGet(acc).localGet(i).call(callee).localSet(acc);
        });
        f.localGet(acc);
    });
    workloads::Workload w;
    w.name = "call-heavy";
    w.module = mb.build();
    return w;
}

bool
isMemoryAccessKind(core::HookKind kind)
{
    return kind == core::HookKind::Load || kind == core::HookKind::Store ||
           kind == core::HookKind::MemorySize ||
           kind == core::HookKind::MemoryGrow;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> positional;
    std::string json_out;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a.rfind("--json=", 0) == 0)
            json_out = a.substr(7);
        else
            positional.push_back(a);
    }
    const int n = positional.size() > 0 ? std::atoi(positional[0].c_str())
                                        : 40;
    const int poly_subset =
        positional.size() > 1 ? std::atoi(positional[1].c_str()) : 6;

    // A kernel subset spanning blas / solver / stencil categories keeps
    // the 21-hook sweep affordable (same sampling as bench_fig9); the
    // pspdfkit-like app rides along so the call hook kind is measured
    // on a call-dense workload, not just loop-dominated kernels.
    std::vector<workloads::Workload> poly;
    {
        auto names = workloads::polybenchNames();
        for (size_t i = 0;
             i < names.size() &&
             poly.size() < static_cast<size_t>(poly_subset);
             i += names.size() / poly_subset) {
            poly.push_back(workloads::polybench(names[i], n));
        }
    }
    const size_t poly_count = poly.size();
    poly.push_back(workloads::syntheticApp(workloads::AppSize::PdfkitLike));
    poly.push_back(callHeavyWorkload(300000));

    std::printf("=== Instrumentation-mode overhead per hook kind "
                "(empty analysis, fast engine) ===\n");
    std::printf("PolyBench n=%d (%zu kernels) plus pspdfkit-like app "
                "and a call-heavy loop; relative to the uninstrumented "
                "fast engine\n\n",
                n, poly_count);
    std::printf("%-12s %12s %12s %10s\n", "hook", "rewrite",
                "intrinsic", "ratio");
    std::fflush(stdout);

    std::vector<double> base;
    for (const auto &w : poly)
        base.push_back(baselineSeconds(w));

    std::string rows_json;
    std::vector<double> rewrite_all, intrinsic_all;
    std::vector<double> rewrite_mem, intrinsic_mem;
    std::vector<double> rewrite_call, intrinsic_call;
    for (core::HookKind kind : core::figureOrderHookKinds()) {
        core::HookSet set = core::HookSet::only(kind);
        std::vector<double> rw, in;
        for (size_t i = 0; i < poly.size(); ++i) {
            rw.push_back(rewriteSeconds(poly[i], set) / base[i]);
            in.push_back(intrinsicSeconds(poly[i], set) / base[i]);
        }
        double rw_geo = geomean(rw);
        double in_geo = geomean(in);
        rewrite_all.push_back(rw_geo);
        intrinsic_all.push_back(in_geo);
        if (isMemoryAccessKind(kind)) {
            rewrite_mem.push_back(rw_geo);
            intrinsic_mem.push_back(in_geo);
        }
        if (kind == core::HookKind::Call) {
            rewrite_call.push_back(rw_geo);
            intrinsic_call.push_back(in_geo);
        }
        std::printf("%-12s %11.2fx %11.2fx %9.2fx\n", name(kind),
                    rw_geo, in_geo, in_geo > 0 ? rw_geo / in_geo : 0);
        std::fflush(stdout);
        char row[160];
        std::snprintf(row, sizeof row,
                      "%s\n      {\"hook\": \"%s\", \"rewrite\": %.4f, "
                      "\"intrinsic\": %.4f}",
                      rows_json.empty() ? "" : ",", name(kind), rw_geo,
                      in_geo);
        rows_json += row;
    }

    // The "all hooks" row, per mode.
    core::HookSet all = core::HookSet::all();
    std::vector<double> rw_all_rel, in_all_rel;
    for (size_t i = 0; i < poly.size(); ++i) {
        rw_all_rel.push_back(rewriteSeconds(poly[i], all) / base[i]);
        in_all_rel.push_back(intrinsicSeconds(poly[i], all) / base[i]);
    }
    double rw_all = geomean(rw_all_rel);
    double in_all = geomean(in_all_rel);
    std::printf("%-12s %11.2fx %11.2fx %9.2fx\n", "ALL", rw_all, in_all,
                in_all > 0 ? rw_all / in_all : 0);

    double rw_mem_geo = geomean(rewrite_mem);
    double in_mem_geo = geomean(intrinsic_mem);
    double rw_call_geo = geomean(rewrite_call);
    double in_call_geo = geomean(intrinsic_call);
    bool mem_ok = in_mem_geo < rw_mem_geo;
    bool call_ok = in_call_geo < rw_call_geo;
    std::printf("\nmemory-access geomean: rewrite %.2fx, intrinsic "
                "%.2fx  [%s]\n",
                rw_mem_geo, in_mem_geo, mem_ok ? "intrinsic wins" : "!!");
    std::printf("call geomean:          rewrite %.2fx, intrinsic "
                "%.2fx  [%s]\n",
                rw_call_geo, in_call_geo,
                call_ok ? "intrinsic wins" : "!!");
    std::printf("all-kind geomean:      rewrite %.2fx, intrinsic "
                "%.2fx\n",
                geomean(rewrite_all), geomean(intrinsic_all));

    if (!json_out.empty()) {
        char summary[512];
        std::snprintf(
            summary, sizeof summary,
            "{\"rewrite\": {\"all\": %.4f, \"memoryAccess\": %.4f, "
            "\"call\": %.4f}, \"intrinsic\": {\"all\": %.4f, "
            "\"memoryAccess\": %.4f, \"call\": %.4f}}",
            geomean(rewrite_all), rw_mem_geo, rw_call_geo,
            geomean(intrinsic_all), in_mem_geo, in_call_geo);
        char all_row[128];
        std::snprintf(all_row, sizeof all_row,
                      "{\"rewrite\": %.4f, \"intrinsic\": %.4f}", rw_all,
                      in_all);
        writeBenchProfileJson(
            json_out, "intrinsic_overhead",
            {{"n", std::to_string(n)},
             {"polybenchKernels", std::to_string(poly_count)},
             {"extraWorkloads",
              "[\"pspdfkit-like\", \"call-heavy\"]"},
             {"perHook", "[" + rows_json + "\n    ]"},
             {"all", all_row},
             {"geomeans", summary},
             {"intrinsicBelowRewrite",
              std::string("{\"memoryAccess\": ") +
                  (mem_ok ? "true" : "false") +
                  ", \"call\": " + (call_ok ? "true" : "false") + "}"}});
        std::printf("wrote %s\n", json_out.c_str());
    }
    // The acceptance criterion this bench pins: intrinsic dispatch must
    // be strictly cheaper than rewrite-mode host calls for the
    // memory-access and call hook kinds.
    return mem_ok && call_ok ? 0 : 1;
}
