/**
 * @file
 * Google-benchmark microbenchmarks for the toolchain components that
 * the paper's Table 5 timing decomposes into: decode, validate,
 * instrument (selective and full, sequential and parallel), encode,
 * and interpreter throughput.
 */

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "wasm/decoder.h"

using namespace wasabi;
using namespace wasabi::bench;

namespace {

const wasm::Module &
appModule()
{
    static const wasm::Module m =
        workloads::syntheticApp(workloads::AppSize::PdfkitLike).module;
    return m;
}

const std::vector<uint8_t> &
appBytes()
{
    static const std::vector<uint8_t> bytes =
        wasm::encodeModule(appModule());
    return bytes;
}

void
BM_Decode(benchmark::State &state)
{
    const auto &bytes = appBytes();
    for (auto _ : state) {
        wasm::Module m = wasm::decodeModule(bytes);
        benchmark::DoNotOptimize(m.functions.size());
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(bytes.size()));
}
BENCHMARK(BM_Decode);

void
BM_Encode(benchmark::State &state)
{
    const wasm::Module &m = appModule();
    for (auto _ : state) {
        auto bytes = wasm::encodeModule(m);
        benchmark::DoNotOptimize(bytes.size());
    }
}
BENCHMARK(BM_Encode);

void
BM_Validate(benchmark::State &state)
{
    const wasm::Module &m = appModule();
    for (auto _ : state) {
        wasm::validateModule(m);
    }
}
BENCHMARK(BM_Validate);

void
BM_InstrumentFull(benchmark::State &state)
{
    const wasm::Module &m = appModule();
    core::InstrumentOptions opts;
    opts.numThreads = static_cast<unsigned>(state.range(0));
    for (auto _ : state) {
        auto r = core::instrument(m, core::HookSet::all(), opts);
        benchmark::DoNotOptimize(r.info->hooks.size());
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(appBytes().size()));
}
BENCHMARK(BM_InstrumentFull)->Arg(1)->Arg(2)->Arg(4);

void
BM_InstrumentSelectiveCall(benchmark::State &state)
{
    const wasm::Module &m = appModule();
    for (auto _ : state) {
        auto r =
            core::instrument(m, core::HookSet::only(core::HookKind::Call));
        benchmark::DoNotOptimize(r.module.numFunctions());
    }
}
BENCHMARK(BM_InstrumentSelectiveCall);

void
BM_InterpreterGemm(benchmark::State &state)
{
    workloads::Workload w =
        workloads::polybench("gemm", static_cast<int>(state.range(0)));
    auto inst = interp::Instance::instantiate(w.module, interp::Linker());
    interp::Interpreter interp;
    for (auto _ : state) {
        auto results = interp.invokeExport(*inst, w.entry, w.args);
        benchmark::DoNotOptimize(results[0].f64());
    }
}
BENCHMARK(BM_InterpreterGemm)->Arg(8)->Arg(16);

void
BM_HookDispatch(benchmark::State &state)
{
    // Cost of one fully-instrumented hot loop with an empty analysis.
    workloads::Workload w = workloads::polybench("jacobi-1d", 32);
    core::InstrumentResult r =
        core::instrument(w.module, core::HookSet::all());
    runtime::WasabiRuntime rt(r.info);
    EmptyAnalysis empty(core::HookSet::all());
    rt.addAnalysis(&empty);
    auto inst = rt.instantiate(r.module);
    interp::Interpreter interp;
    for (auto _ : state) {
        auto results = interp.invokeExport(*inst, w.entry, w.args);
        benchmark::DoNotOptimize(results[0].f64());
    }
}
BENCHMARK(BM_HookDispatch);

} // namespace

BENCHMARK_MAIN();
