/**
 * @file
 * Reproduces **Table 5** (RQ3, §4.4): time to instrument programs,
 * averaged over repeated runs, with binary size and throughput (MB/s),
 * for the PolyBench suite and the two large synthetic applications.
 * Also reports the single- vs multi-threaded instrumentation time,
 * reproducing the parallelization note of §4.4 (0.58x of the
 * single-threaded time on the largest binary).
 */

#include <cstdio>
#include <thread>

#include "bench_common.h"
#include "static/interproc/refined_call_graph.h"
#include "static/interproc/summaries.h"

using namespace wasabi;
using namespace wasabi::bench;

namespace {

struct Row {
    std::string name;
    size_t bytes = 0;
    Stats time;
};

Row
measure(const std::string &name, const wasm::Module &m, int reps,
        unsigned threads)
{
    Row row;
    row.name = name;
    row.bytes = binarySize(m);
    core::InstrumentOptions opts;
    opts.numThreads = threads;
    row.time = timeStats(reps, [&] {
        core::instrument(m, core::HookSet::all(), opts);
    });
    return row;
}

void
printRow(const Row &row)
{
    std::printf("%-16s %12s   %8.2f ms +- %.2f   %6.2f MB/s\n",
                row.name.c_str(), humanBytes(row.bytes).c_str(),
                row.time.mean * 1e3, row.time.stddev * 1e3,
                row.bytes / 1048576.0 / row.time.mean);
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> positional;
    std::string json_out;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a.rfind("--json=", 0) == 0)
            json_out = a.substr(7);
        else
            positional.push_back(a);
    }
    const int reps =
        positional.size() > 0 ? std::atoi(positional[0].c_str()) : 10;
    const int n =
        positional.size() > 1 ? std::atoi(positional[1].c_str()) : 20;
    const unsigned hw_threads =
        std::max(2u, std::thread::hardware_concurrency());

    std::printf("=== Table 5: time to instrument programs "
                "(full instrumentation, %d reps) ===\n\n",
                reps);
    std::printf("%-16s %12s   %-22s %s\n", "Program", "Binary Size",
                "Runtime", "Throughput");

    // PolyBench, averaged across the 30 programs as in the paper.
    auto suite = workloads::polybenchSuite(n);
    double total_bytes = 0, total_time = 0, total_sd = 0;
    for (const auto &w : suite) {
        Row r = measure(w.name, w.module, reps, 1);
        total_bytes += static_cast<double>(r.bytes);
        total_time += r.time.mean;
        total_sd += r.time.stddev;
    }
    std::printf("%-16s %12s   %8.2f ms +- %.2f   %6.2f MB/s  "
                "(mean of 30 programs)\n",
                "PolyBench (avg)",
                humanBytes(static_cast<size_t>(total_bytes / 30)).c_str(),
                total_time / 30 * 1e3, total_sd / 30 * 1e3,
                total_bytes / 1048576.0 / total_time);

    workloads::Workload pdfkit =
        workloads::syntheticApp(workloads::AppSize::PdfkitLike);
    Row pdfkit_row = measure(pdfkit.name, pdfkit.module, reps, 1);
    printRow(pdfkit_row);

    workloads::Workload unreal =
        workloads::syntheticApp(workloads::AppSize::UnrealLike);
    Row unreal_1t = measure(unreal.name, unreal.module, reps, 1);
    printRow(unreal_1t);

    std::printf("\n--- Parallel instrumentation (largest binary, "
                "%u threads) ---\n",
                hw_threads);
    Row unreal_mt =
        measure(unreal.name, unreal.module, reps, hw_threads);
    std::printf("single-threaded: %.2f ms, %u threads: %.2f ms "
                "(ratio %.2f; paper reports 0.58 on 2 cores)\n",
                unreal_1t.time.mean * 1e3, hw_threads,
                unreal_mt.time.mean * 1e3,
                unreal_mt.time.mean / unreal_1t.time.mean);
    std::printf("note: this host exposes %u hardware thread(s); a "
                "ratio below 1 requires >1 physical core.\n",
                std::thread::hardware_concurrency());

    // Thread scaling of the interprocedural summary solver over the
    // same largest binary: the refined call graph is built once (it is
    // sequential by design); only the SCC-condensation solve is timed.
    std::printf("\n--- Summary solver thread scaling (largest binary) "
                "---\n");
    static_analysis::interproc::RefinedCallGraph rcg(unreal.module);
    double base = 0;
    for (unsigned workers : {1u, 2u, 4u, 8u}) {
        Stats s = timeStats(reps, [&] {
            static_analysis::interproc::functionSummaries(
                unreal.module, rcg, workers);
        });
        if (workers == 1)
            base = s.mean;
        std::printf("workers=%u: %8.2f ms +- %.2f  (speedup %.2fx)\n",
                    workers, s.mean * 1e3, s.stddev * 1e3,
                    base / s.mean);
    }

    if (!json_out.empty()) {
        char buf[256];
        std::snprintf(buf, sizeof buf,
                      "{\"polybenchMeanMs\": %.4f, \"pdfkitMs\": %.4f, "
                      "\"unrealMs\": %.4f, \"unrealParallelMs\": %.4f, "
                      "\"parallelRatio\": %.4f, \"threads\": %u}",
                      total_time / 30 * 1e3, pdfkit_row.time.mean * 1e3,
                      unreal_1t.time.mean * 1e3,
                      unreal_mt.time.mean * 1e3,
                      unreal_mt.time.mean / unreal_1t.time.mean,
                      hw_threads);
        writeBenchProfileJson(json_out, "table5_instrument_time",
                              {{"reps", std::to_string(reps)},
                               {"results", buf}});
        std::printf("wrote %s\n", json_out.c_str());
    }
    return 0;
}
