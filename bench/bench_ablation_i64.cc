/**
 * @file
 * Ablation: the cost of the paper's JS-compatible i64-splitting hook
 * ABI (§2.4.6) versus a native-i64 ABI that a C++-hosted runtime could
 * use (`InstrumentOptions::splitI64 = false`). Measured on an
 * i64-heavy mixing kernel with the binary/const/local hooks — the ones
 * whose arguments actually carry i64 values.
 */

#include <cstdio>

#include "bench_common.h"
#include "wasm/builder.h"

using namespace wasabi;
using namespace wasabi::bench;

namespace {

/** An i64-heavy kernel: a 64-bit mix/rotate/multiply loop. */
workloads::Workload
i64Kernel(int iters)
{
    wasm::ModuleBuilder mb;
    using wasm::Opcode;
    using wasm::ValType;
    mb.addFunction(
        wasm::FuncType({}, {ValType::I64}), "kernel",
        [&](wasm::FunctionBuilder &f) {
            uint32_t i = f.addLocal(ValType::I32);
            uint32_t h = f.addLocal(ValType::I64);
            f.i64Const(0x9E3779B97F4A7C15ll).localSet(h);
            f.forLoop(i, 0, iters, [&] {
                f.localGet(h).i64Const(31).op(Opcode::I64Rotl);
                f.localGet(h).op(Opcode::I64Xor).localSet(h);
                f.localGet(h).i64Const(0xBF58476D1CE4E5B9ll);
                f.op(Opcode::I64Mul).localSet(h);
                f.localGet(h).i64Const(27).op(Opcode::I64ShrU);
                f.localGet(h).op(Opcode::I64Add).localSet(h);
            });
            f.localGet(h);
        });
    workloads::Workload w;
    w.name = "i64-mix";
    w.module = mb.build();
    w.entry = "kernel";
    return w;
}

struct AblationRow {
    size_t bytes;
    double seconds;
};

AblationRow
measure(const workloads::Workload &w, core::HookSet hooks, bool split)
{
    core::InstrumentOptions opts;
    opts.splitI64 = split;
    core::InstrumentResult r = core::instrument(w.module, hooks, opts);
    AblationRow row;
    row.bytes = binarySize(r.module);
    runtime::WasabiRuntime rt(r.info);
    EmptyAnalysis empty(hooks);
    rt.addAnalysis(&empty);
    interp::Interpreter interp;
    auto once = [&] {
        auto inst = rt.instantiate(r.module);
        return timeSeconds(
            [&] { interp.invokeExport(*inst, w.entry, w.args); });
    };
    double a = once(), b = once(), c = once();
    row.seconds = std::min(std::min(a, b), c);
    return row;
}

} // namespace

int
main(int argc, char **argv)
{
    const int iters = argc > 1 ? std::atoi(argv[1]) : 20000;
    workloads::Workload w = i64Kernel(iters);
    size_t base_size = binarySize(w.module);
    double base_time = runOriginalSeconds(w);

    std::printf("=== Ablation: i64 split ABI (paper default) vs native "
                "i64 ABI ===\n");
    std::printf("i64 mixing kernel, %d iterations; hooks: "
                "const+binary+local (i64-carrying)\n\n",
                iters);
    core::HookSet hooks{core::HookKind::Const, core::HookKind::Binary,
                        core::HookKind::Local};

    AblationRow split = measure(w, hooks, true);
    AblationRow native = measure(w, hooks, false);

    std::printf("%-14s %12s %14s %12s\n", "ABI", "binary size",
                "size overhead", "runtime");
    std::printf("%-14s %12s %13.1f%% %11.2fx\n", "(uninstrumented)",
                humanBytes(base_size).c_str(), 0.0, 1.0);
    std::printf("%-14s %12s %13.1f%% %11.2fx\n", "split (paper)",
                humanBytes(split.bytes).c_str(),
                100.0 * (split.bytes - base_size) / base_size,
                split.seconds / base_time);
    std::printf("%-14s %12s %13.1f%% %11.2fx\n", "native i64",
                humanBytes(native.bytes).c_str(),
                100.0 * (native.bytes - base_size) / base_size,
                native.seconds / base_time);
    std::printf("\nsplit/native size ratio: %.2f, runtime ratio: %.2f\n"
                "(the split ABI pays wrap/shift sequences per i64 hook "
                "argument — the price of JS interoperability the paper "
                "accepts by design)\n",
                static_cast<double>(split.bytes) / native.bytes,
                split.seconds / native.seconds);
    return 0;
}
