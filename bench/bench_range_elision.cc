/**
 * @file
 * Execution-time impact of verified bounds-check elision: for each
 * PolyBench kernel, derive the provable range claims, run the fast
 * engine once with every bounds check in place and once with the
 * claimed checks elided, verify the two runs are observationally
 * identical (results, final memory, instruction counts), and report
 * the per-kernel speedup plus how many dynamic accesses ran
 * unchecked. Results are pinned in BENCH_range_elision.json
 * (wasabi-profile v1 schema).
 *
 * Usage: bench_range_elision [N] [--json=FILE]
 */

#include <cstdio>
#include <cstring>
#include <unordered_set>

#include "bench_common.h"
#include "core/static_info.h"
#include "interp/engine/code.h"
#include "static/passes/range.h"

using namespace wasabi;
using namespace wasabi::bench;

namespace {

struct Row {
    std::string name;
    size_t claims = 0;         ///< statically proven access sites
    uint64_t memoryOps = 0;    ///< dynamic accesses per run
    uint64_t elidedOps = 0;    ///< of which unchecked in the elided run
    double checkedSec = 0;
    double elidedSec = 0;
};

std::unordered_set<uint64_t>
elisionLocs(const wasm::Module &m, size_t *num_claims)
{
    using namespace static_analysis::passes;
    RangeClaims claims = provableRangeClaims(moduleRanges(m));
    *num_claims = claims.claims.size();
    std::unordered_set<uint64_t> locs;
    for (const RangeClaim &c : claims.claims)
        locs.insert(core::packLoc({c.func, c.instr}));
    return locs;
}

/** One full run; returns final memory for the identity check. */
std::vector<uint8_t>
runOnce(const workloads::Workload &w,
        const std::unordered_set<uint64_t> *elide, interp::ExecStats *out)
{
    auto inst = interp::Instance::instantiate(w.module, interp::Linker());
    if (elide)
        inst->engineCode().setElisions(*elide);
    interp::Interpreter interp;
    interp.engine = interp::EngineKind::Fast;
    interp.invokeExport(*inst, w.entry, w.args);
    if (out)
        *out = interp.stats();
    return inst->memory().raw();
}

Row
measure(const workloads::Workload &w, int reps)
{
    Row row;
    row.name = w.name.empty() ? "anon" : w.name;
    std::unordered_set<uint64_t> locs = elisionLocs(w.module, &row.claims);

    // Differential gate first: a speedup number for a run that
    // diverged from the checked engine would be meaningless.
    interp::ExecStats checked, elided;
    std::vector<uint8_t> memChecked = runOnce(w, nullptr, &checked);
    std::vector<uint8_t> memElided = runOnce(w, &locs, &elided);
    if (memChecked != memElided ||
        checked.instructions != elided.instructions ||
        checked.memoryOps != elided.memoryOps)
        throw std::runtime_error(row.name +
                                 ": elided run diverged from checked");
    row.memoryOps = checked.memoryOps;
    row.elidedOps = elided.memoryOpsElided;

    row.checkedSec =
        timeStats(reps, [&] { runOnce(w, nullptr, nullptr); }).mean;
    row.elidedSec =
        timeStats(reps, [&] { runOnce(w, &locs, nullptr); }).mean;
    return row;
}

} // namespace

int
main(int argc, char **argv)
{
    int n = 24;
    int reps = 5;
    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--json=", 7) == 0)
            json_path = argv[i] + 7;
        else
            n = std::atoi(argv[i]);
    }

    std::printf("=== verified bounds-check elision: runtime impact "
                "(fast engine, n=%d) ===\n\n",
                n);
    std::printf("%-16s %7s %12s %12s %10s %10s %8s\n", "kernel",
                "claims", "memOps", "elided", "checked", "elided",
                "speedup");

    std::vector<Row> rows;
    std::vector<double> speedups;
    uint64_t total_elided = 0;
    for (const auto &w : workloads::polybenchSuite(n)) {
        Row row = measure(w, reps);
        double speedup =
            row.elidedSec > 0 ? row.checkedSec / row.elidedSec : 1.0;
        speedups.push_back(speedup);
        total_elided += row.elidedOps;
        std::printf("%-16s %7zu %12llu %12llu %9.2fms %9.2fms %7.3fx\n",
                    row.name.c_str(), row.claims,
                    static_cast<unsigned long long>(row.memoryOps),
                    static_cast<unsigned long long>(row.elidedOps),
                    1e3 * row.checkedSec, 1e3 * row.elidedSec, speedup);
        rows.push_back(std::move(row));
    }

    double mean_speedup = geomean(speedups);
    std::printf("\ngeomean speedup: %.3fx; %llu accesses ran unchecked; "
                "every elided run byte-compared against the checked "
                "engine\n",
                mean_speedup,
                static_cast<unsigned long long>(total_elided));

    if (!json_path.empty()) {
        std::string per = "[";
        for (size_t i = 0; i < rows.size(); ++i) {
            char buf[320];
            std::snprintf(
                buf, sizeof buf,
                "%s\n      {\"kernel\": \"%s\", \"claims\": %zu, "
                "\"memoryOps\": %llu, \"elidedOps\": %llu, "
                "\"checkedSec\": %.6f, \"elidedSec\": %.6f}",
                i ? "," : "", rows[i].name.c_str(), rows[i].claims,
                static_cast<unsigned long long>(rows[i].memoryOps),
                static_cast<unsigned long long>(rows[i].elidedOps),
                rows[i].checkedSec, rows[i].elidedSec);
            per += buf;
        }
        per += "\n    ]";
        char mean[64];
        std::snprintf(mean, sizeof mean, "%.4f", mean_speedup);
        writeBenchProfileJson(
            json_path, "range_elision",
            {{"n", std::to_string(n)},
             {"reps", std::to_string(reps)},
             {"totalElidedOps", std::to_string(total_elided)},
             {"perKernel", per},
             {"geomeanSpeedup", mean}});
        std::printf("wrote %s\n", json_path.c_str());
    }
    return 0;
}
