/**
 * @file
 * Reproduces **Figure 9** (RQ5, §4.6): runtime of the instrumented
 * program relative to the uninstrumented one, per selectively
 * instrumented hook, with an empty analysis attached — for the
 * PolyBench mean and the two synthetic applications — plus the
 * "all hooks" geomean (paper: 49x - 163x overall).
 */

#include <algorithm>
#include <cstdio>

#include "bench_common.h"

using namespace wasabi;
using namespace wasabi::bench;

namespace {

double
median3(double a, double b, double c)
{
    if (a > b)
        std::swap(a, b);
    if (b > c)
        std::swap(b, c);
    if (a > b)
        std::swap(a, b);
    return b;
}

double
instrumentedSeconds(const workloads::Workload &w, core::HookSet hooks)
{
    // Reuse one instrumentation result across the three repetitions.
    core::InstrumentResult r = core::instrument(w.module, hooks);
    runtime::WasabiRuntime rt(r.info);
    EmptyAnalysis empty(hooks);
    rt.addAnalysis(&empty);
    interp::Interpreter interp;
    auto once = [&] {
        auto inst = rt.instantiate(r.module);
        return timeSeconds(
            [&] { interp.invokeExport(*inst, w.entry, w.args); });
    };
    return median3(once(), once(), once());
}

/** Median-of-5 baseline seconds of a workload, measured once. */
double
baselineSeconds(const workloads::Workload &w)
{
    std::vector<double> t;
    for (int i = 0; i < 5; ++i)
        t.push_back(runOriginalSeconds(w));
    std::sort(t.begin(), t.end());
    return t[2];
}

/** Median-of-3 uninstrumented seconds on a specific engine. */
double
engineSeconds(const workloads::Workload &w, interp::EngineKind engine)
{
    return median3(runOriginalSeconds(w, engine),
                   runOriginalSeconds(w, engine),
                   runOriginalSeconds(w, engine));
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> positional;
    std::string json_out;
    bool engines_only = false;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a.rfind("--json=", 0) == 0)
            json_out = a.substr(7);
        else if (a == "--engines-only")
            engines_only = true;
        else
            positional.push_back(a);
    }
    const int n = positional.size() > 0 ? std::atoi(positional[0].c_str())
                                        : 14;
    const int poly_subset =
        positional.size() > 1 ? std::atoi(positional[1].c_str()) : 10;

    // A subset of PolyBench keeps the total bench time manageable; the
    // subset spans blas / solver / stencil categories.
    std::vector<workloads::Workload> poly;
    {
        auto names = workloads::polybenchNames();
        for (size_t i = 0;
             i < names.size() && poly.size() <
                 static_cast<size_t>(poly_subset);
             i += names.size() / poly_subset) {
            poly.push_back(workloads::polybench(names[i], n));
        }
    }
    workloads::Workload pdfkit =
        workloads::syntheticApp(workloads::AppSize::PdfkitLike);

    // --- Engine comparison: legacy structured walker vs pre-decoded
    // engine, uninstrumented, per kernel (median of 3 each). ---
    std::printf("=== Execution engines: legacy walker vs pre-decoded "
                "(uninstrumented) ===\n");
    std::printf("%-16s %12s %12s %10s\n", "kernel", "legacy(s)",
                "fast(s)", "speedup");
    std::fflush(stdout);
    std::string engines_rows;
    std::vector<double> speedups;
    for (const auto &w : poly) {
        double legacy_s = engineSeconds(w, interp::EngineKind::Legacy);
        double fast_s = engineSeconds(w, interp::EngineKind::Fast);
        double sp = fast_s > 0 ? legacy_s / fast_s : 0;
        speedups.push_back(sp);
        std::printf("%-16s %12.4f %12.4f %9.2fx\n", w.name.c_str(),
                    legacy_s, fast_s, sp);
        std::fflush(stdout);
        char row[192];
        std::snprintf(row, sizeof row,
                      "%s\n      {\"kernel\": \"%s\", \"legacySeconds\":"
                      " %.6f, \"fastSeconds\": %.6f, \"speedup\": %.4f}",
                      engines_rows.empty() ? "" : ",", w.name.c_str(),
                      legacy_s, fast_s, sp);
        engines_rows += row;
    }
    double engine_geomean = geomean(speedups);
    std::printf("%-16s %35.2fx (geomean)\n\n", "GEOMEAN",
                engine_geomean);
    char geo_buf[64];
    std::snprintf(geo_buf, sizeof geo_buf, "%.4f", engine_geomean);
    std::string engines_json = "{\"perKernel\": [" + engines_rows +
                               "\n    ], \"geomeanSpeedup\": " + geo_buf +
                               "}";

    if (engines_only) {
        if (!json_out.empty()) {
            writeBenchProfileJson(
                json_out, "fig9_overhead",
                {{"n", std::to_string(n)},
                 {"polybenchKernels", std::to_string(poly.size())},
                 {"engines", engines_json}});
            std::printf("wrote %s\n", json_out.c_str());
        }
        return 0;
    }

    std::printf("=== Figure 9: relative runtime per instrumented hook "
                "(empty analysis) ===\n");
    std::printf("PolyBench n=%d (%zu kernels), plus pspdfkit-like app\n\n",
                n, poly.size());
    std::printf("%-12s %16s %16s\n", "hook", "PolyBench(mean)",
                "pspdfkit-like");
    std::fflush(stdout);

    std::vector<double> poly_base;
    for (const auto &w : poly)
        poly_base.push_back(baselineSeconds(w));
    double pdf_base = baselineSeconds(pdfkit);

    std::string rows_json;
    for (core::HookKind kind : core::figureOrderHookKinds()) {
        core::HookSet set = core::HookSet::only(kind);
        double sum = 0;
        for (size_t i = 0; i < poly.size(); ++i)
            sum += instrumentedSeconds(poly[i], set) / poly_base[i];
        double poly_rel = sum / static_cast<double>(poly.size());
        double pdf_rel = instrumentedSeconds(pdfkit, set) / pdf_base;
        std::printf("%-12s %15.2fx %15.2fx\n", name(kind), poly_rel,
                    pdf_rel);
        std::fflush(stdout);
        char row[160];
        std::snprintf(row, sizeof row,
                      "%s\n      {\"hook\": \"%s\", \"polybench\": "
                      "%.4f, \"pdfkit\": %.4f}",
                      rows_json.empty() ? "" : ",", name(kind),
                      poly_rel, pdf_rel);
        rows_json += row;
    }

    core::HookSet all = core::HookSet::all();
    std::vector<double> rels;
    for (size_t i = 0; i < poly.size(); ++i)
        rels.push_back(instrumentedSeconds(poly[i], all) / poly_base[i]);
    double pdf_all_rel = instrumentedSeconds(pdfkit, all) / pdf_base;
    std::printf("%-12s %15.2fx %15.2fx\n", "ALL", geomean(rels),
                pdf_all_rel);
    std::printf("\n(paper: cheap hooks ~1.02x; call <=2.8x, "
                "begin/end 1.5-9.9x, load 1.8-20x, const 2-32x, "
                "local 4-48.5x, binary 2.6-77.5x; all 49-163x, with "
                "numeric kernels far above the real-world apps)\n");

    if (!json_out.empty()) {
        char all_row[128];
        std::snprintf(all_row, sizeof all_row,
                      "{\"polybench\": %.4f, \"pdfkit\": %.4f}",
                      geomean(rels), pdf_all_rel);
        writeBenchProfileJson(
            json_out, "fig9_overhead",
            {{"n", std::to_string(n)},
             {"polybenchKernels", std::to_string(poly.size())},
             {"engines", engines_json},
             {"perHook", "[" + rows_json + "\n    ]"},
             {"all", all_row}});
        std::printf("wrote %s\n", json_out.c_str());
    }
    return 0;
}
