/**
 * @file
 * Serve-daemon throughput bench (DESIGN.md §14): cold vs warm request
 * latency on one Server (the cold request pays decode + validate +
 * static facts + instantiate + translate; the warm request reuses all
 * of it from the content-hash cache and the instance pool), plus
 * sustained throughput with 1 and N concurrent clients. The warm mean
 * must be strictly below the cold latency — that inequality is the
 * bench's claim and the run fails (exit 1) if it does not hold.
 * Results are pinned in BENCH_serve_throughput.json (wasabi-profile
 * v1 schema, "serve_throughput" bench section).
 *
 * Usage: bench_serve_throughput [--json=FILE]
 */

#include <cstdio>
#include <cstring>
#include <thread>

#include "bench_common.h"
#include "serve/server.h"
#include "support/file_io.h"

using namespace wasabi;
using namespace wasabi::bench;

namespace {

constexpr int kWarmReps = 15;
constexpr int kClients = 8;
constexpr int kRequestsPerClient = 12;

double
requestsPerSecond(serve::Server &server, const std::string &request,
                  int clients, int per_client,
                  const std::string &expected)
{
    std::atomic<uint64_t> mismatches{0};
    const double secs = timeSeconds([&] {
        std::vector<std::thread> threads;
        for (int c = 0; c < clients; ++c)
            threads.emplace_back([&] {
                for (int i = 0; i < per_client; ++i)
                    if (server.handle(request).response != expected)
                        ++mismatches;
            });
        for (auto &t : threads)
            t.join();
    });
    if (mismatches.load() != 0)
        throw std::runtime_error(
            "non-deterministic responses under " +
            std::to_string(clients) + " clients");
    return static_cast<double>(clients) * per_client / secs;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--json=", 7) == 0)
            json_path = argv[i] + 7;
    }

    // A diverse app module: the cold path has real decode,
    // validation, and translation work to amortize, while each
    // request stays short enough for a many-request bench.
    workloads::Workload w =
        workloads::syntheticApp(workloads::AppSize::Small);
    const std::string module_path = "/tmp/bench_serve_module.wasm";
    support::writeBinaryFile(module_path, wasm::encodeModule(w.module));

    std::string request = "{\"op\": \"run\", \"module\": \"" +
                          module_path + "\", \"entry\": \"" + w.entry +
                          "\", \"args\": [";
    for (size_t i = 0; i < w.args.size(); ++i)
        request += std::string(i ? ", " : "") + "\"" +
                   toString(w.args[i]) + "\"";
    request += "]}";

    // Cold: fresh server, first request pays the whole pipeline.
    serve::Server server;
    std::string expected;
    const double cold = timeSeconds(
        [&] { expected = server.handle(request).response; });
    if (expected.find("\"ok\": true") == std::string::npos) {
        std::fprintf(stderr, "FAIL: cold request errored: %s\n",
                     expected.c_str());
        return 1;
    }

    // Warm: same server, cached module + pooled instance.
    const Stats warm = timeStats(kWarmReps, [&] {
        if (server.handle(request).response != expected)
            throw std::runtime_error("warm response diverged");
    });
    const uint64_t translations_after_warmup = server.translations();

    std::printf("serve request latency (%s, %zu-byte module)\n",
                w.name.c_str(), binarySize(w.module));
    std::printf("  %-28s %10.3f ms\n", "cold (first request)",
                cold * 1e3);
    std::printf("  %-28s %10.3f ms +- %.3f\n", "warm (cache + pool)",
                warm.mean * 1e3, warm.stddev * 1e3);
    std::printf("  %-28s %10.2fx\n", "cold/warm speedup",
                cold / warm.mean);

    if (warm.mean >= cold) {
        std::fprintf(stderr,
                     "FAIL: warm latency (%.3f ms) not strictly below "
                     "cold (%.3f ms)\n",
                     warm.mean * 1e3, cold * 1e3);
        return 1;
    }
    if (server.translations() != translations_after_warmup) {
        std::fprintf(stderr,
                     "FAIL: warm requests re-translated functions\n");
        return 1;
    }

    const double rps1 =
        requestsPerSecond(server, request, 1, kRequestsPerClient,
                          expected);
    const double rpsN =
        requestsPerSecond(server, request, kClients,
                          kRequestsPerClient, expected);

    std::printf("\nsustained throughput (%d requests/client)\n",
                kRequestsPerClient);
    std::printf("  %-28s %10.1f req/s\n", "1 client", rps1);
    char label[32];
    std::snprintf(label, sizeof label, "%d clients", kClients);
    std::printf("  %-28s %10.1f req/s (%.2fx)\n", label, rpsN,
                rpsN / rps1);

    if (!json_path.empty()) {
        char cold_b[64], warm_b[64], sd_b[64], r1_b[64], rn_b[64];
        std::snprintf(cold_b, sizeof cold_b, "%.6f", cold * 1e3);
        std::snprintf(warm_b, sizeof warm_b, "%.6f", warm.mean * 1e3);
        std::snprintf(sd_b, sizeof sd_b, "%.6f", warm.stddev * 1e3);
        std::snprintf(r1_b, sizeof r1_b, "%.1f", rps1);
        std::snprintf(rn_b, sizeof rn_b, "%.1f", rpsN);
        writeBenchProfileJson(
            json_path, "serve_throughput",
            {{"workload", "\"" + w.name + "\""},
             {"moduleBytes", std::to_string(binarySize(w.module))},
             {"warmReps", std::to_string(kWarmReps)},
             {"coldMillis", cold_b},
             {"warmMeanMillis", warm_b},
             {"warmStddevMillis", sd_b},
             {"warmStrictlyBelowCold", "true"},
             {"clients", std::to_string(kClients)},
             {"requestsPerClient",
              std::to_string(kRequestsPerClient)},
             {"oneClientReqPerSec", r1_b},
             {"nClientReqPerSec", rn_b},
             {"cacheHits", std::to_string(server.cache().hits())},
             {"cacheMisses",
              std::to_string(server.cache().misses())},
             {"poolHits", std::to_string(server.pool().hits())},
             {"poolMisses",
              std::to_string(server.pool().misses())}});
        std::printf("wrote %s\n", json_path.c_str());
    }
    return 0;
}
