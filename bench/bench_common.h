/**
 * @file
 * Shared helpers for the paper-reproduction bench binaries: timing
 * with mean/stddev, workload execution under a given hook set, and
 * plain-text table output mirroring the paper's tables/figures.
 */

#ifndef WASABI_BENCH_COMMON_H
#define WASABI_BENCH_COMMON_H

#include <chrono>
#include <cmath>
#include <cstdio>
#include <functional>
#include <numeric>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "analyses/instruction_mix.h"
#include "core/instrument.h"
#include "interp/interpreter.h"
#include "obs/profile.h"
#include "runtime/runtime.h"
#include "support/file_io.h"
#include "wasm/encoder.h"
#include "wasm/validator.h"
#include "workloads/polybench.h"
#include "workloads/random_program.h"
#include "workloads/synthetic_app.h"

namespace wasabi::bench {

/** Wall-clock seconds of fn(). */
inline double
timeSeconds(const std::function<void()> &fn)
{
    auto start = std::chrono::steady_clock::now();
    fn();
    auto end = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(end - start).count();
}

struct Stats {
    double mean = 0;
    double stddev = 0;
};

/** Mean and standard deviation of @p reps runs of fn(). */
inline Stats
timeStats(int reps, const std::function<void()> &fn)
{
    std::vector<double> times;
    times.reserve(reps);
    for (int i = 0; i < reps; ++i)
        times.push_back(timeSeconds(fn));
    Stats s;
    s.mean = std::accumulate(times.begin(), times.end(), 0.0) / reps;
    double var = 0;
    for (double t : times)
        var += (t - s.mean) * (t - s.mean);
    s.stddev = reps > 1 ? std::sqrt(var / (reps - 1)) : 0.0;
    return s;
}

/** A no-op analysis with a configurable hook set (the paper's "empty
 * analysis" used for the overhead measurements of Figure 9). */
class EmptyAnalysis final : public runtime::Analysis {
  public:
    explicit EmptyAnalysis(core::HookSet set) : set_(set) {}
    core::HookSet hooks() const override { return set_; }

  private:
    core::HookSet set_;
};

/** Run a workload uninstrumented on @p engine; returns wall seconds. */
inline double
runOriginalSeconds(const workloads::Workload &w,
                   interp::EngineKind engine = interp::EngineKind::Fast)
{
    auto inst = interp::Instance::instantiate(w.module, interp::Linker());
    interp::Interpreter interp;
    interp.engine = engine;
    return timeSeconds(
        [&] { interp.invokeExport(*inst, w.entry, w.args); });
}

/** Instrument for @p hooks, run under an empty analysis; returns wall
 * seconds of the run (excluding instrumentation). */
inline double
runInstrumentedSeconds(const workloads::Workload &w, core::HookSet hooks)
{
    core::InstrumentResult r = core::instrument(w.module, hooks);
    runtime::WasabiRuntime rt(r.info);
    EmptyAnalysis empty(hooks);
    rt.addAnalysis(&empty);
    auto inst = rt.instantiate(r.module);
    interp::Interpreter interp;
    return timeSeconds(
        [&] { interp.invokeExport(*inst, w.entry, w.args); });
}

/** Encoded binary size of a module. */
inline size_t
binarySize(const wasm::Module &m)
{
    return wasm::encodeModule(m).size();
}

inline std::string
humanBytes(size_t bytes)
{
    char buf[32];
    if (bytes >= 1024 * 1024)
        std::snprintf(buf, sizeof buf, "%.1f MB", bytes / 1048576.0);
    else if (bytes >= 1024)
        std::snprintf(buf, sizeof buf, "%.1f KB", bytes / 1024.0);
    else
        std::snprintf(buf, sizeof buf, "%zu B", bytes);
    return buf;
}

/**
 * Write bench results as a wasabi-profile v1 document (the same schema
 * `wasabi profile --json` emits) with the measurements under the
 * "bench" section. @p fields are (key, raw JSON value) pairs — the
 * caller formats numbers/arrays itself. The document is validated
 * against the schema before it is written, so a bench can never emit
 * a file that `wasabi profile --check=` rejects.
 */
inline void
writeBenchProfileJson(
    const std::string &path, const std::string &bench_name,
    const std::vector<std::pair<std::string, std::string>> &fields)
{
    std::string j = "{\n  \"schema\": \"";
    j += obs::kProfileSchemaName;
    j += "\",\n  \"version\": " +
         std::to_string(obs::kProfileSchemaVersion) +
         ",\n  \"deterministic\": false,\n"
         "  \"runtime\": {\"hookInvocations\": 0, \"perKind\": []},\n"
         "  \"bench\": {\"name\": \"" +
         bench_name + "\"";
    for (const auto &[key, value] : fields)
        j += ",\n    \"" + key + "\": " + value;
    j += "\n  }\n}\n";
    std::string error;
    if (!obs::validateProfileJson(j, &error))
        throw std::runtime_error("bench profile JSON invalid: " + error);
    // Checked write: a full disk must fail the bench, not silently
    // truncate the pinned artifact (support::IoError, exit non-zero).
    support::writeTextFile(path, j);
}

/** Geometric mean. */
inline double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double log_sum = 0;
    for (double x : xs)
        log_sum += std::log(x);
    return std::exp(log_sum / xs.size());
}

} // namespace wasabi::bench

#endif // WASABI_BENCH_COMMON_H
