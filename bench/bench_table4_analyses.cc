/**
 * @file
 * Reproduces **Table 4** (RQ1, §4.2): the eight analyses built on top
 * of the framework, the hooks each implements, and a demonstration
 * run of every analysis on representative workloads. (The paper's LOC
 * column measures the JS analysis sources; here the C++ equivalents
 * are the src/analyses/ files.)
 */

#include <cstdio>

#include "analyses/basic_block_profile.h"
#include "analyses/branch_coverage.h"
#include "analyses/call_graph.h"
#include "analyses/cryptominer.h"
#include "analyses/instruction_coverage.h"
#include "analyses/instruction_mix.h"
#include "analyses/memory_trace.h"
#include "analyses/taint.h"
#include "bench_common.h"

using namespace wasabi;
using namespace wasabi::bench;

namespace {

/** Instrument + run one analysis over a workload; returns hook calls. */
uint64_t
runAnalysis(const workloads::Workload &w, runtime::Analysis &a)
{
    core::InstrumentResult r =
        core::instrument(w.module, runtime::WasabiRuntime::requiredHooks(
                                       {&a}));
    runtime::WasabiRuntime rt(r.info);
    rt.addAnalysis(&a);
    auto inst = rt.instantiate(r.module);
    interp::Interpreter interp;
    interp.invokeExport(*inst, w.entry, w.args);
    return rt.hookInvocations();
}

void
row(const char *name, const runtime::Analysis &a, const char *summary)
{
    std::printf("%-24s %-40s %s\n", name, a.hooks().toString().c_str(),
                summary);
}

} // namespace

int
main()
{
    std::printf("=== Table 4: analyses built on top of the framework "
                "===\n\n");
    std::printf("%-24s %-40s %s\n", "Analysis", "Hooks",
                "Demo result");

    workloads::Workload gemm = workloads::polybench("gemm", 12);
    workloads::Workload app =
        workloads::syntheticApp(workloads::AppSize::Small);
    char buf[256];

    {
        analyses::InstructionMix a;
        uint64_t calls = runAnalysis(gemm, a);
        std::snprintf(buf, sizeof buf,
                      "gemm: %llu dynamic instrs, top op %s",
                      static_cast<unsigned long long>(a.total()),
                      a.counts().empty()
                          ? "-"
                          : std::max_element(
                                a.counts().begin(), a.counts().end(),
                                [](auto &x, auto &y) {
                                    return x.second < y.second;
                                })
                                ->first.c_str());
        row("Instruction mix", a, buf);
        (void)calls;
    }
    {
        analyses::BasicBlockProfile a;
        runAnalysis(gemm, a);
        std::snprintf(buf, sizeof buf, "gemm: %zu distinct blocks",
                      a.distinctBlocks());
        row("Basic block profiling", a, buf);
    }
    {
        analyses::InstructionCoverage a;
        runAnalysis(gemm, a);
        std::snprintf(buf, sizeof buf, "gemm: %.1f%% instr coverage",
                      100.0 * a.ratio(gemm.module));
        row("Instruction coverage", a, buf);
    }
    {
        analyses::BranchCoverage a;
        runAnalysis(app, a);
        std::snprintf(buf, sizeof buf,
                      "app-small: %zu branch sites, %zu half-covered",
                      a.sites(), a.partiallyCoveredTwoWaySites());
        row("Branch coverage", a, buf);
    }
    {
        analyses::CallGraph a;
        runAnalysis(app, a);
        std::snprintf(buf, sizeof buf, "app-small: %zu call edges",
                      a.numEdges());
        row("Call graph analysis", a, buf);
    }
    {
        analyses::TaintAnalysis a;
        a.taintMemory(0, 64);
        runAnalysis(app, a);
        std::snprintf(buf, sizeof buf,
                      "app-small: %zu flows (no sinks configured)",
                      a.flows().size());
        row("Dynamic taint analysis", a, buf);
    }
    {
        analyses::CryptominerDetector a;
        runAnalysis(gemm, a);
        std::snprintf(buf, sizeof buf,
                      "gemm: signature ratio %.2f, suspicious=%s",
                      a.signatureRatio(), a.suspicious() ? "yes" : "no");
        row("Cryptominer detection", a, buf);
    }
    {
        analyses::MemoryTrace a;
        runAnalysis(gemm, a);
        std::snprintf(buf, sizeof buf,
                      "gemm: %zu accesses, locality %.2f",
                      a.trace().size(), a.localityScore());
        row("Memory access tracing", a, buf);
    }

    std::printf("\n(paper Table 4 LOC column: the JS analyses are "
                "9-208 LOC; the C++ equivalents live in "
                "src/analyses/)\n");
    return 0;
}
