file(REMOVE_RECURSE
  "CMakeFiles/cryptominer_detection.dir/cryptominer_detection.cpp.o"
  "CMakeFiles/cryptominer_detection.dir/cryptominer_detection.cpp.o.d"
  "cryptominer_detection"
  "cryptominer_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cryptominer_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
