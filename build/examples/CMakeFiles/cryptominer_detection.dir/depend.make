# Empty dependencies file for cryptominer_detection.
# This may be replaced when dependencies are built.
