# Empty dependencies file for taint_tracking.
# This may be replaced when dependencies are built.
