file(REMOVE_RECURSE
  "CMakeFiles/call_graph_extraction.dir/call_graph_extraction.cpp.o"
  "CMakeFiles/call_graph_extraction.dir/call_graph_extraction.cpp.o.d"
  "call_graph_extraction"
  "call_graph_extraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/call_graph_extraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
