# Empty compiler generated dependencies file for call_graph_extraction.
# This may be replaced when dependencies are built.
