# Empty compiler generated dependencies file for coverage.
# This may be replaced when dependencies are built.
