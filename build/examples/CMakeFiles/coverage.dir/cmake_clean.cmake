file(REMOVE_RECURSE
  "CMakeFiles/coverage.dir/coverage.cpp.o"
  "CMakeFiles/coverage.dir/coverage.cpp.o.d"
  "coverage"
  "coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
