# Empty dependencies file for wasabi.
# This may be replaced when dependencies are built.
