file(REMOVE_RECURSE
  "CMakeFiles/wasabi.dir/wasabi_cli.cc.o"
  "CMakeFiles/wasabi.dir/wasabi_cli.cc.o.d"
  "wasabi"
  "wasabi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wasabi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
