
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/polybench.cc" "src/workloads/CMakeFiles/workloads.dir/polybench.cc.o" "gcc" "src/workloads/CMakeFiles/workloads.dir/polybench.cc.o.d"
  "/root/repo/src/workloads/polybench_kernels_a.cc" "src/workloads/CMakeFiles/workloads.dir/polybench_kernels_a.cc.o" "gcc" "src/workloads/CMakeFiles/workloads.dir/polybench_kernels_a.cc.o.d"
  "/root/repo/src/workloads/polybench_kernels_b.cc" "src/workloads/CMakeFiles/workloads.dir/polybench_kernels_b.cc.o" "gcc" "src/workloads/CMakeFiles/workloads.dir/polybench_kernels_b.cc.o.d"
  "/root/repo/src/workloads/polybench_kernels_c.cc" "src/workloads/CMakeFiles/workloads.dir/polybench_kernels_c.cc.o" "gcc" "src/workloads/CMakeFiles/workloads.dir/polybench_kernels_c.cc.o.d"
  "/root/repo/src/workloads/random_program.cc" "src/workloads/CMakeFiles/workloads.dir/random_program.cc.o" "gcc" "src/workloads/CMakeFiles/workloads.dir/random_program.cc.o.d"
  "/root/repo/src/workloads/synthetic_app.cc" "src/workloads/CMakeFiles/workloads.dir/synthetic_app.cc.o" "gcc" "src/workloads/CMakeFiles/workloads.dir/synthetic_app.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/wasm/CMakeFiles/wasm.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/interp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
