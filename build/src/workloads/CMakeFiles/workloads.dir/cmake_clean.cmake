file(REMOVE_RECURSE
  "CMakeFiles/workloads.dir/polybench.cc.o"
  "CMakeFiles/workloads.dir/polybench.cc.o.d"
  "CMakeFiles/workloads.dir/polybench_kernels_a.cc.o"
  "CMakeFiles/workloads.dir/polybench_kernels_a.cc.o.d"
  "CMakeFiles/workloads.dir/polybench_kernels_b.cc.o"
  "CMakeFiles/workloads.dir/polybench_kernels_b.cc.o.d"
  "CMakeFiles/workloads.dir/polybench_kernels_c.cc.o"
  "CMakeFiles/workloads.dir/polybench_kernels_c.cc.o.d"
  "CMakeFiles/workloads.dir/random_program.cc.o"
  "CMakeFiles/workloads.dir/random_program.cc.o.d"
  "CMakeFiles/workloads.dir/synthetic_app.cc.o"
  "CMakeFiles/workloads.dir/synthetic_app.cc.o.d"
  "libworkloads.a"
  "libworkloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
