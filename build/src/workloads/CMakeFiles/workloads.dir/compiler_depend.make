# Empty compiler generated dependencies file for workloads.
# This may be replaced when dependencies are built.
