# Empty dependencies file for wasm.
# This may be replaced when dependencies are built.
