
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wasm/builder.cc" "src/wasm/CMakeFiles/wasm.dir/builder.cc.o" "gcc" "src/wasm/CMakeFiles/wasm.dir/builder.cc.o.d"
  "/root/repo/src/wasm/decoder.cc" "src/wasm/CMakeFiles/wasm.dir/decoder.cc.o" "gcc" "src/wasm/CMakeFiles/wasm.dir/decoder.cc.o.d"
  "/root/repo/src/wasm/encoder.cc" "src/wasm/CMakeFiles/wasm.dir/encoder.cc.o" "gcc" "src/wasm/CMakeFiles/wasm.dir/encoder.cc.o.d"
  "/root/repo/src/wasm/instr.cc" "src/wasm/CMakeFiles/wasm.dir/instr.cc.o" "gcc" "src/wasm/CMakeFiles/wasm.dir/instr.cc.o.d"
  "/root/repo/src/wasm/leb128.cc" "src/wasm/CMakeFiles/wasm.dir/leb128.cc.o" "gcc" "src/wasm/CMakeFiles/wasm.dir/leb128.cc.o.d"
  "/root/repo/src/wasm/module.cc" "src/wasm/CMakeFiles/wasm.dir/module.cc.o" "gcc" "src/wasm/CMakeFiles/wasm.dir/module.cc.o.d"
  "/root/repo/src/wasm/name_section.cc" "src/wasm/CMakeFiles/wasm.dir/name_section.cc.o" "gcc" "src/wasm/CMakeFiles/wasm.dir/name_section.cc.o.d"
  "/root/repo/src/wasm/opcode.cc" "src/wasm/CMakeFiles/wasm.dir/opcode.cc.o" "gcc" "src/wasm/CMakeFiles/wasm.dir/opcode.cc.o.d"
  "/root/repo/src/wasm/printer.cc" "src/wasm/CMakeFiles/wasm.dir/printer.cc.o" "gcc" "src/wasm/CMakeFiles/wasm.dir/printer.cc.o.d"
  "/root/repo/src/wasm/types.cc" "src/wasm/CMakeFiles/wasm.dir/types.cc.o" "gcc" "src/wasm/CMakeFiles/wasm.dir/types.cc.o.d"
  "/root/repo/src/wasm/validator.cc" "src/wasm/CMakeFiles/wasm.dir/validator.cc.o" "gcc" "src/wasm/CMakeFiles/wasm.dir/validator.cc.o.d"
  "/root/repo/src/wasm/wat_parser.cc" "src/wasm/CMakeFiles/wasm.dir/wat_parser.cc.o" "gcc" "src/wasm/CMakeFiles/wasm.dir/wat_parser.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
