file(REMOVE_RECURSE
  "CMakeFiles/wasm.dir/builder.cc.o"
  "CMakeFiles/wasm.dir/builder.cc.o.d"
  "CMakeFiles/wasm.dir/decoder.cc.o"
  "CMakeFiles/wasm.dir/decoder.cc.o.d"
  "CMakeFiles/wasm.dir/encoder.cc.o"
  "CMakeFiles/wasm.dir/encoder.cc.o.d"
  "CMakeFiles/wasm.dir/instr.cc.o"
  "CMakeFiles/wasm.dir/instr.cc.o.d"
  "CMakeFiles/wasm.dir/leb128.cc.o"
  "CMakeFiles/wasm.dir/leb128.cc.o.d"
  "CMakeFiles/wasm.dir/module.cc.o"
  "CMakeFiles/wasm.dir/module.cc.o.d"
  "CMakeFiles/wasm.dir/name_section.cc.o"
  "CMakeFiles/wasm.dir/name_section.cc.o.d"
  "CMakeFiles/wasm.dir/opcode.cc.o"
  "CMakeFiles/wasm.dir/opcode.cc.o.d"
  "CMakeFiles/wasm.dir/printer.cc.o"
  "CMakeFiles/wasm.dir/printer.cc.o.d"
  "CMakeFiles/wasm.dir/types.cc.o"
  "CMakeFiles/wasm.dir/types.cc.o.d"
  "CMakeFiles/wasm.dir/validator.cc.o"
  "CMakeFiles/wasm.dir/validator.cc.o.d"
  "CMakeFiles/wasm.dir/wat_parser.cc.o"
  "CMakeFiles/wasm.dir/wat_parser.cc.o.d"
  "libwasm.a"
  "libwasm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wasm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
