file(REMOVE_RECURSE
  "libwasm.a"
)
