
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/control_stack.cc" "src/core/CMakeFiles/wasabi_core.dir/control_stack.cc.o" "gcc" "src/core/CMakeFiles/wasabi_core.dir/control_stack.cc.o.d"
  "/root/repo/src/core/hook_kind.cc" "src/core/CMakeFiles/wasabi_core.dir/hook_kind.cc.o" "gcc" "src/core/CMakeFiles/wasabi_core.dir/hook_kind.cc.o.d"
  "/root/repo/src/core/hook_map.cc" "src/core/CMakeFiles/wasabi_core.dir/hook_map.cc.o" "gcc" "src/core/CMakeFiles/wasabi_core.dir/hook_map.cc.o.d"
  "/root/repo/src/core/instrument.cc" "src/core/CMakeFiles/wasabi_core.dir/instrument.cc.o" "gcc" "src/core/CMakeFiles/wasabi_core.dir/instrument.cc.o.d"
  "/root/repo/src/core/static_info.cc" "src/core/CMakeFiles/wasabi_core.dir/static_info.cc.o" "gcc" "src/core/CMakeFiles/wasabi_core.dir/static_info.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/wasm/CMakeFiles/wasm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
