file(REMOVE_RECURSE
  "CMakeFiles/wasabi_core.dir/control_stack.cc.o"
  "CMakeFiles/wasabi_core.dir/control_stack.cc.o.d"
  "CMakeFiles/wasabi_core.dir/hook_kind.cc.o"
  "CMakeFiles/wasabi_core.dir/hook_kind.cc.o.d"
  "CMakeFiles/wasabi_core.dir/hook_map.cc.o"
  "CMakeFiles/wasabi_core.dir/hook_map.cc.o.d"
  "CMakeFiles/wasabi_core.dir/instrument.cc.o"
  "CMakeFiles/wasabi_core.dir/instrument.cc.o.d"
  "CMakeFiles/wasabi_core.dir/static_info.cc.o"
  "CMakeFiles/wasabi_core.dir/static_info.cc.o.d"
  "libwasabi_core.a"
  "libwasabi_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wasabi_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
