# Empty compiler generated dependencies file for wasabi_runtime.
# This may be replaced when dependencies are built.
