file(REMOVE_RECURSE
  "libwasabi_runtime.a"
)
