file(REMOVE_RECURSE
  "CMakeFiles/wasabi_runtime.dir/analysis.cc.o"
  "CMakeFiles/wasabi_runtime.dir/analysis.cc.o.d"
  "CMakeFiles/wasabi_runtime.dir/runtime.cc.o"
  "CMakeFiles/wasabi_runtime.dir/runtime.cc.o.d"
  "libwasabi_runtime.a"
  "libwasabi_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wasabi_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
