file(REMOVE_RECURSE
  "libinterp.a"
)
