file(REMOVE_RECURSE
  "CMakeFiles/interp.dir/instance.cc.o"
  "CMakeFiles/interp.dir/instance.cc.o.d"
  "CMakeFiles/interp.dir/interpreter.cc.o"
  "CMakeFiles/interp.dir/interpreter.cc.o.d"
  "CMakeFiles/interp.dir/numerics.cc.o"
  "CMakeFiles/interp.dir/numerics.cc.o.d"
  "CMakeFiles/interp.dir/trap.cc.o"
  "CMakeFiles/interp.dir/trap.cc.o.d"
  "libinterp.a"
  "libinterp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
