
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/interp/instance.cc" "src/interp/CMakeFiles/interp.dir/instance.cc.o" "gcc" "src/interp/CMakeFiles/interp.dir/instance.cc.o.d"
  "/root/repo/src/interp/interpreter.cc" "src/interp/CMakeFiles/interp.dir/interpreter.cc.o" "gcc" "src/interp/CMakeFiles/interp.dir/interpreter.cc.o.d"
  "/root/repo/src/interp/numerics.cc" "src/interp/CMakeFiles/interp.dir/numerics.cc.o" "gcc" "src/interp/CMakeFiles/interp.dir/numerics.cc.o.d"
  "/root/repo/src/interp/trap.cc" "src/interp/CMakeFiles/interp.dir/trap.cc.o" "gcc" "src/interp/CMakeFiles/interp.dir/trap.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/wasm/CMakeFiles/wasm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
