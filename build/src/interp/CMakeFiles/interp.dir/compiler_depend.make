# Empty compiler generated dependencies file for interp.
# This may be replaced when dependencies are built.
