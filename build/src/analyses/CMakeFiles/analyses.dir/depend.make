# Empty dependencies file for analyses.
# This may be replaced when dependencies are built.
