file(REMOVE_RECURSE
  "CMakeFiles/analyses.dir/basic_block_profile.cc.o"
  "CMakeFiles/analyses.dir/basic_block_profile.cc.o.d"
  "CMakeFiles/analyses.dir/branch_coverage.cc.o"
  "CMakeFiles/analyses.dir/branch_coverage.cc.o.d"
  "CMakeFiles/analyses.dir/call_graph.cc.o"
  "CMakeFiles/analyses.dir/call_graph.cc.o.d"
  "CMakeFiles/analyses.dir/cryptominer.cc.o"
  "CMakeFiles/analyses.dir/cryptominer.cc.o.d"
  "CMakeFiles/analyses.dir/instruction_coverage.cc.o"
  "CMakeFiles/analyses.dir/instruction_coverage.cc.o.d"
  "CMakeFiles/analyses.dir/instruction_mix.cc.o"
  "CMakeFiles/analyses.dir/instruction_mix.cc.o.d"
  "CMakeFiles/analyses.dir/memory_trace.cc.o"
  "CMakeFiles/analyses.dir/memory_trace.cc.o.d"
  "CMakeFiles/analyses.dir/taint.cc.o"
  "CMakeFiles/analyses.dir/taint.cc.o.d"
  "libanalyses.a"
  "libanalyses.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analyses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
