file(REMOVE_RECURSE
  "libanalyses.a"
)
