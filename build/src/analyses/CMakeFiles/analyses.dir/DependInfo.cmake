
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analyses/basic_block_profile.cc" "src/analyses/CMakeFiles/analyses.dir/basic_block_profile.cc.o" "gcc" "src/analyses/CMakeFiles/analyses.dir/basic_block_profile.cc.o.d"
  "/root/repo/src/analyses/branch_coverage.cc" "src/analyses/CMakeFiles/analyses.dir/branch_coverage.cc.o" "gcc" "src/analyses/CMakeFiles/analyses.dir/branch_coverage.cc.o.d"
  "/root/repo/src/analyses/call_graph.cc" "src/analyses/CMakeFiles/analyses.dir/call_graph.cc.o" "gcc" "src/analyses/CMakeFiles/analyses.dir/call_graph.cc.o.d"
  "/root/repo/src/analyses/cryptominer.cc" "src/analyses/CMakeFiles/analyses.dir/cryptominer.cc.o" "gcc" "src/analyses/CMakeFiles/analyses.dir/cryptominer.cc.o.d"
  "/root/repo/src/analyses/instruction_coverage.cc" "src/analyses/CMakeFiles/analyses.dir/instruction_coverage.cc.o" "gcc" "src/analyses/CMakeFiles/analyses.dir/instruction_coverage.cc.o.d"
  "/root/repo/src/analyses/instruction_mix.cc" "src/analyses/CMakeFiles/analyses.dir/instruction_mix.cc.o" "gcc" "src/analyses/CMakeFiles/analyses.dir/instruction_mix.cc.o.d"
  "/root/repo/src/analyses/memory_trace.cc" "src/analyses/CMakeFiles/analyses.dir/memory_trace.cc.o" "gcc" "src/analyses/CMakeFiles/analyses.dir/memory_trace.cc.o.d"
  "/root/repo/src/analyses/taint.cc" "src/analyses/CMakeFiles/analyses.dir/taint.cc.o" "gcc" "src/analyses/CMakeFiles/analyses.dir/taint.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/wasabi_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/wasabi_core.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/interp.dir/DependInfo.cmake"
  "/root/repo/build/src/wasm/CMakeFiles/wasm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
