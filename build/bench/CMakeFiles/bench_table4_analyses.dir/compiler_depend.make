# Empty compiler generated dependencies file for bench_table4_analyses.
# This may be replaced when dependencies are built.
