file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_analyses.dir/bench_table4_analyses.cc.o"
  "CMakeFiles/bench_table4_analyses.dir/bench_table4_analyses.cc.o.d"
  "bench_table4_analyses"
  "bench_table4_analyses.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_analyses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
