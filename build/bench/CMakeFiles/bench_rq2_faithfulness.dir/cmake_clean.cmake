file(REMOVE_RECURSE
  "CMakeFiles/bench_rq2_faithfulness.dir/bench_rq2_faithfulness.cc.o"
  "CMakeFiles/bench_rq2_faithfulness.dir/bench_rq2_faithfulness.cc.o.d"
  "bench_rq2_faithfulness"
  "bench_rq2_faithfulness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rq2_faithfulness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
