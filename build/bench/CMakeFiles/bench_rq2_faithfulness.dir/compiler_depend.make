# Empty compiler generated dependencies file for bench_rq2_faithfulness.
# This may be replaced when dependencies are built.
