# Empty compiler generated dependencies file for bench_ablation_i64.
# This may be replaced when dependencies are built.
