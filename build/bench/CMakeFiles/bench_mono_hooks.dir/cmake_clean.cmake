file(REMOVE_RECURSE
  "CMakeFiles/bench_mono_hooks.dir/bench_mono_hooks.cc.o"
  "CMakeFiles/bench_mono_hooks.dir/bench_mono_hooks.cc.o.d"
  "bench_mono_hooks"
  "bench_mono_hooks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mono_hooks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
