file(REMOVE_RECURSE
  "CMakeFiles/test_spec_control.dir/test_spec_control.cc.o"
  "CMakeFiles/test_spec_control.dir/test_spec_control.cc.o.d"
  "test_spec_control"
  "test_spec_control.pdb"
  "test_spec_control[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spec_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
