# Empty compiler generated dependencies file for test_spec_control.
# This may be replaced when dependencies are built.
