# Empty dependencies file for test_interp_opcodes.
# This may be replaced when dependencies are built.
