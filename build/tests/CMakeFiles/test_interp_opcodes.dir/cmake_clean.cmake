file(REMOVE_RECURSE
  "CMakeFiles/test_interp_opcodes.dir/test_interp_opcodes.cc.o"
  "CMakeFiles/test_interp_opcodes.dir/test_interp_opcodes.cc.o.d"
  "test_interp_opcodes"
  "test_interp_opcodes.pdb"
  "test_interp_opcodes[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_interp_opcodes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
