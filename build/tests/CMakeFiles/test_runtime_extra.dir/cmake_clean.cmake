file(REMOVE_RECURSE
  "CMakeFiles/test_runtime_extra.dir/test_runtime_extra.cc.o"
  "CMakeFiles/test_runtime_extra.dir/test_runtime_extra.cc.o.d"
  "test_runtime_extra"
  "test_runtime_extra.pdb"
  "test_runtime_extra[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_runtime_extra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
