# Empty dependencies file for test_name_section.
# This may be replaced when dependencies are built.
