file(REMOVE_RECURSE
  "CMakeFiles/test_name_section.dir/test_name_section.cc.o"
  "CMakeFiles/test_name_section.dir/test_name_section.cc.o.d"
  "test_name_section"
  "test_name_section.pdb"
  "test_name_section[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_name_section.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
