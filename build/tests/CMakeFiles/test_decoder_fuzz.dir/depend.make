# Empty dependencies file for test_decoder_fuzz.
# This may be replaced when dependencies are built.
