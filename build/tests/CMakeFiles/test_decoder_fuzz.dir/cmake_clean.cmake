file(REMOVE_RECURSE
  "CMakeFiles/test_decoder_fuzz.dir/test_decoder_fuzz.cc.o"
  "CMakeFiles/test_decoder_fuzz.dir/test_decoder_fuzz.cc.o.d"
  "test_decoder_fuzz"
  "test_decoder_fuzz.pdb"
  "test_decoder_fuzz[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_decoder_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
