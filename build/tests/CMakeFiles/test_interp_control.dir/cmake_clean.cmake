file(REMOVE_RECURSE
  "CMakeFiles/test_interp_control.dir/test_interp_control.cc.o"
  "CMakeFiles/test_interp_control.dir/test_interp_control.cc.o.d"
  "test_interp_control"
  "test_interp_control.pdb"
  "test_interp_control[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_interp_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
