# Empty compiler generated dependencies file for test_leb128.
# This may be replaced when dependencies are built.
