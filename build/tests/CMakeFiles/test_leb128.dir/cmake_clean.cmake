file(REMOVE_RECURSE
  "CMakeFiles/test_leb128.dir/test_leb128.cc.o"
  "CMakeFiles/test_leb128.dir/test_leb128.cc.o.d"
  "test_leb128"
  "test_leb128.pdb"
  "test_leb128[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_leb128.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
