file(REMOVE_RECURSE
  "CMakeFiles/test_analyses.dir/test_analyses.cc.o"
  "CMakeFiles/test_analyses.dir/test_analyses.cc.o.d"
  "test_analyses"
  "test_analyses.pdb"
  "test_analyses[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_analyses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
