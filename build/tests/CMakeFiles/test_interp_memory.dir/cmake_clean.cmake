file(REMOVE_RECURSE
  "CMakeFiles/test_interp_memory.dir/test_interp_memory.cc.o"
  "CMakeFiles/test_interp_memory.dir/test_interp_memory.cc.o.d"
  "test_interp_memory"
  "test_interp_memory.pdb"
  "test_interp_memory[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_interp_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
