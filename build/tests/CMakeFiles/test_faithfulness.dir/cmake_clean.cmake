file(REMOVE_RECURSE
  "CMakeFiles/test_faithfulness.dir/test_faithfulness.cc.o"
  "CMakeFiles/test_faithfulness.dir/test_faithfulness.cc.o.d"
  "test_faithfulness"
  "test_faithfulness.pdb"
  "test_faithfulness[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_faithfulness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
