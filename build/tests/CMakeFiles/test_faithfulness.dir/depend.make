# Empty dependencies file for test_faithfulness.
# This may be replaced when dependencies are built.
