file(REMOVE_RECURSE
  "CMakeFiles/test_wat_parser.dir/test_wat_parser.cc.o"
  "CMakeFiles/test_wat_parser.dir/test_wat_parser.cc.o.d"
  "test_wat_parser"
  "test_wat_parser.pdb"
  "test_wat_parser[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wat_parser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
