file(REMOVE_RECURSE
  "CMakeFiles/test_interp_numeric.dir/test_interp_numeric.cc.o"
  "CMakeFiles/test_interp_numeric.dir/test_interp_numeric.cc.o.d"
  "test_interp_numeric"
  "test_interp_numeric.pdb"
  "test_interp_numeric[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_interp_numeric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
