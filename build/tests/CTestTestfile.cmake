# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_leb128[1]_include.cmake")
include("/root/repo/build/tests/test_opcode[1]_include.cmake")
include("/root/repo/build/tests/test_builder[1]_include.cmake")
include("/root/repo/build/tests/test_roundtrip[1]_include.cmake")
include("/root/repo/build/tests/test_validator[1]_include.cmake")
include("/root/repo/build/tests/test_interp_numeric[1]_include.cmake")
include("/root/repo/build/tests/test_interp_control[1]_include.cmake")
include("/root/repo/build/tests/test_interp_memory[1]_include.cmake")
include("/root/repo/build/tests/test_instrument[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_runtime[1]_include.cmake")
include("/root/repo/build/tests/test_analyses[1]_include.cmake")
include("/root/repo/build/tests/test_faithfulness[1]_include.cmake")
include("/root/repo/build/tests/test_core_units[1]_include.cmake")
include("/root/repo/build/tests/test_printer[1]_include.cmake")
include("/root/repo/build/tests/test_interp_opcodes[1]_include.cmake")
include("/root/repo/build/tests/test_name_section[1]_include.cmake")
include("/root/repo/build/tests/test_decoder_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_wat_parser[1]_include.cmake")
include("/root/repo/build/tests/test_paper_figures[1]_include.cmake")
include("/root/repo/build/tests/test_runtime_extra[1]_include.cmake")
include("/root/repo/build/tests/test_spec_control[1]_include.cmake")
